//! Workspace facade crate.
//!
//! This crate exists so that the repository root can host the runnable
//! [`examples`](https://doc.rust-lang.org/cargo/reference/cargo-targets.html#examples)
//! and the cross-crate integration tests in `tests/`. It re-exports the
//! member crates so examples and tests can write `casoff_repro::cas_offinder`
//! or depend on the crates directly.

pub use cas_offinder;
pub use genome;
pub use gpu_sim;
pub use opencl_rt;
pub use sycl_rt;
