//! Table I of the paper: the OpenCL application needs thirteen logical
//! programming steps, the SYCL application eight — verified against the
//! actual step logs of the two host pipelines.

use cas_offinder::pipeline::{ocl, sycl, PipelineConfig};
use cas_offinder::SearchInput;
use gpu_sim::DeviceSpec;

fn workload() -> (genome::Assembly, SearchInput, PipelineConfig) {
    let assembly = genome::synth::hg19_mini(0.002);
    let input = SearchInput::canonical_example(assembly.name());
    let config = PipelineConfig::new(DeviceSpec::radeon_vii()).chunk_size(1 << 13);
    (assembly, input, config)
}

#[test]
fn opencl_application_exercises_all_thirteen_steps() {
    let (assembly, input, config) = workload();
    let log = ocl::step_log_of(&assembly, &input, &config).unwrap();
    let mut steps = log.steps();
    steps.sort();
    let mut all = opencl_rt::steps::ALL_STEPS.to_vec();
    all.sort();
    assert_eq!(steps, all);
    assert_eq!(log.len(), 13);
}

#[test]
fn sycl_application_exercises_all_eight_steps() {
    let (assembly, input, config) = workload();
    let log = sycl::step_log_of(&assembly, &input, &config).unwrap();
    let mut steps = log.steps();
    steps.sort();
    let mut all = sycl_rt::steps::ALL_STEPS.to_vec();
    all.sort();
    assert_eq!(steps, all);
    assert_eq!(log.len(), 8);
}

#[test]
fn sycl_reduces_the_step_count_as_table_i_claims() {
    assert_eq!(opencl_rt::steps::ALL_STEPS.len(), 13);
    assert_eq!(sycl_rt::steps::ALL_STEPS.len(), 8);
}

#[test]
fn step_order_starts_with_discovery_and_ends_with_release() {
    let (assembly, input, config) = workload();
    let ocl_steps = ocl::step_log_of(&assembly, &input, &config).unwrap().steps();
    assert_eq!(ocl_steps.first(), Some(&opencl_rt::Step::PlatformQuery));
    assert_eq!(ocl_steps.last(), Some(&opencl_rt::Step::ReleaseResources));

    let sycl_steps = sycl::step_log_of(&assembly, &input, &config).unwrap().steps();
    assert_eq!(sycl_steps.first(), Some(&sycl_rt::Step::DeviceSelector));
    assert_eq!(sycl_steps.last(), Some(&sycl_rt::Step::ImplicitRelease));
}
