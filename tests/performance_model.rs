//! Cross-crate checks on the performance model: the relationships the
//! paper's evaluation observes must hold for the composed system, not just
//! for isolated kernels.

use cas_offinder::kernels::ComparerKernel;
use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::{OptLevel, SearchInput};
use gpu_sim::isa::compile;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceSpec, NdRange};

fn run(spec: DeviceSpec, opt: OptLevel, assembly: &genome::Assembly) -> cas_offinder::SearchReport {
    let input = SearchInput::canonical_example(assembly.name());
    let config = PipelineConfig::new(spec).chunk_size(1 << 18).opt(opt);
    pipeline::sycl::run(assembly, &input, &config).expect("pipeline")
}

#[test]
fn comparer_dominates_kernel_time() {
    let assembly = genome::synth::hg19_mini(0.01);
    let report = run(DeviceSpec::mi100(), OptLevel::Base, &assembly);
    let share = report.timing.comparer_kernel_share();
    assert!(
        share > 0.8,
        "comparer share of kernel time {share:.3}; the paper reports ~98%"
    );
}

#[test]
fn mi100_outruns_the_older_gpus() {
    let assembly = genome::synth::hg19_mini(0.01);
    let rvii = run(DeviceSpec::radeon_vii(), OptLevel::Base, &assembly);
    let mi100 = run(DeviceSpec::mi100(), OptLevel::Base, &assembly);
    assert!(
        mi100.timing.kernel_s() < rvii.timing.kernel_s(),
        "MI100 has twice the CUs: kernels must run faster"
    );
}

#[test]
fn hg38_mini_takes_longer_than_hg19_mini() {
    let hg19 = genome::synth::hg19_mini(0.01);
    let hg38 = genome::synth::hg38_mini(0.01);
    let a = run(DeviceSpec::mi60(), OptLevel::Base, &hg19);
    let b = run(DeviceSpec::mi60(), OptLevel::Base, &hg38);
    let ratio = b.timing.elapsed_s / a.timing.elapsed_s;
    assert!(
        (1.05..=1.6).contains(&ratio),
        "hg38/hg19 elapsed ratio {ratio:.2} outside the paper's shape"
    );
}

#[test]
fn table_x_occupancy_emerges_from_the_model_chain() {
    // CodeModel -> pseudo-ISA -> occupancy must land the Table X row.
    let spec = DeviceSpec::mi100();
    let nd = NdRange::linear(1 << 18, 256);
    let occupancies: Vec<u32> = OptLevel::ALL
        .iter()
        .map(|&opt| {
            let mut r = compile(&ComparerKernel::code_model_for(opt));
            r.lds_bytes = 230;
            occupancy(&r, &nd, &spec).waves_per_simd
        })
        .collect();
    assert_eq!(occupancies, vec![10, 10, 10, 10, 9]);
}

#[test]
fn work_group_size_sweep_shows_the_staging_amortization() {
    // The DESIGN.md ablation: with the baseline comparer's serial staging,
    // smaller work-groups pay the per-group costs more often.
    let assembly = genome::synth::hg19_mini(0.01);
    let input = SearchInput::canonical_example(assembly.name());
    let mut times = Vec::new();
    for wgs in [64usize, 256] {
        let config = PipelineConfig::new(DeviceSpec::mi100())
            .chunk_size(1 << 18)
            .work_group_size(Some(wgs));
        let report = pipeline::sycl::run(&assembly, &input, &config).unwrap();
        times.push(report.timing.comparer_s);
    }
    assert!(
        times[0] > times[1] * 1.02,
        "64-wide groups must pay more staging+dispatch: {times:?}"
    );
}

#[test]
fn simulated_time_is_independent_of_host_parallelism() {
    use gpu_sim::ExecMode;
    let assembly = genome::synth::hg19_mini(0.004);
    let input = SearchInput::canonical_example(assembly.name());
    let mut elapsed = Vec::new();
    for exec in [
        ExecMode::Sequential,
        ExecMode::Parallel { threads: 2 },
        ExecMode::Parallel { threads: 16 },
    ] {
        let config = PipelineConfig::new(DeviceSpec::mi60())
            .chunk_size(1 << 14)
            .exec_mode(exec);
        elapsed.push(pipeline::sycl::run(&assembly, &input, &config).unwrap().timing.elapsed_s);
    }
    // Host parallelism only perturbs which items share a wavefront (the
    // finder's atomic compaction order), so simulated times agree to within
    // a couple percent rather than bit-exactly.
    let rel = |a: f64, b: f64| (a - b).abs() / a;
    assert!(rel(elapsed[0], elapsed[1]) < 0.02, "{elapsed:?}");
    assert!(rel(elapsed[0], elapsed[2]) < 0.02, "{elapsed:?}");
}

#[test]
fn transfers_scale_with_genome_size() {
    let small = genome::synth::hg19_mini(0.004);
    let large = genome::synth::hg19_mini(0.04);
    let a = run(DeviceSpec::mi100(), OptLevel::Base, &small);
    let b = run(DeviceSpec::mi100(), OptLevel::Base, &large);
    assert!(b.timing.transfer_s > a.timing.transfer_s * 1.5);
    assert!(b.timing.candidates > a.timing.candidates * 5);
}
