//! The central correctness property of the reproduction: the OpenCL
//! application, the SYCL application, the multithreaded CPU baseline and
//! the scalar oracle all find exactly the same off-target sites.

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::{cpu, OptLevel, SearchInput};
use gpu_sim::{DeviceSpec, ExecMode};

fn canonical(scale: f64) -> (genome::Assembly, SearchInput) {
    let assembly = genome::synth::hg19_mini(scale);
    let input = SearchInput::canonical_example(assembly.name());
    (assembly, input)
}

#[test]
fn all_four_implementations_agree_on_the_canonical_workload() {
    let (assembly, input) = canonical(0.01);
    let oracle = cpu::search_sequential(&assembly, &input);
    assert!(
        oracle.len() >= 10,
        "the implanted guides must produce a meaningful result set, got {}",
        oracle.len()
    );

    let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 14);
    let ocl = pipeline::ocl::run(&assembly, &input, &config).expect("opencl pipeline");
    let sycl = pipeline::sycl::run(&assembly, &input, &config).expect("sycl pipeline");
    let parallel = cpu::search_parallel(&assembly, &input, 4);

    assert_eq!(ocl.offtargets, oracle, "OpenCL vs oracle");
    assert_eq!(sycl.offtargets, oracle, "SYCL vs oracle");
    assert_eq!(parallel, oracle, "parallel CPU vs oracle");
}

#[test]
fn agreement_holds_across_chunk_sizes() {
    let (assembly, input) = canonical(0.005);
    let oracle = cpu::search_sequential(&assembly, &input);
    for chunk_bits in [10usize, 12, 16, 20] {
        let config = PipelineConfig::new(DeviceSpec::mi60()).chunk_size(1 << chunk_bits);
        let report = pipeline::sycl::run(&assembly, &input, &config).expect("sycl pipeline");
        assert_eq!(
            report.offtargets, oracle,
            "chunk size 2^{chunk_bits} changed the result set"
        );
    }
}

#[test]
fn agreement_holds_at_every_opt_level_and_device() {
    let (assembly, input) = canonical(0.003);
    let oracle = cpu::search_sequential(&assembly, &input);
    for spec in DeviceSpec::paper_devices() {
        for opt in OptLevel::ALL {
            let config = PipelineConfig::new(spec.clone())
                .chunk_size(1 << 13)
                .opt(opt);
            let report = pipeline::ocl::run(&assembly, &input, &config).expect("ocl pipeline");
            assert_eq!(
                report.offtargets, oracle,
                "device {} opt {opt} diverged",
                spec.name
            );
        }
    }
}

#[test]
fn sequential_and_parallel_execution_find_the_same_sites() {
    let (assembly, input) = canonical(0.005);
    let seq_cfg = PipelineConfig::new(DeviceSpec::mi100())
        .chunk_size(1 << 14)
        .exec_mode(ExecMode::Sequential);
    let par_cfg = PipelineConfig::new(DeviceSpec::mi100())
        .chunk_size(1 << 14)
        .exec_mode(ExecMode::Parallel { threads: 8 });
    let a = pipeline::sycl::run(&assembly, &input, &seq_cfg).unwrap();
    let b = pipeline::sycl::run(&assembly, &input, &par_cfg).unwrap();
    assert_eq!(a.offtargets, b.offtargets);
    // Host scheduling only perturbs which candidates share a wavefront (the
    // finder's compaction order), so simulated times agree closely but not
    // bit-exactly.
    let rel = (a.timing.elapsed_s - b.timing.elapsed_s).abs() / a.timing.elapsed_s;
    assert!(rel < 0.02, "simulated elapsed diverged by {:.3}%", rel * 100.0);
}

#[test]
fn threshold_zero_returns_only_exact_sites() {
    let assembly = genome::synth::hg38_mini(0.005);
    let input = SearchInput::parse(&format!(
        "{}\nNNNNNNNNNNNNNNNNNNNNNRG\nGGCCGACCTGTCGCTGACGCNNN 0\n",
        assembly.name()
    ))
    .unwrap();
    let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 14);
    let report = pipeline::sycl::run(&assembly, &input, &config).unwrap();
    assert!(!report.offtargets.is_empty(), "an exact implant must exist");
    assert!(report.offtargets.iter().all(|h| h.mismatches == 0));
    assert_eq!(report.offtargets, cpu::search_sequential(&assembly, &input));
}

#[test]
fn every_reported_site_verifies_against_the_genome() {
    use genome::base::{is_mismatch, reverse_complement};

    let (assembly, input) = canonical(0.005);
    let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 14);
    let report = pipeline::sycl::run(&assembly, &input, &config).unwrap();
    assert!(!report.offtargets.is_empty());

    for hit in &report.offtargets {
        let chrom = assembly.chromosome(&hit.chrom).expect("chromosome exists");
        let window = &chrom.seq[hit.position..hit.position + input.pattern_len()];
        let oriented = match hit.strand {
            cas_offinder::Strand::Forward => window.to_vec(),
            cas_offinder::Strand::Reverse => reverse_complement(window),
        };
        let mm = oriented
            .iter()
            .zip(&hit.query)
            .filter(|&(&g, &q)| is_mismatch(q, g))
            .count();
        assert_eq!(
            mm as u16, hit.mismatches,
            "reported mismatch count must match a recount at {}:{}",
            hit.chrom, hit.position
        );
        assert!(mm as u16 <= input.queries[0].max_mismatches);
    }
}
