//! Property-based tests over random genomes, patterns and queries.
//!
//! The key invariant: for *any* genome and *any* well-formed input, the GPU
//! pipelines and the scalar oracle agree exactly. Supporting properties
//! cover the IUPAC algebra, the two-strand pattern compilation and the
//! chunker.

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::{cpu, CompiledSeq, OptLevel, Query, SearchInput};
use genome::base::{base_mask, complement, is_mismatch, matches, reverse_complement, IUPAC_CODES};
use genome::{Assembly, Chromosome, Chunker};
use gpu_sim::DeviceSpec;
use proptest::prelude::*;

fn genome_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(b"AAACCGGTTTN".to_vec()),
        30..max_len,
    )
}

fn guide(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gpu_pipelines_match_the_oracle_on_random_genomes(
        seq in genome_seq(600),
        query in guide(8),
        threshold in 0u16..4,
        chunk_bits in 5usize..10,
    ) {
        let mut assembly = Assembly::new("prop");
        assembly.push(Chromosome::new("c1", seq));
        let input = SearchInput {
            genome: "prop".to_owned(),
            pattern: b"NNNNNNNNGG".to_vec(),
            queries: vec![Query::new(
                [&query[..], b"NN"].concat(),
                threshold,
            )],
        };
        let oracle = cpu::search_sequential(&assembly, &input);
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << chunk_bits);
        let sycl = pipeline::sycl::run(&assembly, &input, &config).unwrap();
        prop_assert_eq!(&sycl.offtargets, &oracle);
        let ocl = pipeline::ocl::run(&assembly, &input, &config).unwrap();
        prop_assert_eq!(&ocl.offtargets, &oracle);
    }

    #[test]
    fn opt_levels_never_change_results(
        seq in genome_seq(300),
        threshold in 0u16..6,
    ) {
        let mut assembly = Assembly::new("prop");
        assembly.push(Chromosome::new("c1", seq));
        let input = SearchInput {
            genome: "prop".to_owned(),
            pattern: b"NNNNNNNRG".to_vec(),
            queries: vec![Query::new(&b"ACGTACGNN"[..], threshold)],
        };
        let base_cfg = PipelineConfig::new(DeviceSpec::mi60()).chunk_size(64);
        let base = pipeline::sycl::run(&assembly, &input, &base_cfg).unwrap();
        for opt in OptLevel::ALL {
            let report = pipeline::sycl::run(
                &assembly,
                &input,
                &base_cfg.clone().opt(opt),
            )
            .unwrap();
            prop_assert_eq!(&report.offtargets, &base.offtargets);
        }
    }

    #[test]
    fn complement_is_involutive_and_preserves_ambiguity(c in proptest::sample::select(IUPAC_CODES.to_vec())) {
        prop_assert_eq!(complement(complement(c)), c);
        prop_assert_eq!(
            base_mask(c).count_ones(),
            base_mask(complement(c)).count_ones()
        );
    }

    #[test]
    fn reverse_complement_is_involutive(seq in genome_seq(200)) {
        prop_assert_eq!(reverse_complement(&reverse_complement(&seq)), seq);
    }

    #[test]
    fn match_and_mismatch_partition(
        p in proptest::sample::select(IUPAC_CODES.to_vec()),
        g in proptest::sample::select(IUPAC_CODES.to_vec()),
    ) {
        prop_assert_ne!(matches(p, g), is_mismatch(p, g));
        // N matches everything; everything matches N only if it is N.
        prop_assert!(matches(b'N', g));
    }

    #[test]
    fn compiled_seq_halves_are_reverse_complements(query in guide(12)) {
        let c = CompiledSeq::compile(&query);
        prop_assert_eq!(c.forward(), &query[..]);
        prop_assert_eq!(c.reverse().to_vec(), reverse_complement(&query));
        // Index halves address exactly the non-N positions.
        prop_assert_eq!(c.forward_compare_count(), 12);
        prop_assert_eq!(c.reverse_compare_count(), 12);
    }

    #[test]
    fn chunker_covers_each_position_exactly_once(
        len in 1usize..2000,
        chunk in 1usize..700,
        overlap in 0usize..40,
    ) {
        let mut assembly = Assembly::new("prop");
        assembly.push(Chromosome::new("c1", vec![b'A'; len]));
        let mut covered = vec![0u32; len];
        for piece in Chunker::new(&assembly, chunk, overlap) {
            for p in 0..piece.scan_len {
                covered[piece.start + p] += 1;
            }
            prop_assert!(piece.seq.len() <= piece.scan_len + overlap);
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn search_results_are_strand_symmetric(
        seq in genome_seq(400),
        query in guide(7),
        threshold in 0u16..3,
    ) {
        // Searching G for Q must mirror searching revcomp(G) for Q: a
        // forward hit at p becomes a reverse hit at len - plen - p.
        let plen = 9usize;
        let make_input = |seq: Vec<u8>| {
            let mut assembly = Assembly::new("prop");
            assembly.push(Chromosome::new("c1", seq));
            let input = SearchInput {
                genome: "prop".to_owned(),
                pattern: b"NNNNNNNGG".to_vec(),
                queries: vec![Query::new([&query[..], b"NN"].concat(), threshold)],
            };
            (assembly, input)
        };
        let (fwd_asm, input) = make_input(seq.clone());
        let (rev_asm, _) = make_input(reverse_complement(&seq));
        let fwd_hits = cpu::search_sequential(&fwd_asm, &input);
        let rev_hits = cpu::search_sequential(&rev_asm, &input);

        let mut mirrored: Vec<(usize, cas_offinder::Strand, u16)> = fwd_hits
            .iter()
            .map(|h| {
                let pos = seq.len() - plen - h.position;
                let strand = match h.strand {
                    cas_offinder::Strand::Forward => cas_offinder::Strand::Reverse,
                    cas_offinder::Strand::Reverse => cas_offinder::Strand::Forward,
                };
                (pos, strand, h.mismatches)
            })
            .collect();
        let mut actual: Vec<(usize, cas_offinder::Strand, u16)> = rev_hits
            .iter()
            .map(|h| (h.position, h.strand, h.mismatches))
            .collect();
        mirrored.sort_unstable();
        actual.sort_unstable();
        prop_assert_eq!(mirrored, actual);
    }
}
