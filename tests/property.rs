//! Seeded-random property tests over random genomes, patterns and queries.
//!
//! The key invariant: for *any* genome and *any* well-formed input, the GPU
//! pipelines and the scalar oracle agree exactly. Supporting properties
//! cover the IUPAC algebra, the two-strand pattern compilation and the
//! chunker. Cases are drawn from `genome::rng`, so runs are deterministic
//! and need no external property-testing crate.

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::{cpu, CompiledSeq, OptLevel, Query, SearchInput};
use genome::base::{base_mask, complement, is_mismatch, matches, reverse_complement, IUPAC_CODES};
use genome::rng::Xoshiro256;
use genome::{Assembly, Chromosome, Chunker};
use gpu_sim::DeviceSpec;

fn genome_seq(rng: &mut Xoshiro256, max_len: usize) -> Vec<u8> {
    // The N-heavy alphabet mirrors proptest's old weighted selection.
    const ALPHABET: &[u8] = b"AAACCGGTTTN";
    let len = rng.gen_range(30, max_len);
    (0..len).map(|_| ALPHABET[rng.gen_below(ALPHABET.len())]).collect()
}

fn guide(rng: &mut Xoshiro256, len: usize) -> Vec<u8> {
    (0..len).map(|_| b"ACGT"[rng.gen_below(4)]).collect()
}

#[test]
fn gpu_pipelines_match_the_oracle_on_random_genomes() {
    let mut rng = Xoshiro256::seed_from_u64(0x09AC1E);
    for _ in 0..24 {
        let seq = genome_seq(&mut rng, 600);
        let query = guide(&mut rng, 8);
        let threshold = rng.gen_below(4) as u16;
        let chunk_bits = rng.gen_range(5, 10);
        let mut assembly = Assembly::new("prop");
        assembly.push(Chromosome::new("c1", seq));
        let input = SearchInput {
            genome: "prop".to_owned(),
            pattern: b"NNNNNNNNGG".to_vec(),
            queries: vec![Query::new([&query[..], b"NN"].concat(), threshold)],
        };
        let oracle = cpu::search_sequential(&assembly, &input);
        let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << chunk_bits);
        let sycl = pipeline::sycl::run(&assembly, &input, &config).unwrap();
        assert_eq!(sycl.offtargets, oracle, "sycl, chunk 2^{chunk_bits}");
        let ocl = pipeline::ocl::run(&assembly, &input, &config).unwrap();
        assert_eq!(ocl.offtargets, oracle, "ocl, chunk 2^{chunk_bits}");
    }
}

#[test]
fn opt_levels_never_change_results() {
    let mut rng = Xoshiro256::seed_from_u64(0x0071);
    for _ in 0..12 {
        let seq = genome_seq(&mut rng, 300);
        let threshold = rng.gen_below(6) as u16;
        let mut assembly = Assembly::new("prop");
        assembly.push(Chromosome::new("c1", seq));
        let input = SearchInput {
            genome: "prop".to_owned(),
            pattern: b"NNNNNNNRG".to_vec(),
            queries: vec![Query::new(&b"ACGTACGNN"[..], threshold)],
        };
        let base_cfg = PipelineConfig::new(DeviceSpec::mi60()).chunk_size(64);
        let base = pipeline::sycl::run(&assembly, &input, &base_cfg).unwrap();
        for opt in OptLevel::ALL {
            let report =
                pipeline::sycl::run(&assembly, &input, &base_cfg.clone().opt(opt)).unwrap();
            assert_eq!(report.offtargets, base.offtargets, "opt {opt}");
        }
    }
}

#[test]
fn complement_is_involutive_and_preserves_ambiguity() {
    for c in IUPAC_CODES {
        assert_eq!(complement(complement(c)), c);
        assert_eq!(
            base_mask(c).count_ones(),
            base_mask(complement(c)).count_ones()
        );
    }
}

#[test]
fn reverse_complement_is_involutive() {
    let mut rng = Xoshiro256::seed_from_u64(0x4EC0);
    for _ in 0..48 {
        let seq = genome_seq(&mut rng, 200);
        assert_eq!(reverse_complement(&reverse_complement(&seq)), seq);
    }
}

#[test]
fn match_and_mismatch_partition() {
    for p in IUPAC_CODES {
        for g in IUPAC_CODES {
            assert_ne!(matches(p, g), is_mismatch(p, g));
            // N matches everything.
            assert!(matches(b'N', g));
        }
    }
}

#[test]
fn compiled_seq_halves_are_reverse_complements() {
    let mut rng = Xoshiro256::seed_from_u64(0xC0DE);
    for _ in 0..48 {
        let query = guide(&mut rng, 12);
        let c = CompiledSeq::compile(&query);
        assert_eq!(c.forward(), &query[..]);
        assert_eq!(c.reverse().to_vec(), reverse_complement(&query));
        // Index halves address exactly the non-N positions.
        assert_eq!(c.forward_compare_count(), 12);
        assert_eq!(c.reverse_compare_count(), 12);
    }
}

#[test]
fn chunker_covers_each_position_exactly_once() {
    let mut rng = Xoshiro256::seed_from_u64(0xC08E4);
    for _ in 0..48 {
        let len = rng.gen_range(1, 2000);
        let chunk = rng.gen_range(1, 700);
        let overlap = rng.gen_below(40);
        let mut assembly = Assembly::new("prop");
        assembly.push(Chromosome::new("c1", vec![b'A'; len]));
        let mut covered = vec![0u32; len];
        for piece in Chunker::new(&assembly, chunk, overlap) {
            for p in 0..piece.scan_len {
                covered[piece.start + p] += 1;
            }
            assert!(piece.seq.len() <= piece.scan_len + overlap);
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "len {len} chunk {chunk} overlap {overlap}"
        );
    }
}

#[test]
fn search_results_are_strand_symmetric() {
    let mut rng = Xoshiro256::seed_from_u64(0x57D);
    for _ in 0..24 {
        let seq = genome_seq(&mut rng, 400);
        let query = guide(&mut rng, 7);
        let threshold = rng.gen_below(3) as u16;
        // Searching G for Q must mirror searching revcomp(G) for Q: a
        // forward hit at p becomes a reverse hit at len - plen - p.
        let plen = 9usize;
        let make_input = |seq: Vec<u8>| {
            let mut assembly = Assembly::new("prop");
            assembly.push(Chromosome::new("c1", seq));
            let input = SearchInput {
                genome: "prop".to_owned(),
                pattern: b"NNNNNNNGG".to_vec(),
                queries: vec![Query::new([&query[..], b"NN"].concat(), threshold)],
            };
            (assembly, input)
        };
        let (fwd_asm, input) = make_input(seq.clone());
        let (rev_asm, _) = make_input(reverse_complement(&seq));
        let fwd_hits = cpu::search_sequential(&fwd_asm, &input);
        let rev_hits = cpu::search_sequential(&rev_asm, &input);

        let mut mirrored: Vec<(usize, cas_offinder::Strand, u16)> = fwd_hits
            .iter()
            .map(|h| {
                let pos = seq.len() - plen - h.position;
                let strand = match h.strand {
                    cas_offinder::Strand::Forward => cas_offinder::Strand::Reverse,
                    cas_offinder::Strand::Reverse => cas_offinder::Strand::Forward,
                };
                (pos, strand, h.mismatches)
            })
            .collect();
        let mut actual: Vec<(usize, cas_offinder::Strand, u16)> = rev_hits
            .iter()
            .map(|h| (h.position, h.strand, h.mismatches))
            .collect();
        mirrored.sort_unstable();
        actual.sort_unstable();
        assert_eq!(mirrored, actual);
    }
}
