#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, lints, and a smoke run of
# the paper reproduction — everything offline (the workspace is std-only).
#
#   scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== smoke: repro table1 =="
cargo run --release -p casoff-bench --bin repro -- table1

echo "== smoke: serve throughput =="
CASOFF_SERVE_JOBS=120 cargo run --release --example serve_demo
test -s BENCH_serve.json || { echo "BENCH_serve.json missing"; exit 1; }
# The replay pass re-submits round 0's specs against the live service;
# every one of them must come straight out of the result store.
replay_rate=$(sed -n 's/.*"second_pass_result_cache_hit_rate": \([0-9.]*\).*/\1/p' BENCH_serve.json)
awk -v r="${replay_rate:-0}" 'BEGIN { exit !(r > 0) }' \
  || { echo "replay result-cache hit rate is ${replay_rate:-absent}; expected > 0"; exit 1; }
# On the exception-dense assembly the adaptive cache must keep every
# batch off the char comparer — the 4-bit nibble path serves them all.
char_fallback=$(sed -n 's/.*"char_fallback_batches": \([0-9]*\).*/\1/p' BENCH_serve.json)
awk -v n="${char_fallback:-1}" 'BEGIN { exit !(n == 0) }' \
  || { echo "char-fallback batches on masked workload: ${char_fallback:-absent}; expected 0"; exit 1; }
# After warmup every (pattern, threshold, encoding) variant must come out
# of the variant cache — a sub-90% hit rate means the cache is thrashing
# or the digest key is unstable across identical queries.
variant_hit=$(sed -n 's/.*"warm_variant_hit_rate": \([0-9.]*\).*/\1/p' BENCH_serve.json)
awk -v r="${variant_hit:-0}" 'BEGIN { exit !(r >= 0.9) }' \
  || { echo "warm variant-cache hit rate is ${variant_hit:-absent}; expected >= 0.9"; exit 1; }
# The constant-folded variants must actually buy throughput on the warm
# cache, not just smaller code.
spec_speedup=$(sed -n 's/.*"specialize_speedup": \([0-9.]*\).*/\1/p' BENCH_serve.json)
awk -v s="${spec_speedup:-0}" 'BEGIN { exit !(s >= 1.15) }' \
  || { echo "specialized warm speedup is ${spec_speedup:-absent}; expected >= 1.15"; exit 1; }
# Under the 4/2/1 open-loop overload the weighted fair queue must hold
# per-tenant goodput within 15% of the configured weight shares.
fairness=$(sed -n 's/.*"fairness_max_deviation": \([0-9.e-]*\).*/\1/p' BENCH_serve.json)
awk -v f="${fairness:-1}" 'BEGIN { exit !(f <= 0.15) }' \
  || { echo "QoS fairness deviation is ${fairness:-absent}; expected <= 0.15"; exit 1; }
# Deadline-aware admission only accepts SLOs the device model says are
# feasible, so no admitted job may finish past its deadline.
deadline_misses=$(sed -n 's/.*"deadline_misses": \([0-9]*\).*/\1/p' BENCH_serve.json | head -n 1)
awk -v n="${deadline_misses:-1}" 'BEGIN { exit !(n == 0) }' \
  || { echo "QoS deadline misses: ${deadline_misses:-absent}; expected 0"; exit 1; }
# Under planned placement the one-pass warmup must leave essentially every
# post-warmup batch on a device already holding its chunk (the affinity
# pass reports the same field first, so take the sharding object's last).
shard_hits=$(sed -n 's/.*"resident_hit_rate": \([0-9.]*\).*/\1/p' BENCH_serve.json | tail -n 1)
awk -v r="${shard_hits:-0}" 'BEGIN { exit !(r >= 0.95) }' \
  || { echo "sharding resident hit rate is ${shard_hits:-absent}; expected >= 0.95"; exit 1; }
# The plan's pre-run makespan prediction (calibrated models + the
# scheduler's decayed bias corrections) must land within 10% of the
# measured post-warmup scan.
plan_err=$(sed -n 's/.*"plan_prediction_error": \([0-9.]*\).*/\1/p' BENCH_serve.json)
awk -v e="${plan_err:-1}" 'BEGIN { exit !(e <= 0.10) }' \
  || { echo "sharding plan prediction error is ${plan_err:-absent}; expected <= 0.10"; exit 1; }
# The warm library screen — cached candidate lists plus fused multi-guide
# comparer launches — must beat the per-guide baseline screen outright.
screen_speedup=$(sed -n 's/.*"screen_speedup": \([0-9.]*\).*/\1/p' BENCH_serve.json)
awk -v s="${screen_speedup:-0}" 'BEGIN { exit !(s >= 1.5) }' \
  || { echo "library screen speedup is ${screen_speedup:-absent}; expected >= 1.5"; exit 1; }
# Post-warmup essentially every sweep must find its (chunk, pattern)
# candidate list already published.
cand_hits=$(sed -n 's/.*"candidate_hit_rate": \([0-9.]*\).*/\1/p' BENCH_serve.json)
awk -v r="${cand_hits:-0}" 'BEGIN { exit !(r >= 0.9) }' \
  || { echo "library candidate hit rate is ${cand_hits:-absent}; expected >= 0.9"; exit 1; }
# Fused launches must cover whole guide blocks: at most one comparer
# launch per ten coalesced jobs, against one-per-guide unfused.
launch_ratio=$(sed -n 's/.*"comparer_launch_ratio": \([0-9.]*\).*/\1/p' BENCH_serve.json)
awk -v r="${launch_ratio:-1}" 'BEGIN { exit !(r <= 0.1) }' \
  || { echo "library comparer launch ratio is ${launch_ratio:-absent}; expected <= 0.1"; exit 1; }
# Replaying the open-loop trace against the elastic pool, the autoscaler
# must hold the end-to-end p99 SLO to at most a 1% violation rate.
slo_viol=$(sed -n 's/.*"p99_slo_violation_rate": \([0-9.]*\).*/\1/p' BENCH_serve.json)
awk -v v="${slo_viol:-1}" 'BEGIN { exit !(v <= 0.01) }' \
  || { echo "autoscaled p99 SLO violation rate is ${slo_viol:-absent}; expected <= 0.01"; exit 1; }
# ...while provisioning at least 15% fewer device-seconds than the
# peak-static fleet — the cost side of the elasticity trade.
ds_saved=$(sed -n 's/.*"device_seconds_saved": \([0-9.]*\).*/\1/p' BENCH_serve.json)
awk -v s="${ds_saved:-0}" 'BEGIN { exit !(s >= 0.15) }' \
  || { echo "autoscaled device-seconds saved is ${ds_saved:-absent}; expected >= 0.15"; exit 1; }

echo "== bench: specialized vs generic comparers =="
cargo bench -q -p casoff-bench --bench serve_specialize

echo "== bench: library screens, fused vs per-guide =="
cargo bench -q -p casoff-bench --bench serve_library

echo "== bench: trace generator, window ring, autoscale controller =="
cargo bench -q -p casoff-bench --bench serve_trace

echo "== tier-1 OK =="
