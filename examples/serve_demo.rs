//! The batch-serving subsystem end to end: four submitter threads push a
//! batch of query jobs at a heterogeneous 4-device pool, the coalescer
//! shares chunk uploads between jobs with the same PAM pattern, the genome
//! cache keeps the hot chunks resident as 2-bit packed payloads, and the
//! cost-aware scheduler places each batch on the device with the earliest
//! predicted completion. Every job's results are verified byte-identical
//! to the serial pipelines.
//!
//! Three generations of the serving path are compared at the same cache
//! byte budget and written to `BENCH_serve.json`:
//!
//! * **raw + shortest-queue** — the PR 2 baseline: one-byte-per-base
//!   cache payloads, shortest-queue placement, fixed in-flight depth.
//! * **packed + cost-aware** — the PR 3 path: 2-bit packed payloads and
//!   earliest-predicted-completion placement, every batch still paying
//!   its chunk upload and every duplicate job its compute.
//! * **affinity** — the PR 4 path: devices keep resident chunk payloads
//!   (the scheduler steers repeat chunks back to their holder and the
//!   runner skips the upload) and a content-addressed result store serves
//!   repeat specs without any compute. Measured by serving several
//!   fresh-guide workloads through one service — every round computes,
//!   but on chunks the pool already holds — then replaying the first
//!   workload verbatim: the replay must finish with **zero** kernel
//!   launches.
//!
//! A further pair of runs replays the same tenant load against an
//! **exception-dense** soft-masked assembly, where 2-bit-with-exceptions
//! is off the table: the char-comparer fallback (raw payloads) against
//! the PR 5 adaptive cache, which flips dense chunks to 4-bit nibble
//! payloads so **zero** batches fall back to the char comparer and every
//! chunk still uploads packed, at half a byte per base.
//!
//! Finally, **this PR's** generation: the adaptive workload served again
//! with per-(pattern, threshold) constant-folded kernel variants — on the
//! nibble path both the PAM finder and the comparer fold — once with a
//! cold process-wide variant cache (every variant compiles) and once warm
//! (every variant is a cache hit), plus a per-variant ISA table — code
//! bytes, SGPRs, VGPRs, occupancy — generic vs folded.
//!
//! The closing pass is the **trace-driven load harness**: a seeded,
//! replayable open-loop trace (diurnal ramp → on/off burst → quiet tail,
//! with tenant-mix shifts and a hot-spot phase) is replayed twice — once
//! against the peak-static 4-device pool, once against an elastic pool
//! that starts at one device under an autoscaler watching predicted
//! queue delay. Both replays must fold byte-identical result digests,
//! the autoscaled pool must hold the end-to-end p99 SLO while
//! provisioning materially fewer device-seconds than the static fleet,
//! and every scale event replans the shard plan minimally.
//!
//! ```text
//! cargo run --release --example serve_demo
//! CASOFF_SERVE_JOBS=200 cargo run --release --example serve_demo
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cas_offinder::kernels::specialize::{generic_model, specialized_model};
use cas_offinder::kernels::{OptLevel, VariantKind};
use cas_offinder::pipeline::{ocl, PipelineConfig};
use cas_offinder::{OffTarget, SearchInput};
use casoff_serve::trace::{fold_results, schedule_digest, RESULT_DIGEST_SEED};
use casoff_serve::{
    ArrivalShape, AutoscaleConfig, AutoscaleReport, Autoscaler, ChunkEncoding, HotSpot, JobSpec,
    MetricsReport, PhaseSpec, Placement, Poll, ScaleDirection, Service, ServiceConfig,
    SubmitError, TenantConfig, TenantId, Ticket, TraceEvent, TraceSpec,
};
use genome::rng::Xoshiro256;
use genome::Assembly;
use gpu_sim::isa::compile;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceSpec, ExecMode, NdRange};

const SUBMITTERS: usize = 4;
const CHUNK_SIZE: usize = 1 << 13;
/// Genome scale: ~18.6k bases per chromosome, so most chunks fill the full
/// 8 KiB and the chunk payload dominates the per-batch query tables.
const GENOME_SCALE: f64 = 0.02;
/// Cache byte budget shared by both runs: holds the packed working set
/// with room to spare, but not the raw one — the equal-budget comparison
/// the cache redesign is about.
const CACHE_BYTES: usize = 128 * 1024;
/// Virtual-time pacing: workers hold each batch for its simulated duration
/// (scaled), so queue drain — and therefore placement quality — follows
/// device speed rather than host speed.
const PACING: f64 = 1500.0;
/// Compute rounds through the affinity service, each with fresh guides.
/// Round 0 pays the genome's chunk uploads; later rounds find the chunks
/// resident. The replay round after these is served without compute.
const AFFINITY_ROUNDS: usize = 4;
/// Residency budget per device for the affinity run: generous next to the
/// ~12 chunks-per-pattern each device settles on for this genome, so
/// steering — not capacity — decides the hit rate.
const RESIDENT_CHUNKS: usize = 32;
/// Chunk size for the exception-dense comparison: large enough that the
/// chunk payload dominates the per-batch query tables, so the measured
/// upload ratio reflects the encodings (1 B/base vs half a byte).
const MASKED_CHUNK_SIZE: usize = 1 << 14;
/// Genome scale for the sharding pass: ~130 kb per chromosome, so the
/// primary assembly spans ~128 production-sized chunks — enough for the
/// range partition to give every device a real share.
const SHARD_SCALE: f64 = 0.14;
/// Residency budget per device for the sharding pass: comfortably above
/// the largest partition share across both assemblies and both PAM
/// patterns, so the one-pass warmup never evicts its own uploads.
const SHARD_RESIDENT_CHUNKS: usize = 512;
/// Distinct guides per assembly in the measured sharding scan, cycling
/// over the two PAM patterns (two full scans per pattern).
const SHARD_GUIDES: usize = 4;

fn spec_text(spec: &JobSpec) -> String {
    format!(
        "{}\n{}\n{} {}\n",
        spec.assembly,
        std::str::from_utf8(&spec.pattern).unwrap(),
        std::str::from_utf8(&spec.guide).unwrap(),
        spec.max_mismatches
    )
}

/// Twenty distinct tenant requests over two PAM patterns; the submitted
/// jobs cycle through them, so the coalescer always has same-pattern
/// company to batch with. Different seeds give disjoint tenant sets over
/// the same genome — what the affinity rounds rely on.
fn tenant_specs(seed: u64) -> Vec<JobSpec> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let patterns: [&[u8]; 2] = [b"NNNNNNNNNRG", b"NNNNNNNNNGG"];
    (0..20)
        .map(|i| {
            let mut guide: Vec<u8> = (0..8).map(|_| *rng.choose(b"ACGT").unwrap()).collect();
            guide.extend_from_slice(b"NNN");
            JobSpec::new("hg38-mini", patterns[i % 2].to_vec(), guide, 3)
        })
        .collect()
}

fn serial_oracle(
    assembly: &Assembly,
    serial_config: &PipelineConfig,
    specs: &[JobSpec],
) -> Vec<Vec<OffTarget>> {
    specs
        .iter()
        .map(|spec| {
            let input = SearchInput::parse(&spec_text(spec)).unwrap();
            ocl::run(assembly, &input, serial_config).unwrap().offtargets
        })
        .collect()
}

fn config_with(encoding: ChunkEncoding, placement: Placement, chunk_size: usize) -> ServiceConfig {
    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = chunk_size;
    config.queue_cost_limit = 10_000_000; // ~67 queued jobs: backpressure shows up
    config.cache_bytes = CACHE_BYTES;
    config.cache_encoding = encoding;
    config.placement = placement;
    config.pacing = PACING;
    // The raw/packed generations predate both reuse layers; they pay
    // every upload and every duplicate compute.
    config.resident_chunks = 0;
    config.result_cache_bytes = 0;
    // The earlier generations also predate kernel specialization; the
    // dedicated specialized-vs-generic comparison below flips this on.
    config.specialize = false;
    // And they predate the library fast path; the dedicated library pass
    // below flips both layers on.
    config.multi_guide = false;
    config.candidate_cache_bytes = 0;
    config
}

/// Submit `jobs` jobs cycling through `specs` from racing submitter
/// threads, wait for all of them, and verify each against `oracle`.
/// Returns the total number of result sites, for the progress line.
fn serve_jobs(
    service: &Arc<Service>,
    jobs: usize,
    specs: &[JobSpec],
    oracle: &[Vec<OffTarget>],
) -> usize {
    // Submitters race the pool; a full queue means back off and retry, so
    // every job is eventually admitted but rejections are counted.
    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|s| {
            let service = Arc::clone(service);
            let specs = specs.to_vec();
            std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in (s..jobs).step_by(SUBMITTERS) {
                    let spec = specs[i % specs.len()].clone();
                    loop {
                        match service.submit(spec.clone()) {
                            Ok(id) => {
                                ids.push((id, i % specs.len()));
                                break;
                            }
                            Err(SubmitError::Shed { .. }) => {
                                std::thread::sleep(Duration::from_micros(500));
                            }
                            Err(err) => panic!("unexpected rejection: {err}"),
                        }
                    }
                }
                ids
            })
        })
        .collect();
    let ids: Vec<(u64, usize)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter panicked"))
        .collect();
    assert_eq!(ids.len(), jobs);

    let results: HashMap<u64, Vec<OffTarget>> = ids
        .iter()
        .map(|&(id, _)| (id, service.wait(id).expect("job was admitted")))
        .collect();
    let mut sites = 0;
    for &(id, spec_index) in &ids {
        assert_eq!(results[&id], oracle[spec_index], "job {id}");
        sites += results[&id].len();
    }
    sites
}

/// Serve `jobs` jobs through a fresh single-generation service and return
/// the metrics snapshot.
#[allow(clippy::too_many_arguments)]
fn serve_run(
    label: &str,
    assembly: &Assembly,
    encoding: ChunkEncoding,
    placement: Placement,
    chunk_size: usize,
    jobs: usize,
    specs: &[JobSpec],
    oracle: &[Vec<OffTarget>],
) -> MetricsReport {
    serve_run_specialized(
        label, assembly, encoding, placement, chunk_size, jobs, specs, oracle, false,
    )
}

/// [`serve_run`] with the kernel-specialization switch exposed.
#[allow(clippy::too_many_arguments)]
fn serve_run_specialized(
    label: &str,
    assembly: &Assembly,
    encoding: ChunkEncoding,
    placement: Placement,
    chunk_size: usize,
    jobs: usize,
    specs: &[JobSpec],
    oracle: &[Vec<OffTarget>],
    specialize: bool,
) -> MetricsReport {
    let mut config = config_with(encoding, placement, chunk_size);
    config.specialize = specialize;
    let service = Arc::new(Service::start(config, vec![assembly.clone()]));
    let sites = serve_jobs(&service, jobs, specs, oracle);
    println!(
        "[{label}] {jobs} jobs served, {sites} sites total, all byte-identical to the serial pipeline"
    );

    let report = service.metrics();
    print!("{report}");
    assert_eq!(report.jobs_completed, jobs as u64);
    if report.jobs_shed > 0 {
        println!(
            "backpressure: {} submissions were shed off the full queue before admission",
            report.jobs_shed
        );
    }
    println!();

    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => unreachable!("all submitters joined"),
    }
    report
}

fn total_kernel_launches(report: &MetricsReport) -> u64 {
    report.devices.iter().map(|d| d.kernel_launches).sum()
}

/// The affinity generation: `AFFINITY_ROUNDS` fresh-guide workloads
/// through one long-lived service, then a verbatim replay of round 0.
/// Returns the cumulative report and the replay's result-store hit rate.
fn affinity_run(
    jobs: usize,
    round0_specs: &[JobSpec],
    round0_oracle: &[Vec<OffTarget>],
    serial_config: &PipelineConfig,
) -> (MetricsReport, f64) {
    let assembly = genome::synth::hg38_mini(GENOME_SCALE);
    let mut config = config_with(ChunkEncoding::Packed, Placement::EarliestCompletion, CHUNK_SIZE);
    config.resident_chunks = RESIDENT_CHUNKS;
    config.result_cache_bytes = 1 << 23; // all rounds' results stay resident
    let service = Arc::new(Service::start(config, vec![assembly.clone()]));

    for round in 0..AFFINITY_ROUNDS {
        let (specs, oracle) = if round == 0 {
            (round0_specs.to_vec(), round0_oracle.to_vec())
        } else {
            let specs = tenant_specs(0x5E4E + round as u64 * 0x9E37_79B9);
            let oracle = serial_oracle(&assembly, serial_config, &specs);
            (specs, oracle)
        };
        let sites = serve_jobs(&service, jobs, &specs, &oracle);
        let r = service.metrics();
        println!(
            "[affinity round {round}] {jobs} jobs, {sites} sites; cumulative: \
             {:.1}% of batches reused a resident chunk, {} B uploads skipped, \
             {:.1}% of jobs served without compute",
            100.0 * r.resident_hit_rate(),
            r.h2d_skipped_bytes(),
            100.0 * r.result_cache_hit_rate(),
        );
    }

    // Replay round 0 verbatim: the result store must serve every job with
    // no new batches and no new kernel launches.
    let before = service.metrics();
    let sites = serve_jobs(&service, jobs, round0_specs, round0_oracle);
    let report = service.metrics();
    let launches = total_kernel_launches(&report) - total_kernel_launches(&before);
    let served = (report.results.hits + report.results.merges)
        - (before.results.hits + before.results.merges);
    let replay_hit_rate = served as f64 / jobs as f64;
    println!(
        "[affinity replay] {jobs} jobs, {sites} sites; {served} served from the \
         result store, {} new batches, {launches} new kernel launches\n",
        report.batches_formed - before.batches_formed,
    );
    print!("{report}");
    println!();

    assert_eq!(
        launches, 0,
        "a replayed workload must not launch any kernels"
    );
    assert_eq!(
        report.batches_formed, before.batches_formed,
        "a replayed workload must not form any batches"
    );
    assert_eq!(
        served as usize, jobs,
        "every replayed job must be served from the result store"
    );

    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => unreachable!("all submitters joined"),
    }
    (report, replay_hit_rate)
}

/// Per-tenant goodput-cost quota, in whole jobs, for the QoS overload run:
/// tenant 3 (weight 1) admits `QOS_QUOTA_JOBS` jobs per burst, tenants 2
/// and 1 proportionally more.
const QOS_QUOTA_JOBS: u64 = 8;
/// Open-loop overload bursts through the QoS service. Each burst offers
/// far more work than the quotas admit; goodput accumulates across bursts.
const QOS_ROUNDS: usize = 3;

/// The multi-tenant QoS front end under sustained open-loop overload:
/// three tenants with weights 4/2/1 each flood the service with more work
/// than their quotas admit, every admitted job is collected by *polling*
/// (never a blocking `wait`), completions are counted through registered
/// callbacks, and each result is verified byte-identical to the serial
/// oracle. Deadline admission is exercised on top: generous (feasible)
/// deadlines ride along and must all be met; impossible ones must be
/// rejected up front. Returns the report plus the deadline-rejection
/// count.
fn qos_run(
    assembly: &Assembly,
    specs: &[JobSpec],
    oracle: &[Vec<OffTarget>],
) -> (MetricsReport, u64) {
    let weights: [(TenantId, u32); 3] = [
        (TenantId(1), 4),
        (TenantId(2), 2),
        (TenantId(3), 1),
    ];
    let job_cost = assembly.total_len() as u64;
    let mut config = config_with(ChunkEncoding::Packed, Placement::EarliestCompletion, CHUNK_SIZE);
    // Budget = Σ quotas = 7 weight-shares of QOS_QUOTA_JOBS jobs each, so
    // derived quotas land on whole job counts (4/2/1 × QOS_QUOTA_JOBS) and
    // the budget can never bind before a tenant's quota.
    config.queue_cost_limit = 7 * QOS_QUOTA_JOBS * job_cost;
    // Every job computes: goodput is real device work, not cache hits.
    config.result_cache_bytes = 0;
    config.tenants = weights
        .iter()
        .map(|&(id, w)| TenantConfig::weighted(id, w))
        .collect();
    let service = Arc::new(Service::start(config, vec![assembly.clone()]));

    let done_callbacks = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut admitted: Vec<(Ticket, usize)> = Vec::new();
    let mut offered = 0u64;
    for round in 0..QOS_ROUNDS {
        // Open-loop burst, one racing submitter per tenant: each offers
        // every spec twice (far beyond any quota) with no backoff — a shed
        // job is simply dropped, as a front end under overload would.
        let handles: Vec<_> = weights
            .iter()
            .map(|&(tenant, _)| {
                let service = Arc::clone(&service);
                let specs = specs.to_vec();
                std::thread::spawn(move || {
                    let mut tickets = Vec::new();
                    let mut offered = 0u64;
                    for rep in 0..2 {
                        for (i, spec) in specs.iter().enumerate() {
                            // Feasible SLO on half the jobs: generous next
                            // to the paced drain of one burst.
                            let mut spec = spec.clone().for_tenant(tenant);
                            if (i + rep) % 2 == 0 {
                                spec = spec.with_deadline(Duration::from_secs(600));
                            }
                            offered += 1;
                            match service.submit_ticket(spec) {
                                Ok(ticket) => tickets.push((ticket, i)),
                                Err(SubmitError::Shed { retry_after_cost }) => {
                                    assert!(retry_after_cost > 0, "typed hint is actionable");
                                }
                                Err(err) => panic!("unexpected rejection: {err}"),
                            }
                        }
                    }
                    (tickets, offered)
                })
            })
            .collect();
        let mut round_admitted = Vec::new();
        for h in handles {
            let (tickets, n) = h.join().expect("submitter panicked");
            round_admitted.extend(tickets);
            offered += n;
        }
        // Register completion callbacks, then drain the burst by polling —
        // no thread ever parks in `wait`.
        for (ticket, _) in &round_admitted {
            let done = Arc::clone(&done_callbacks);
            service
                .on_complete(ticket.id, move |_| {
                    done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                })
                .expect("admitted jobs accept callbacks");
        }
        let mut pending: Vec<usize> = (0..round_admitted.len()).collect();
        while !pending.is_empty() {
            pending.retain(|&k| {
                match service
                    .poll(round_admitted[k].0.id)
                    .expect("admitted jobs poll cleanly")
                {
                    Poll::Ready(records) => {
                        assert_eq!(
                            records, oracle[round_admitted[k].1],
                            "polled results must be byte-identical to the serial oracle"
                        );
                        false
                    }
                    Poll::Pending => true,
                }
            });
            if !pending.is_empty() {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let r = service.metrics();
        println!(
            "[qos round {round}] {} admitted of {} offered so far; \
             fairness deviation {:.1}%, {} quota sheds / {} budget sheds",
            r.jobs_admitted,
            offered,
            100.0 * r.fairness_max_deviation(),
            r.sheds_quota,
            r.sheds_budget,
        );
        admitted.extend(round_admitted);
    }

    // Deadline admission, on the now-idle service: an impossible SLO is
    // rejected up front with the model's predicted completion.
    let mut deadline_rejections = 0u64;
    for spec in specs.iter().take(4) {
        match service.submit_ticket(
            spec.clone()
                .for_tenant(TenantId(3))
                .with_deadline(Duration::from_micros(1)),
        ) {
            Err(SubmitError::DeadlineInfeasible { predicted }) => {
                assert!(predicted > Duration::from_micros(1));
                deadline_rejections += 1;
            }
            Ok(ticket) => {
                // The model may price an empty queue under 1 µs of wall
                // time only if pacing were off; with pacing on this arm is
                // unreachable, but drain it defensively.
                let _ = service.wait(ticket.id);
                panic!("a 1 µs deadline must be infeasible under pacing");
            }
            Err(err) => panic!("unexpected rejection: {err}"),
        }
    }

    // Callbacks fire from the workers' settle path *after* the entry is
    // marked done, so a poll can collect a job an instant before its
    // callback lands — give stragglers a bounded moment to quiesce before
    // holding the count to exactly-once.
    for _ in 0..10_000 {
        if done_callbacks.load(std::sync::atomic::Ordering::Relaxed) >= admitted.len() as u64 {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let report = service.metrics();
    print!("{report}");
    println!();
    assert_eq!(
        done_callbacks.load(std::sync::atomic::Ordering::Relaxed),
        admitted.len() as u64,
        "every admitted job fired its completion callback exactly once"
    );
    assert_eq!(
        report.blocking_waits, 0,
        "the poll/callback harness must never park a thread in wait"
    );
    assert_eq!(report.jobs_completed, admitted.len() as u64);
    assert_eq!(
        report.sheds_budget, 0,
        "derived quotas must bind before the budget, so every shed is \
         attributable to an over-quota tenant"
    );
    assert!(report.jobs_shed > 0, "the overload must actually shed");
    assert_eq!(report.deadline_misses, 0, "every feasible SLO was met");
    let deviation = report.fairness_max_deviation();
    assert!(
        deviation <= 0.15,
        "per-tenant goodput must match the 4/2/1 weights within 15%, \
         got {:.1}%",
        100.0 * deviation
    );

    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => unreachable!("all submitters joined"),
    }
    (report, deadline_rejections)
}

/// `SHARD_GUIDES` distinct tenant requests against `assembly`, cycling
/// the two PAM patterns — the measured workload of the sharding pass.
fn sharding_specs(seed: u64, assembly: &str) -> Vec<JobSpec> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let patterns: [&[u8]; 2] = [b"NNNNNNNNNRG", b"NNNNNNNNNGG"];
    (0..SHARD_GUIDES)
        .map(|i| {
            let mut guide: Vec<u8> = (0..8).map(|_| *rng.choose(b"ACGT").unwrap()).collect();
            guide.extend_from_slice(b"NNN");
            JobSpec::new(assembly, patterns[i % 2].to_vec(), guide, 3)
        })
        .collect()
}

/// What the sharding pass hands back for the summary, JSON, and gates.
struct ShardingOutcome {
    report: MetricsReport,
    jobs: usize,
    chunks: usize,
    resident_hit_rate: f64,
    predicted_makespan_s: f64,
    measured_makespan_s: f64,
    plan_prediction_error: f64,
    migrated_out: usize,
}

/// This PR's tentpole: up-front planned placement. A `Placement::Planned`
/// service partitions both assemblies' chunk spaces across the fleet by
/// calibrated admission rate, a one-pass warmup prefetches every device's
/// partition on first touch, and then a multi-assembly workload — one
/// full scan of the ~128-chunk `hg38_mini` per guide plus the masked
/// assembly alongside — runs post-warmup. The pass holds dispatch
/// accountable to the plan twice over: near-every batch must find its
/// chunk resident on its planned owner, and the measured makespan must
/// land within 10% of the plan's pre-run prediction. A fleet change at
/// the end demonstrates minimal migration (out and back are the same
/// chunk set, and the restored plan is the original).
fn sharding_run(serial_config: &PipelineConfig) -> ShardingOutcome {
    let assembly = genome::synth::hg38_mini(SHARD_SCALE);
    let masked_assembly = genome::synth::hg38_masked_mini(GENOME_SCALE);
    let mut config = config_with(ChunkEncoding::Packed, Placement::Planned, CHUNK_SIZE);
    // Paced drain (inherited from `config_with`) keeps queue depth
    // following simulated device speed, so owners saturate only when the
    // plan mispredicts. Single-job batches match the prediction's
    // per-pass unit, and the raised admission budget lets the whole
    // measured workload queue at once.
    config.max_batch = 1;
    config.resident_chunks = SHARD_RESIDENT_CHUNKS;
    config.result_cache_bytes = 0;
    config.cache_bytes = 1 << 21;
    config.queue_cost_limit = 100_000_000;
    let service = Arc::new(Service::start(
        config,
        vec![assembly.clone(), masked_assembly.clone()],
    ));
    let plan = service.plan().expect("planned placement installs a plan");
    let hg_chunks = plan.chunk_count("hg38-mini").expect("registered assembly");
    let masked_chunks = plan.chunk_count("hg38-masked").expect("registered assembly");
    let shares: Vec<usize> = (0..service.metrics().devices.len())
        .map(|d| {
            (0..hg_chunks)
                .filter(|&i| plan.owner_of("hg38-mini", i) == d)
                .count()
        })
        .collect();
    println!(
        "[sharding] plan: {hg_chunks} + {masked_chunks} chunks partitioned, \
         hg38-mini shares per device: {shares:?}"
    );

    let specs = sharding_specs(0xD157, "hg38-mini");
    let masked_specs = sharding_specs(0x51AB, "hg38-masked");
    let oracle = serial_oracle(&assembly, serial_config, &specs);
    let masked_oracle = serial_oracle(&masked_assembly, serial_config, &masked_specs);

    // One-pass warmup: one job per (assembly, pattern) pair. Each worker's
    // first batch of a pair triggers the prefetch of its whole partition,
    // so by the end of these four jobs every planned chunk is resident on
    // its owner (residency is keyed per pattern).
    let warm_specs = vec![
        specs[0].clone(),
        specs[1].clone(),
        masked_specs[0].clone(),
        masked_specs[1].clone(),
    ];
    let warm_oracle = vec![
        oracle[0].clone(),
        oracle[1].clone(),
        masked_oracle[0].clone(),
        masked_oracle[1].clone(),
    ];
    serve_jobs(&service, warm_specs.len(), &warm_specs, &warm_oracle);
    let warmed = service.metrics();
    println!(
        "[sharding] warmup: {} partition uploads prefetched, {} planned hits / {} spills",
        warmed.prefetch_uploads, warmed.planned_hits, warmed.spill_fallbacks
    );

    for (d, b) in service.bias_corrections().iter().enumerate() {
        println!(
            "[sharding] bias corrections[{}]: 2bit {:.3}, char {:.3} (decayed measured/model ratio)",
            d, b[1], b[2]
        );
    }

    // The pre-run promise, priced after warmup so the converged bias is
    // in: per-device busy seconds with every chunk resident on its owner,
    // summed over both assemblies and both patterns.
    let devices = warmed.devices.len();
    let mut predicted = vec![0.0f64; devices];
    for (name, group) in [("hg38-mini", &specs), ("hg38-masked", &masked_specs)] {
        for pattern in [b"NNNNNNNNNRG".as_slice(), b"NNNNNNNNNGG".as_slice()] {
            let passes = group.iter().filter(|s| s.pattern == pattern).count();
            let busy = service
                .plan_scan_prediction(name, pattern, passes, true)
                .expect("plan + registered assembly");
            for (d, b) in busy.iter().enumerate() {
                predicted[d] += b;
            }
        }
    }
    let predicted_makespan_s = predicted.iter().cloned().fold(0.0, f64::max);
    let warmup_predicted = service
        .plan_warmup_prediction("hg38-mini", &specs[0].pattern)
        .expect("plan + registered assembly");
    println!(
        "[sharding] predicted: makespan {predicted_makespan_s:.6} s post-warmup \
         (one-pass warmup itself {:.6} s on the slowest device)",
        warmup_predicted.iter().cloned().fold(0.0, f64::max)
    );

    // The measured scan: every distinct guide once, against both
    // assemblies — 8 full-genome scans over prefetched partitions.
    let all_specs: Vec<JobSpec> = specs.iter().chain(&masked_specs).cloned().collect();
    let all_oracle: Vec<Vec<OffTarget>> = oracle.iter().chain(&masked_oracle).cloned().collect();
    let jobs = all_specs.len();
    let sites = serve_jobs(&service, jobs, &all_specs, &all_oracle);
    let report = service.metrics();
    println!(
        "[sharding] {jobs} jobs served post-warmup, {sites} sites, all byte-identical \
         to the serial pipeline"
    );

    let hits: u64 = report.devices.iter().map(|d| d.resident_hits).sum::<u64>()
        - warmed.devices.iter().map(|d| d.resident_hits).sum::<u64>();
    let misses: u64 = report.devices.iter().map(|d| d.resident_misses).sum::<u64>()
        - warmed.devices.iter().map(|d| d.resident_misses).sum::<u64>();
    let resident_hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let measured: Vec<f64> = report
        .devices
        .iter()
        .zip(&warmed.devices)
        .map(|(a, b)| a.busy_s - b.busy_s)
        .collect();
    let measured_makespan_s = measured.iter().cloned().fold(0.0, f64::max);
    let plan_prediction_error =
        (measured_makespan_s - predicted_makespan_s).abs() / predicted_makespan_s;
    for (d, device) in report.devices.iter().enumerate() {
        println!(
            "[sharding]   {} [{}]: predicted {:.6} s, measured {:.6} s",
            device.name, device.api, predicted[d], measured[d]
        );
    }
    println!(
        "[sharding] measured: makespan {measured_makespan_s:.6} s ({:.1}% off the plan), \
         {:.1}% of post-warmup batches found their chunk resident on the planned owner",
        100.0 * plan_prediction_error,
        100.0 * resident_hit_rate,
    );

    // Fleet change on the now-idle service: dropping a device migrates
    // only its chunks; bringing it back restores the original plan — the
    // same chunk set moves, and nothing else ever does.
    let migrated_out = service.set_device_active(3, false);
    let migrated_back = service.set_device_active(3, true);
    assert_eq!(
        migrated_out, migrated_back,
        "the chunks that migrate out are exactly the ones that come back"
    );
    assert_eq!(
        service
            .plan()
            .expect("plan still installed")
            .migrated_from(&plan),
        0,
        "re-activation must restore the original plan"
    );
    println!(
        "[sharding] fleet change: device 3 out migrates {migrated_out} of {} chunks, \
         back in restores the original plan\n",
        hg_chunks + masked_chunks
    );

    let report = service.metrics();
    print!("{report}");
    println!();

    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => unreachable!("all submitters joined"),
    }
    ShardingOutcome {
        report,
        jobs,
        chunks: hg_chunks + masked_chunks,
        resident_hit_rate,
        predicted_makespan_s,
        measured_makespan_s,
        plan_prediction_error,
        migrated_out,
    }
}

/// Guides per library screen — production pooled-library scale.
const LIBRARY_GUIDES: usize = 2000;
/// Genome scale for the library pass: ~4.7k bases per chromosome keeps the
/// 125-sweep screen tractable while the assembly still spans a couple
/// dozen chunks for the candidate cache to manage.
const LIBRARY_SCALE: f64 = 0.005;
/// Guide-block-sized groups: each coalesced batch carries exactly one
/// fused comparer launch, so the launch ratio lands at 1/16.
const LIBRARY_MAX_BATCH: usize = 16;

/// What the library pass hands back for the summary, JSON, and gates.
struct LibraryOutcome {
    report: MetricsReport,
    sites: usize,
    baseline_makespan_s: f64,
    warm_makespan_s: f64,
    screen_speedup: f64,
}

/// This PR's tentpole: a pooled-library screen — one PAM pattern,
/// [`LIBRARY_GUIDES`] guides — as a single [`JobSpec::library`] job. The
/// baseline service predates the fast path (no fused comparers, no
/// candidate cache): every guide block pays one comparer launch per guide
/// and every sweep re-runs the finder. The fast service screens the same
/// library with fused multi-guide launches, then screens it *again*
/// post-warmup, where the content-addressed candidate cache holds every
/// chunk's finder output and the dispatch prices every sweep with its
/// finder skipped. Both screens' unions must be byte-identical to the
/// baseline's, and the speedup is measured warm-screen vs baseline on
/// simulated device time.
fn library_run() -> LibraryOutcome {
    let assembly = genome::synth::hg38_mini(LIBRARY_SCALE);
    let mut rng = Xoshiro256::seed_from_u64(0x11B2);
    let guides: Vec<Vec<u8>> = (0..LIBRARY_GUIDES)
        .map(|_| {
            let mut g: Vec<u8> = (0..8).map(|_| *rng.choose(b"ACGT").unwrap()).collect();
            g.extend_from_slice(b"NNN");
            g
        })
        .collect();
    let spec = JobSpec::library("hg38-mini", b"NNNNNNNNNRG".to_vec(), guides, 3);

    let mut config = config_with(ChunkEncoding::Packed, Placement::EarliestCompletion, CHUNK_SIZE);
    config.max_batch = LIBRARY_MAX_BATCH;
    // One screen costs total_len x guides admission units; let it queue.
    config.queue_cost_limit = 1 << 31;
    // The pass measures simulated device seconds; pacing would only
    // stretch the wall clock of the ~3000-batch screens.
    config.pacing = 0.0;
    // Repeat screens must recompute: the point is the candidate cache and
    // fused launches, not result-store dedup (that path is measured by the
    // affinity replay above).
    config.result_cache_bytes = 0;
    // The baseline predates the fast path; the fast service gets both
    // layers at the paper-pool budget.
    let base_config = config.clone();
    config.multi_guide = true;
    config.candidate_cache_bytes = 1 << 20;

    // Baseline: the pre-fast-path service screens the library with
    // per-guide comparer launches and a finder sweep per batch. Its union
    // — per-guide compute on the path the earlier passes verified against
    // the serial pipeline — is the oracle for the fast screens.
    let baseline_service = Arc::new(Service::start(base_config, vec![assembly.clone()]));
    let oracle = baseline_service
        .wait(baseline_service.submit(spec.clone()).expect("screen admits"))
        .expect("screen completes");
    assert!(!oracle.is_empty(), "the screen must find sites");
    let baseline = baseline_service.metrics();
    let baseline_makespan_s = makespan_s(&baseline);
    match Arc::try_unwrap(baseline_service) {
        Ok(service) => service.shutdown(),
        Err(_) => unreachable!("no outstanding handles"),
    }
    println!(
        "[library baseline] {LIBRARY_GUIDES} guides, {} sites; {} finder / {} comparer \
         launches, makespan {baseline_makespan_s:.6} s",
        oracle.len(),
        baseline.finder_launches,
        baseline.comparer_launches,
    );

    // Fast path, cold: the first screen leads every (chunk, pattern)
    // candidate list into the cache while its guide blocks already ride
    // fused launches.
    let service = Arc::new(Service::start(config, vec![assembly]));
    let warmup = service
        .wait(service.submit(spec.clone()).expect("screen admits"))
        .expect("screen completes");
    assert_eq!(warmup, oracle, "fused launches must not change the union");
    let warmed = service.metrics();
    println!(
        "[library cold]     same screen fused: {} comparer launches ({} fused), \
         {} candidate lists published",
        warmed.comparer_launches, warmed.fused_launches, warmed.candidates.inserts,
    );

    // Fast path, warm: every sweep finds its candidate list published, so
    // dispatch prices the finder at zero and the workers replay the lists.
    let measured = service
        .wait(service.submit(spec).expect("screen admits"))
        .expect("screen completes");
    assert_eq!(measured, oracle, "cached candidates must not change the union");
    let report = service.metrics();
    let warm_makespan_s = report
        .devices
        .iter()
        .zip(&warmed.devices)
        .map(|(a, b)| a.busy_s - b.busy_s)
        .fold(0.0, f64::max);
    let screen_speedup = baseline_makespan_s / warm_makespan_s;
    println!(
        "[library warm]     {} finder launches skipped, {:.1}% candidate hit rate, \
         {:.3} comparer launches per job-chunk, makespan {warm_makespan_s:.6} s \
         ({screen_speedup:.2}x the baseline screen)\n",
        report.finder_launches_skipped,
        100.0 * report.candidate_hit_rate(),
        report.comparer_launch_ratio(),
    );
    print!("{report}");
    println!();

    let sites = measured.len();
    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => unreachable!("no outstanding handles"),
    }
    LibraryOutcome {
        report,
        sites,
        baseline_makespan_s,
        warm_makespan_s,
        screen_speedup,
    }
}

/// End-to-end completion-latency SLO for the trace pass: generous next
/// to one job's paced service time, tight next to the backlog a late
/// scale-up would leave behind — the number the p99 violation gate
/// holds both pools to.
const TRACE_SLO: Duration = Duration::from_millis(2500);

/// The demo trace: a diurnal ramp that a single device cannot quite
/// hold, an on/off burst whose on-phase needs most of the fleet, and a
/// quiet tail that earns the scale-downs. The tenant mix shifts each
/// phase and the burst concentrates on a four-spec hot spot.
fn demo_trace() -> TraceSpec {
    TraceSpec {
        seed: 0x7ACE,
        phases: vec![
            PhaseSpec {
                duration_s: 5.0,
                shape: ArrivalShape::Diurnal {
                    base_rate_per_s: 8.0,
                    amplitude: 0.5,
                    period_s: 5.0,
                },
                tenants: vec![(TenantId(1), 3), (TenantId(2), 1)],
                hot_spot: None,
            },
            PhaseSpec {
                duration_s: 8.0,
                shape: ArrivalShape::Bursty {
                    on_rate_per_s: 30.0,
                    period_s: 3.0,
                    duty: 0.5,
                },
                tenants: vec![(TenantId(2), 2), (TenantId(3), 1)],
                hot_spot: Some(HotSpot {
                    fraction: 0.6,
                    span: 4,
                }),
            },
            PhaseSpec {
                duration_s: 4.0,
                shape: ArrivalShape::Steady { rate_per_s: 5.0 },
                tenants: vec![(TenantId(3), 1)],
                hot_spot: None,
            },
        ],
    }
}

/// One pool's replay of the trace, plus the autoscaler's report when the
/// pool was elastic.
struct TracePoolRun {
    digest: u64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    violation_rate: f64,
    device_seconds: f64,
    prediction_error: f64,
    max_window_depth: usize,
    scale: Option<AutoscaleReport>,
}

/// Replay `events` open-loop — each submission at its trace timestamp,
/// never waiting for completions — against a fresh planned-placement
/// service, optionally elastic: the pool starts at one active device and
/// an [`Autoscaler`] earns the rest against its predicted-delay SLO.
/// Results are verified against the serial oracle and folded into a
/// digest in event order; latency quantiles and SLO violations come from
/// the service's windowed metrics ring.
fn trace_pool_run(
    label: &str,
    assembly: &Assembly,
    events: &[TraceEvent],
    specs: &[JobSpec],
    oracle: &[Vec<OffTarget>],
    autoscale: Option<AutoscaleConfig>,
) -> TracePoolRun {
    let mut config = config_with(ChunkEncoding::Packed, Placement::Planned, CHUNK_SIZE);
    // Open-loop: the generator never blocks on the pool, so the queue
    // must absorb the whole burst and backpressure shows up as latency,
    // not sheds.
    config.queue_cost_limit = 1 << 40;
    let service = Arc::new(Service::start(config, vec![assembly.clone()]));
    let devices = service.metrics().devices.len();
    let scaler = autoscale.map(|cfg| {
        // The elastic pool starts at the floor; demand earns the rest.
        for d in 1..devices {
            service.set_device_active(d, false);
        }
        Autoscaler::watch(Arc::clone(&service), cfg)
    });

    let start = Instant::now();
    let mut ids: Vec<(u64, usize)> = Vec::with_capacity(events.len());
    for ev in events {
        let target = Duration::from_secs_f64(ev.at_s);
        loop {
            let elapsed = start.elapsed();
            if elapsed >= target {
                break;
            }
            std::thread::sleep(target - elapsed);
        }
        let spec = specs[ev.spec_index].clone().for_tenant(ev.tenant);
        loop {
            match service.submit(spec.clone()) {
                Ok(id) => {
                    ids.push((id, ev.spec_index));
                    break;
                }
                Err(SubmitError::Shed { .. }) => std::thread::sleep(Duration::from_micros(500)),
                Err(err) => panic!("unexpected rejection: {err}"),
            }
        }
    }
    let mut digest = RESULT_DIGEST_SEED;
    for &(id, spec_index) in &ids {
        let records = service.wait(id).expect("job was admitted");
        assert_eq!(records, oracle[spec_index], "job {id}");
        digest = fold_results(digest, &records);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let scale = scaler.map(|s| s.stop());
    let report = service.metrics();
    assert_eq!(report.jobs_completed, events.len() as u64);
    let windows = service.latency_windows();
    let max_window_depth = windows.iter().map(|w| w.queue_depth_max).max().unwrap_or(0);

    let run = TracePoolRun {
        digest,
        p50: service.latency_quantile(0.5),
        p95: service.latency_quantile(0.95),
        p99: service.latency_quantile(0.99),
        violation_rate: service.slo_violation_rate(TRACE_SLO),
        device_seconds: scale
            .as_ref()
            .map_or(devices as f64 * elapsed_s, |r| r.device_seconds),
        prediction_error: report.mean_prediction_error(),
        max_window_depth,
        scale,
    };
    println!(
        "[{label}] {} jobs in {elapsed_s:.1} s wall; latency p50/p95/p99 \
         {:.0}/{:.0}/{:.0} ms, {:.2}% over the {} ms SLO; {} metric windows, \
         max queue depth {}, {:.1} device-seconds provisioned",
        events.len(),
        run.p50.as_secs_f64() * 1e3,
        run.p95.as_secs_f64() * 1e3,
        run.p99.as_secs_f64() * 1e3,
        100.0 * run.violation_rate,
        TRACE_SLO.as_millis(),
        windows.len(),
        run.max_window_depth,
        run.device_seconds,
    );
    if let Some(r) = &run.scale {
        for e in &r.events {
            println!(
                "[{label}]   t+{:.2}s scale {} device {} -> {} active \
                 (predicted delay {:.0} ms, queue depth {}, {} chunks replanned)",
                e.at.as_secs_f64(),
                match e.direction {
                    ScaleDirection::Up => "up:",
                    ScaleDirection::Down => "down:",
                },
                e.device,
                e.active_after,
                e.predicted_delay.as_secs_f64() * 1e3,
                e.queue_depth,
                e.migrated_chunks,
            );
        }
    }
    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => unreachable!("scaler stopped and submitters joined"),
    }
    run
}

/// Simulated makespan: the busiest device bounds the pool's throughput.
fn makespan_s(report: &MetricsReport) -> f64 {
    report
        .devices
        .iter()
        .map(|d| d.busy_s)
        .fold(0.0, f64::max)
}

fn upload_bytes_per_batch(report: &MetricsReport) -> f64 {
    let h2d: u64 = report.devices.iter().map(|d| d.h2d_bytes).sum();
    h2d as f64 / report.batches_formed.max(1) as f64
}

fn main() {
    let jobs: usize = std::env::var("CASOFF_SERVE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);

    let specs = tenant_specs(0x5E4E);

    let config = config_with(ChunkEncoding::Packed, Placement::EarliestCompletion, CHUNK_SIZE);
    println!(
        "pool: {}",
        config
            .devices
            .iter()
            .map(|d| format!("{} [{}]", d.spec.name, d.api))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Oracle: each distinct spec through the serial OpenCL pipeline,
    // cross-checked against the scalar CPU search.
    let assembly = genome::synth::hg38_mini(GENOME_SCALE);
    let serial_config = PipelineConfig::new(DeviceSpec::mi100())
        .chunk_size(CHUNK_SIZE)
        .exec_mode(ExecMode::Sequential);
    let oracle: Vec<Vec<OffTarget>> = specs
        .iter()
        .map(|spec| {
            let input = SearchInput::parse(&spec_text(spec)).unwrap();
            let serial = ocl::run(&assembly, &input, &serial_config).unwrap().offtargets;
            assert_eq!(
                serial,
                cas_offinder::cpu::search_sequential(&assembly, &input),
                "serial pipeline vs scalar oracle"
            );
            serial
        })
        .collect();

    let packed = serve_run(
        "packed + cost-aware (PR 3)",
        &assembly,
        ChunkEncoding::Packed,
        Placement::EarliestCompletion,
        CHUNK_SIZE,
        jobs,
        &specs,
        &oracle,
    );
    let raw = serve_run(
        "raw + shortest-queue (PR 2 baseline)",
        &assembly,
        ChunkEncoding::Raw,
        Placement::ShortestQueue,
        CHUNK_SIZE,
        jobs,
        &specs,
        &oracle,
    );
    let (affinity, replay_hit_rate) = affinity_run(jobs, &specs, &oracle, &serial_config);

    // Exception-dense assembly: the same tenant load against soft-mask
    // runs and degenerate bases. Raw payloads put every batch on the char
    // comparer; the adaptive cache flips dense chunks to 4-bit nibbles.
    let masked_assembly = genome::synth::hg38_masked_mini(GENOME_SCALE);
    let masked_specs: Vec<JobSpec> = tenant_specs(0x3A5C)
        .into_iter()
        .map(|mut s| {
            s.assembly = "hg38-masked".into();
            s
        })
        .collect();
    let masked_oracle: Vec<Vec<OffTarget>> = masked_specs
        .iter()
        .map(|spec| {
            let input = SearchInput::parse(&spec_text(spec)).unwrap();
            let serial = ocl::run(&masked_assembly, &input, &serial_config)
                .unwrap()
                .offtargets;
            assert_eq!(
                serial,
                cas_offinder::cpu::search_sequential(&masked_assembly, &input),
                "serial pipeline vs scalar oracle on the masked assembly"
            );
            serial
        })
        .collect();
    let masked_char = serve_run(
        "masked + char fallback",
        &masked_assembly,
        ChunkEncoding::Raw,
        Placement::EarliestCompletion,
        MASKED_CHUNK_SIZE,
        jobs,
        &masked_specs,
        &masked_oracle,
    );
    let masked = serve_run(
        "masked + adaptive 4-bit (PR 5)",
        &masked_assembly,
        ChunkEncoding::Adaptive,
        Placement::EarliestCompletion,
        MASKED_CHUNK_SIZE,
        jobs,
        &masked_specs,
        &masked_oracle,
    );

    // This PR: the adaptive multi-guide workload served with
    // per-(pattern, threshold) constant-folded kernel variants — on the
    // nibble path both the PAM finder and the comparer fold, so this is
    // where specialization pays most. The first specialized service pays
    // every variant compile into the process-wide cache; a second, freshly
    // started service finds all of them already compiled. Throughput is
    // simulated device time, so the speedup comes from the folded kernels'
    // smaller instruction streams — host-side compile cost shows up only
    // in the variant-cache stats.
    let spec_cold = serve_run_specialized(
        "adaptive + specialized kernels, cold variant cache (this PR)",
        &masked_assembly,
        ChunkEncoding::Adaptive,
        Placement::EarliestCompletion,
        MASKED_CHUNK_SIZE,
        jobs,
        &masked_specs,
        &masked_oracle,
        true,
    );
    let spec_warm = serve_run_specialized(
        "adaptive + specialized kernels, warm variant cache (this PR)",
        &masked_assembly,
        ChunkEncoding::Adaptive,
        Placement::EarliestCompletion,
        MASKED_CHUNK_SIZE,
        jobs,
        &masked_specs,
        &masked_oracle,
        true,
    );

    // This PR's tentpole: the multi-tenant QoS front end under sustained
    // open-loop overload — weighted fair queuing, quota-ordered shedding,
    // deadline admission, and fully non-blocking poll/callback completion.
    println!("multi-tenant QoS front end (weights 4/2/1, open-loop overload):");
    let (qos, deadline_rejections) = qos_run(&assembly, &specs, &oracle);

    // This PR's tentpole: up-front planned placement over a production-
    // scale chunk space, with a one-pass partition warmup and a makespan
    // the plan predicted before dispatch.
    println!("planned placement (range partition + one-pass warmup):");
    let sharding = sharding_run(&serial_config);

    // This PR's tentpole: the library-screen fast path — one PAM,
    // LIBRARY_GUIDES guides as a single screen job, fused multi-guide
    // comparer launches, and a content-addressed candidate cache that
    // lets repeat sweeps skip the finder entirely.
    println!("library screens ({LIBRARY_GUIDES} guides, fused comparers + candidate cache):");
    let library = library_run();

    // This PR's tentpole: the trace-driven load harness against fixed
    // and elastic pools. The same seeded schedule replays twice; the
    // digest equality below is the determinism claim end to end.
    println!("trace-driven load harness (diurnal -> burst -> quiet, fixed vs autoscaled):");
    let trace_spec = demo_trace();
    let events = trace_spec.generate(specs.len());
    assert_eq!(
        schedule_digest(&events),
        schedule_digest(&trace_spec.generate(specs.len())),
        "the seeded trace must generate byte-identical schedules"
    );
    let trace_oracle_digest = events.iter().fold(RESULT_DIGEST_SEED, |d, ev| {
        fold_results(d, &oracle[ev.spec_index])
    });
    println!(
        "[trace] {} events over {:.0} s (schedule digest {:016x})",
        events.len(),
        trace_spec.horizon_s(),
        schedule_digest(&events),
    );
    let trace_fixed = trace_pool_run("trace fixed", &assembly, &events, &specs, &oracle, None);
    let trace_auto = trace_pool_run(
        "trace autoscaled",
        &assembly,
        &events,
        &specs,
        &oracle,
        Some(AutoscaleConfig {
            // Predicted *queue delay* SLO — deliberately a fraction of
            // the end-to-end TRACE_SLO so the controller reacts while a
            // burst's backlog is still cheap to clear.
            slo: Duration::from_millis(700),
            window: Duration::from_millis(250),
            samples_per_window: 5,
            scale_up_windows: 2,
            // Eager enough that the burst's 1.5 s off-phases earn
            // retirements; the 2-window scale-up wins them back in 0.5 s
            // when the next on-phase lands.
            scale_down_windows: 4,
            low_utilization: 0.45,
            headroom: 0.5,
            min_devices: 1,
            max_devices: 4,
        }),
    );
    let trace_scale = trace_auto
        .scale
        .as_ref()
        .expect("the autoscaled run carries a report");
    let device_seconds_saved = 1.0 - trace_auto.device_seconds / trace_fixed.device_seconds;

    let packed_jobs_per_s = jobs as f64 / makespan_s(&packed);
    let raw_jobs_per_s = jobs as f64 / makespan_s(&raw);
    let affinity_jobs = affinity.jobs_completed;
    let affinity_jobs_per_s = affinity_jobs as f64 / makespan_s(&affinity);
    let transfer_reduction = upload_bytes_per_batch(&raw) / upload_bytes_per_batch(&packed);
    let affinity_transfer_reduction =
        upload_bytes_per_batch(&packed) / upload_bytes_per_batch(&affinity);

    println!("three serving generations at the same {CACHE_BYTES} B cache budget:");
    println!(
        "  upload bytes/batch: raw {:.0}, packed {:.0} ({transfer_reduction:.2}x), \
         affinity {:.0} ({affinity_transfer_reduction:.2}x further)",
        upload_bytes_per_batch(&raw),
        upload_bytes_per_batch(&packed),
        upload_bytes_per_batch(&affinity),
    );
    println!(
        "  cache hit rate:     raw {:.1}%, packed {:.1}%",
        100.0 * raw.cache_hit_rate(),
        100.0 * packed.cache_hit_rate()
    );
    println!(
        "  sim throughput:     raw {raw_jobs_per_s:.0}, packed {packed_jobs_per_s:.0} \
         ({:.2}x), affinity {affinity_jobs_per_s:.0} jobs/s over {affinity_jobs} jobs",
        packed_jobs_per_s / raw_jobs_per_s
    );
    println!(
        "  prediction error:   raw {:.1}%, packed {:.1}%, affinity {:.1}% (calibrated rates)",
        100.0 * raw.mean_prediction_error(),
        100.0 * packed.mean_prediction_error(),
        100.0 * affinity.mean_prediction_error(),
    );
    println!(
        "  affinity reuse:     {:.1}% of batches on a resident chunk, {} B uploads skipped, \
         {:.1}% of jobs served without compute, replay hit rate {:.1}%",
        100.0 * affinity.resident_hit_rate(),
        affinity.h2d_skipped_bytes(),
        100.0 * affinity.result_cache_hit_rate(),
        100.0 * replay_hit_rate,
    );

    let masked_char_jobs_per_s = jobs as f64 / makespan_s(&masked_char);
    let masked_jobs_per_s = jobs as f64 / makespan_s(&masked);
    let masked_upload_ratio = upload_bytes_per_batch(&masked) / upload_bytes_per_batch(&masked_char);
    println!("exception-dense assembly, same {CACHE_BYTES} B cache budget:");
    println!(
        "  upload bytes/batch: char {:.0}, adaptive {:.0} ({masked_upload_ratio:.2}x)",
        upload_bytes_per_batch(&masked_char),
        upload_bytes_per_batch(&masked),
    );
    println!(
        "  comparer batches:   char run {} char / {} 2-bit / {} 4-bit; \
         adaptive run {} char / {} 2-bit / {} 4-bit",
        masked_char.comparer_char_batches,
        masked_char.comparer_2bit_batches,
        masked_char.comparer_4bit_batches,
        masked.comparer_char_batches,
        masked.comparer_2bit_batches,
        masked.comparer_4bit_batches,
    );
    println!(
        "  sim throughput:     char {masked_char_jobs_per_s:.0}, adaptive \
         {masked_jobs_per_s:.0} jobs/s ({:.2}x)",
        masked_jobs_per_s / masked_char_jobs_per_s
    );
    println!(
        "  prediction error:   char {:.1}%, adaptive {:.1}% (calibrated rates)",
        100.0 * masked_char.mean_prediction_error(),
        100.0 * masked.mean_prediction_error(),
    );

    // Per-variant ISA costs: the generic kernels at the pool's opt level
    // against the constant-folded variants at the tenants' pattern length,
    // priced by the same pseudo-ISA compiler the simulator runs.
    let plen = masked_specs[0].pattern.len();
    let table_spec = DeviceSpec::mi100();
    let nd = NdRange::linear(CHUNK_SIZE, 64);
    struct VariantRow {
        name: &'static str,
        generic: gpu_sim::isa::ResourceUsage,
        folded: gpu_sim::isa::ResourceUsage,
        generic_waves: u32,
        folded_waves: u32,
    }
    let rows: Vec<VariantRow> = VariantKind::ALL
        .iter()
        .map(|kind| {
            let generic = compile(&generic_model(*kind, OptLevel::Base));
            let folded = compile(&specialized_model(*kind, plen));
            VariantRow {
                name: kind.kernel_name(),
                generic_waves: occupancy(&generic, &nd, &table_spec).waves_per_simd,
                folded_waves: occupancy(&folded, &nd, &table_spec).waves_per_simd,
                generic,
                folded,
            }
        })
        .collect();

    let spec_cold_jobs_per_s = jobs as f64 / makespan_s(&spec_cold);
    let spec_warm_jobs_per_s = jobs as f64 / makespan_s(&spec_warm);
    let specialize_speedup = spec_warm_jobs_per_s / masked_jobs_per_s;
    println!(
        "kernel specialization, same adaptive workload ({} tenants, pattern len {plen}):",
        masked_specs.len()
    );
    println!(
        "  sim throughput:     generic {masked_jobs_per_s:.0}, specialized cold \
         {spec_cold_jobs_per_s:.0}, warm {spec_warm_jobs_per_s:.0} jobs/s \
         ({specialize_speedup:.2}x vs generic)"
    );
    println!(
        "  variant cache:      cold {:.1}% hit rate ({} compiles, p50 {} ns / p95 {} ns), \
         warm {:.1}% ({} compiles, {} evicted)",
        100.0 * spec_cold.variants.hit_rate(),
        spec_cold.variants.compiles,
        spec_cold.variants.compile_p50_ns,
        spec_cold.variants.compile_p95_ns,
        100.0 * spec_warm.variants.hit_rate(),
        spec_warm.variants.compiles,
        spec_warm.variants.evictions,
    );
    println!(
        "  prediction error:   specialized {:.1}% (calibrated rates)",
        100.0 * spec_warm.mean_prediction_error(),
    );
    println!("  per-variant ISA (generic -> folded, {} wgs 64):", table_spec.name);
    for row in &rows {
        println!(
            "    {:<18} {:>4} -> {:<4} B code, {:>2} -> {:<2} SGPRs, {:>2} -> {:<2} VGPRs, \
             {} -> {} waves/SIMD",
            row.name,
            row.generic.code_bytes,
            row.folded.code_bytes,
            row.generic.sgprs,
            row.folded.sgprs,
            row.generic.vgprs,
            row.folded.vgprs,
            row.generic_waves,
            row.folded_waves,
        );
    }

    println!("multi-tenant QoS summary:");
    println!(
        "  fairness:           max goodput deviation from the 4/2/1 weights {:.1}%",
        100.0 * qos.fairness_max_deviation()
    );
    println!(
        "  shedding:           {} quota sheds / {} budget sheds over {} admitted \
         (every shed attributable to an over-quota tenant)",
        qos.sheds_quota, qos.sheds_budget, qos.jobs_admitted
    );
    println!(
        "  deadlines:          {} feasible-SLO misses, {} infeasible SLOs rejected up front",
        qos.deadline_misses, deadline_rejections
    );
    println!(
        "  completion:         {} blocking waits across the poll/callback harness",
        qos.blocking_waits
    );
    for t in &qos.tenants {
        println!(
            "    tenant{} (w{}): {} admitted, {} shed ({:.0}% shed rate), \
             goodput {} cost units, latency p50/p95/p99 {:.1}/{:.1}/{:.1} ms",
            t.id.0,
            t.weight,
            t.admitted,
            t.shed,
            100.0 * t.shed_rate(),
            t.goodput_cost,
            t.latency_p50_ns as f64 / 1e6,
            t.latency_p95_ns as f64 / 1e6,
            t.latency_p99_ns as f64 / 1e6,
        );
    }

    println!("planned placement summary:");
    println!(
        "  partition:          {} chunks over {} devices, shares sized by calibrated \
         admission units/s",
        sharding.chunks,
        sharding.report.devices.len(),
    );
    println!(
        "  steering:           {} planned hits / {} spill fallbacks, {} warmup prefetch uploads",
        sharding.report.planned_hits,
        sharding.report.spill_fallbacks,
        sharding.report.prefetch_uploads,
    );
    println!(
        "  post-warmup scan:   {:.1}% resident hit rate over {} jobs",
        100.0 * sharding.resident_hit_rate,
        sharding.jobs,
    );
    println!(
        "  makespan:           predicted {:.6} s, measured {:.6} s ({:.1}% error)",
        sharding.predicted_makespan_s,
        sharding.measured_makespan_s,
        100.0 * sharding.plan_prediction_error,
    );
    println!(
        "  fleet change:       {} chunks migrated out and back (plan restored exactly)",
        sharding.migrated_out,
    );

    println!("library screen summary:");
    println!(
        "  screen:             {LIBRARY_GUIDES} guides, one PAM, {} union sites",
        library.sites
    );
    println!(
        "  fused launches:     {:.3} comparer launches per job-chunk \
         ({} fused of {} total)",
        library.report.comparer_launch_ratio(),
        library.report.fused_launches,
        library.report.comparer_launches,
    );
    println!(
        "  candidate cache:    {:.1}% hit rate, {} finder launches skipped, \
         {} lists / {} B resident",
        100.0 * library.report.candidate_hit_rate(),
        library.report.finder_launches_skipped,
        library.report.candidates.len,
        library.report.candidates.resident_bytes,
    );
    println!(
        "  makespan:           baseline {:.6} s, warm screen {:.6} s \
         ({:.2}x speedup)",
        library.baseline_makespan_s, library.warm_makespan_s, library.screen_speedup,
    );

    println!("load harness summary:");
    println!(
        "  trace:              {} events over {:.0} s (diurnal / bursty+hot-spot / steady)",
        events.len(),
        trace_spec.horizon_s(),
    );
    println!(
        "  latency p50/p95/p99: fixed {:.0}/{:.0}/{:.0} ms, autoscaled {:.0}/{:.0}/{:.0} ms",
        trace_fixed.p50.as_secs_f64() * 1e3,
        trace_fixed.p95.as_secs_f64() * 1e3,
        trace_fixed.p99.as_secs_f64() * 1e3,
        trace_auto.p50.as_secs_f64() * 1e3,
        trace_auto.p95.as_secs_f64() * 1e3,
        trace_auto.p99.as_secs_f64() * 1e3,
    );
    println!(
        "  SLO ({} ms):       fixed {:.2}% violations, autoscaled {:.2}%",
        TRACE_SLO.as_millis(),
        100.0 * trace_fixed.violation_rate,
        100.0 * trace_auto.violation_rate,
    );
    println!(
        "  elasticity:         {} scale-ups / {} scale-downs ({} chunks replanned), \
         active devices {}..{}",
        trace_scale.scale_ups(),
        trace_scale.scale_downs(),
        trace_scale.migrated_chunks(),
        trace_scale.min_active,
        trace_scale.peak_active,
    );
    println!(
        "  device-seconds:     fixed {:.1}, autoscaled {:.1} ({:.1}% saved)",
        trace_fixed.device_seconds,
        trace_auto.device_seconds,
        100.0 * device_seconds_saved,
    );
    println!(
        "  replay digests:     fixed {:016x}, autoscaled {:016x} (oracle {:016x})",
        trace_fixed.digest, trace_auto.digest, trace_oracle_digest,
    );
    println!(
        "  prediction error:   autoscaled {:.1}% through the scale events (calibrated rates)",
        100.0 * trace_auto.prediction_error,
    );

    let library_json = format!(
        concat!(
            "{{ \"guides\": {}, \"sites\": {}, \"screen_speedup\": {:.4}, ",
            "\"baseline_makespan_s\": {:.6}, \"warm_makespan_s\": {:.6}, ",
            "\"candidate_hit_rate\": {:.4}, \"finder_launches_skipped\": {}, ",
            "\"comparer_launch_ratio\": {:.4}, \"fused_launches\": {}, ",
            "\"candidate_evictions\": {} }}"
        ),
        LIBRARY_GUIDES,
        library.sites,
        library.screen_speedup,
        library.baseline_makespan_s,
        library.warm_makespan_s,
        library.report.candidate_hit_rate(),
        library.report.finder_launches_skipped,
        library.report.comparer_launch_ratio(),
        library.report.fused_launches,
        library.report.candidates.evictions,
    );

    let trace_json = format!(
        concat!(
            "{{ \"events\": {}, \"horizon_s\": {:.1}, \"slo_ms\": {},\n",
            "    \"fixed\": {{ \"latency_p50_ms\": {:.1}, \"latency_p95_ms\": {:.1}, ",
            "\"latency_p99_ms\": {:.1}, \"fixed_slo_violation_rate\": {:.4}, ",
            "\"fixed_device_seconds\": {:.2}, \"fixed_max_queue_depth\": {} }},\n",
            "    \"autoscaled\": {{ \"latency_p50_ms\": {:.1}, \"latency_p95_ms\": {:.1}, ",
            "\"latency_p99_ms\": {:.1}, \"p99_slo_violation_rate\": {:.4},\n",
            "      \"autoscaled_device_seconds\": {:.2}, \"autoscaled_max_queue_depth\": {}, ",
            "\"scale_ups\": {}, \"scale_downs\": {}, \"trace_migrated_chunks\": {}, ",
            "\"peak_active\": {}, \"min_active\": {}, \"trace_prediction_error\": {:.4} }},\n",
            "    \"device_seconds_saved\": {:.4},\n",
            "    \"digests_match\": {} }}"
        ),
        events.len(),
        trace_spec.horizon_s(),
        TRACE_SLO.as_millis(),
        trace_fixed.p50.as_secs_f64() * 1e3,
        trace_fixed.p95.as_secs_f64() * 1e3,
        trace_fixed.p99.as_secs_f64() * 1e3,
        trace_fixed.violation_rate,
        trace_fixed.device_seconds,
        trace_fixed.max_window_depth,
        trace_auto.p50.as_secs_f64() * 1e3,
        trace_auto.p95.as_secs_f64() * 1e3,
        trace_auto.p99.as_secs_f64() * 1e3,
        trace_auto.violation_rate,
        trace_auto.device_seconds,
        trace_auto.max_window_depth,
        trace_scale.scale_ups(),
        trace_scale.scale_downs(),
        trace_scale.migrated_chunks(),
        trace_scale.peak_active,
        trace_scale.min_active,
        trace_auto.prediction_error,
        device_seconds_saved,
        trace_fixed.digest == trace_oracle_digest && trace_auto.digest == trace_oracle_digest,
    );

    let tenant_json: String = qos
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            format!(
                "      {{ \"tenant\": {}, \"weight\": {}, \"admitted\": {}, \
                 \"shed\": {}, \"completed\": {}, \"goodput_cost\": {}, \
                 \"shed_rate\": {:.4}, \"deadline_misses\": {}, \
                 \"latency_p50_ns\": {}, \"latency_p95_ns\": {}, \
                 \"latency_p99_ns\": {} }}{}\n",
                t.id.0,
                t.weight,
                t.admitted,
                t.shed,
                t.completed,
                t.goodput_cost,
                t.shed_rate(),
                t.deadline_misses,
                t.latency_p50_ns,
                t.latency_p95_ns,
                t.latency_p99_ns,
                if i + 1 == qos.tenants.len() { "" } else { "," },
            )
        })
        .collect();
    let qos_json = format!(
        concat!(
            "{{ \"fairness_max_deviation\": {:.4}, \"sheds_quota\": {}, ",
            "\"sheds_budget\": {}, \"deadline_misses\": {}, ",
            "\"deadline_rejections\": {}, \"blocking_waits\": {}, ",
            "\"jobs_admitted\": {}, \"jobs_shed\": {},\n",
            "    \"tenants\": [\n",
            "{}",
            "    ] }}"
        ),
        qos.fairness_max_deviation(),
        qos.sheds_quota,
        qos.sheds_budget,
        qos.deadline_misses,
        deadline_rejections,
        qos.blocking_waits,
        qos.jobs_admitted,
        qos.jobs_shed,
        tenant_json,
    );

    let sharding_json = format!(
        concat!(
            "{{ \"jobs\": {}, \"chunks\": {}, \"resident_hit_rate\": {:.4}, ",
            "\"plan_prediction_error\": {:.4}, \"predicted_makespan_s\": {:.6}, ",
            "\"measured_makespan_s\": {:.6}, \"planned_hits\": {}, ",
            "\"spill_fallbacks\": {}, \"prefetch_uploads\": {}, ",
            "\"migrated_chunks\": {} }}"
        ),
        sharding.jobs,
        sharding.chunks,
        sharding.resident_hit_rate,
        sharding.plan_prediction_error,
        sharding.predicted_makespan_s,
        sharding.measured_makespan_s,
        sharding.report.planned_hits,
        sharding.report.spill_fallbacks,
        sharding.report.prefetch_uploads,
        sharding.report.migrated_chunks,
    );

    let variant_json: String = rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            format!(
                "      {{ \"kernel\": \"{}\", \"generic_code_bytes\": {}, \
                 \"spec_code_bytes\": {}, \"generic_sgprs\": {}, \"spec_sgprs\": {}, \
                 \"generic_vgprs\": {}, \"spec_vgprs\": {}, \"generic_waves\": {}, \
                 \"spec_waves\": {} }}{}\n",
                row.name,
                row.generic.code_bytes,
                row.folded.code_bytes,
                row.generic.sgprs,
                row.folded.sgprs,
                row.generic.vgprs,
                row.folded.vgprs,
                row.generic_waves,
                row.folded_waves,
                if i + 1 == rows.len() { "" } else { "," },
            )
        })
        .collect();

    let json = format!(
        concat!(
            "{{\n",
            "  \"jobs\": {},\n",
            "  \"chunk_size\": {},\n",
            "  \"cache_bytes\": {},\n",
            "  \"packed\": {{ \"jobs_per_s\": {:.2}, \"cache_hit_rate\": {:.4}, ",
            "\"upload_bytes_per_batch\": {:.1}, \"mean_prediction_error\": {:.4}, ",
            "\"makespan_s\": {:.6} }},\n",
            "  \"raw_baseline\": {{ \"jobs_per_s\": {:.2}, \"cache_hit_rate\": {:.4}, ",
            "\"upload_bytes_per_batch\": {:.1}, \"mean_prediction_error\": {:.4}, ",
            "\"makespan_s\": {:.6} }},\n",
            "  \"affinity\": {{ \"jobs\": {}, \"jobs_per_s\": {:.2}, ",
            "\"upload_bytes_per_batch\": {:.1}, \"mean_prediction_error\": {:.4}, ",
            "\"makespan_s\": {:.6}, \"resident_hit_rate\": {:.4}, ",
            "\"h2d_skipped_bytes\": {}, \"result_cache_hit_rate\": {:.4}, ",
            "\"second_pass_result_cache_hit_rate\": {:.4} }},\n",
            "  \"masked\": {{ \"jobs\": {}, \"char_fallback_batches\": {}, ",
            "\"comparer_4bit_batches\": {}, \"upload_bytes_per_batch\": {:.1}, ",
            "\"char_upload_bytes_per_batch\": {:.1}, \"upload_ratio_vs_char\": {:.3}, ",
            "\"jobs_per_s\": {:.2}, \"char_jobs_per_s\": {:.2}, ",
            "\"cache_hit_rate\": {:.4}, \"mean_prediction_error\": {:.4} }},\n",
            "  \"specialized\": {{ \"jobs_per_s\": {:.2}, \"cold_jobs_per_s\": {:.2}, ",
            "\"generic_jobs_per_s\": {:.2}, \"specialize_speedup\": {:.3}, ",
            "\"warm_variant_hit_rate\": {:.4}, \"cold_variant_hit_rate\": {:.4}, ",
            "\"cold_variant_compiles\": {}, \"warm_variant_compiles\": {}, ",
            "\"warm_variant_evictions\": {}, \"compile_p50_ns\": {}, ",
            "\"compile_p95_ns\": {}, \"spec_mean_prediction_error\": {:.4},\n",
            "    \"variants\": [\n",
            "{}",
            "    ] }},\n",
            "  \"qos\": {},\n",
            "  \"sharding\": {},\n",
            "  \"library\": {},\n",
            "  \"trace\": {},\n",
            "  \"transfer_reduction_per_batch\": {:.3},\n",
            "  \"affinity_transfer_reduction_per_batch\": {:.3},\n",
            "  \"jobs_per_s_improvement\": {:.3}\n",
            "}}\n"
        ),
        jobs,
        CHUNK_SIZE,
        CACHE_BYTES,
        packed_jobs_per_s,
        packed.cache_hit_rate(),
        upload_bytes_per_batch(&packed),
        packed.mean_prediction_error(),
        makespan_s(&packed),
        raw_jobs_per_s,
        raw.cache_hit_rate(),
        upload_bytes_per_batch(&raw),
        raw.mean_prediction_error(),
        makespan_s(&raw),
        affinity_jobs,
        affinity_jobs_per_s,
        upload_bytes_per_batch(&affinity),
        affinity.mean_prediction_error(),
        makespan_s(&affinity),
        affinity.resident_hit_rate(),
        affinity.h2d_skipped_bytes(),
        affinity.result_cache_hit_rate(),
        replay_hit_rate,
        jobs,
        masked.comparer_char_batches,
        masked.comparer_4bit_batches,
        upload_bytes_per_batch(&masked),
        upload_bytes_per_batch(&masked_char),
        masked_upload_ratio,
        masked_jobs_per_s,
        masked_char_jobs_per_s,
        masked.cache_hit_rate(),
        masked.mean_prediction_error(),
        spec_warm_jobs_per_s,
        spec_cold_jobs_per_s,
        masked_jobs_per_s,
        specialize_speedup,
        spec_warm.variants.hit_rate(),
        spec_cold.variants.hit_rate(),
        spec_cold.variants.compiles,
        spec_warm.variants.compiles,
        spec_warm.variants.evictions,
        spec_cold.variants.compile_p50_ns,
        spec_cold.variants.compile_p95_ns,
        spec_warm.mean_prediction_error(),
        variant_json,
        qos_json,
        sharding_json,
        library_json,
        trace_json,
        transfer_reduction,
        affinity_transfer_reduction,
        packed_jobs_per_s / raw_jobs_per_s,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    assert!(
        packed.coalescing_ratio() > 1.5,
        "coalescing ratio {:.2} must exceed 1.5",
        packed.coalescing_ratio()
    );
    assert!(
        packed.cache_hit_rate() > 0.5,
        "packed cache hit rate {:.1}% must exceed 50%",
        100.0 * packed.cache_hit_rate()
    );
    assert!(
        packed.cache_hit_rate() > raw.cache_hit_rate(),
        "packed must out-hit raw at the same byte budget"
    );
    assert!(
        transfer_reduction >= 2.0,
        "packed chunks must cut per-batch upload bytes at least 2x, got {transfer_reduction:.2}x"
    );
    assert!(
        packed_jobs_per_s > raw_jobs_per_s,
        "the packed cost-aware path must out-serve the PR 2 baseline: \
         {packed_jobs_per_s:.0} vs {raw_jobs_per_s:.0} jobs/s"
    );
    assert!(
        affinity.resident_hit_rate() > 0.0 && affinity.h2d_skipped_bytes() > 0,
        "affinity must reuse resident chunks"
    );
    assert!(
        affinity_transfer_reduction >= 2.0,
        "resident chunks + result dedup must cut per-batch upload bytes at least \
         2x beyond the packed path, got {affinity_transfer_reduction:.2}x"
    );
    assert!(
        replay_hit_rate >= 1.0,
        "the replayed workload must be fully served from the result store"
    );
    assert_eq!(
        masked.comparer_char_batches, 0,
        "the adaptive cache must keep every exception-dense batch off the char comparer"
    );
    assert!(
        masked.comparer_4bit_batches > 0,
        "dense chunks must be served by the 4-bit nibble comparer"
    );
    assert!(
        masked_upload_ratio <= 0.55,
        "nibble payloads must cut per-batch upload bytes to at most 0.55x the \
         char baseline, got {masked_upload_ratio:.3}x"
    );
    assert!(
        masked.mean_prediction_error() <= 0.10,
        "the calibrated cost model must stay within 10% on the masked workload, \
         got {:.1}%",
        100.0 * masked.mean_prediction_error()
    );
    assert!(
        spec_cold.variants.compiles > 0,
        "the cold specialized run must compile kernel variants"
    );
    assert!(
        spec_warm.variants.hit_rate() >= 0.9,
        "the warm variant cache must hit >= 90%, got {:.1}% ({} hits / {} misses)",
        100.0 * spec_warm.variants.hit_rate(),
        spec_warm.variants.hits,
        spec_warm.variants.misses,
    );
    assert!(
        specialize_speedup >= 1.15,
        "specialized kernels must serve >= 1.15x the generic adaptive path, \
         got {specialize_speedup:.3}x"
    );
    assert!(
        spec_warm.mean_prediction_error() <= 0.10,
        "the specialized cost model must stay within 10%, got {:.1}%",
        100.0 * spec_warm.mean_prediction_error()
    );
    for row in &rows {
        assert!(
            row.folded.code_bytes < row.generic.code_bytes,
            "{}: folding must shrink the instruction stream",
            row.name
        );
        assert!(
            row.folded_waves >= row.generic_waves,
            "{}: folding must not lower occupancy",
            row.name
        );
    }
    assert!(
        sharding.resident_hit_rate >= 0.95,
        "post-warmup, nearly every batch must find its chunk resident on its \
         planned owner, got {:.1}%",
        100.0 * sharding.resident_hit_rate
    );
    assert!(
        sharding.plan_prediction_error <= 0.10,
        "the measured makespan must land within 10% of the plan's pre-run \
         prediction, got {:.1}%",
        100.0 * sharding.plan_prediction_error
    );
    assert!(
        sharding.report.planned_hits > 0 && sharding.report.prefetch_uploads > 0,
        "the planned path must steer to owners and prefetch their partitions"
    );
    assert!(
        sharding.migrated_out > 0 && sharding.migrated_out < sharding.chunks,
        "a fleet change must migrate some chunks but never the whole space, \
         got {} of {}",
        sharding.migrated_out,
        sharding.chunks
    );
    assert!(
        library.screen_speedup >= 1.5,
        "the warm library screen must run at least 1.5x the per-guide \
         baseline, got {:.2}x",
        library.screen_speedup
    );
    assert!(
        library.report.candidate_hit_rate() >= 0.9,
        "post-warmup, nearly every sweep must find its candidate list \
         cached, got {:.1}%",
        100.0 * library.report.candidate_hit_rate()
    );
    assert!(
        library.report.comparer_launch_ratio() <= 0.1,
        "fused launches must cover at least 10 guides per comparer launch, \
         got {:.3} launches per job-chunk",
        library.report.comparer_launch_ratio()
    );
    assert!(
        library.report.finder_launches_skipped > 0 && library.report.fused_launches > 0,
        "the fast path must actually skip finders and fuse comparers"
    );
    assert_eq!(
        trace_fixed.digest, trace_oracle_digest,
        "the fixed-pool replay must fold the oracle digest"
    );
    assert_eq!(
        trace_auto.digest, trace_oracle_digest,
        "the autoscaled replay must fold the same digest as the fixed pool"
    );
    assert!(
        trace_auto.violation_rate <= 0.01,
        "the autoscaled pool must hold the end-to-end p99 SLO to a <= 1% \
         violation rate, got {:.2}%",
        100.0 * trace_auto.violation_rate
    );
    assert!(
        device_seconds_saved >= 0.15,
        "the elastic pool must provision >= 15% fewer device-seconds than \
         the peak-static fleet, got {:.1}%",
        100.0 * device_seconds_saved
    );
    assert!(
        trace_auto.prediction_error <= 0.10,
        "the cost model must stay within 10% through the scale events, \
         got {:.1}%",
        100.0 * trace_auto.prediction_error
    );
    assert!(
        trace_scale.scale_ups() >= 1 && trace_scale.scale_downs() >= 1,
        "the trace must exercise both scale directions, got {} up / {} down",
        trace_scale.scale_ups(),
        trace_scale.scale_downs()
    );
    assert!(
        trace_scale.migrated_chunks() > 0,
        "every scale event must replan the shard plan minimally"
    );
}
