//! The batch-serving subsystem end to end: four submitter threads push a
//! batch of query jobs at a heterogeneous 4-device pool, the coalescer
//! shares chunk uploads between jobs with the same PAM pattern, the genome
//! cache keeps the hot chunks resident as 2-bit packed payloads, and the
//! cost-aware scheduler places each batch on the device with the earliest
//! predicted completion. Every job's results are verified byte-identical
//! to the serial pipelines.
//!
//! The whole workload is then re-served through the previous generation
//! of the serving path — raw one-byte-per-base cache payloads at the same
//! byte budget, shortest-queue placement, fixed in-flight depth — and the
//! comparison (upload bytes per batch, cache hit rate, simulated
//! throughput, prediction error) is written to `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release --example serve_demo
//! CASOFF_SERVE_JOBS=200 cargo run --release --example serve_demo
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use cas_offinder::pipeline::{ocl, PipelineConfig};
use cas_offinder::{OffTarget, SearchInput};
use casoff_serve::{
    ChunkEncoding, JobSpec, MetricsReport, Placement, Service, ServiceConfig, SubmitError,
};
use genome::rng::Xoshiro256;
use gpu_sim::{DeviceSpec, ExecMode};

const SUBMITTERS: usize = 4;
const CHUNK_SIZE: usize = 1 << 13;
/// Genome scale: ~18.6k bases per chromosome, so most chunks fill the full
/// 8 KiB and the chunk payload dominates the per-batch query tables.
const GENOME_SCALE: f64 = 0.02;
/// Cache byte budget shared by both runs: holds the packed working set
/// with room to spare, but not the raw one — the equal-budget comparison
/// the cache redesign is about.
const CACHE_BYTES: usize = 128 * 1024;
/// Virtual-time pacing: workers hold each batch for its simulated duration
/// (scaled), so queue drain — and therefore placement quality — follows
/// device speed rather than host speed.
const PACING: f64 = 1500.0;

fn spec_text(spec: &JobSpec) -> String {
    format!(
        "{}\n{}\n{} {}\n",
        spec.assembly,
        std::str::from_utf8(&spec.pattern).unwrap(),
        std::str::from_utf8(&spec.guide).unwrap(),
        spec.max_mismatches
    )
}

fn config_with(encoding: ChunkEncoding, placement: Placement) -> ServiceConfig {
    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = CHUNK_SIZE;
    config.queue_cost_limit = 10_000_000; // ~67 queued jobs: backpressure shows up
    config.cache_bytes = CACHE_BYTES;
    config.cache_encoding = encoding;
    config.placement = placement;
    config.pacing = PACING;
    config
}

/// Serve `jobs` jobs cycling through `specs`, verify every result against
/// `oracle`, and return the metrics snapshot.
fn serve_run(
    label: &str,
    encoding: ChunkEncoding,
    placement: Placement,
    jobs: usize,
    specs: &[JobSpec],
    oracle: &[Vec<OffTarget>],
) -> MetricsReport {
    let assembly = genome::synth::hg38_mini(GENOME_SCALE);
    let service = Arc::new(Service::start(
        config_with(encoding, placement),
        vec![assembly],
    ));

    // Submitters race the pool; a full queue means back off and retry, so
    // every job is eventually admitted but rejections are counted.
    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|s| {
            let service = Arc::clone(&service);
            let specs = specs.to_vec();
            std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in (s..jobs).step_by(SUBMITTERS) {
                    let spec = specs[i % specs.len()].clone();
                    loop {
                        match service.submit(spec.clone()) {
                            Ok(id) => {
                                ids.push((id, i % specs.len()));
                                break;
                            }
                            Err(SubmitError::QueueFull) => {
                                std::thread::sleep(Duration::from_micros(500));
                            }
                            Err(err) => panic!("unexpected rejection: {err}"),
                        }
                    }
                }
                ids
            })
        })
        .collect();
    let ids: Vec<(u64, usize)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter panicked"))
        .collect();
    assert_eq!(ids.len(), jobs);

    let results: HashMap<u64, Vec<OffTarget>> = ids
        .iter()
        .map(|&(id, _)| (id, service.wait(id).expect("job was admitted")))
        .collect();
    let mut sites = 0;
    for &(id, spec_index) in &ids {
        assert_eq!(results[&id], oracle[spec_index], "job {id}");
        sites += results[&id].len();
    }
    println!(
        "[{label}] {jobs} jobs served, {sites} sites total, all byte-identical to the serial pipeline"
    );

    let report = service.metrics();
    print!("{report}");
    assert_eq!(report.jobs_completed, jobs as u64);
    if report.jobs_rejected_full > 0 {
        println!(
            "backpressure: {} submissions bounced off the full queue before admission",
            report.jobs_rejected_full
        );
    }
    println!();

    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => unreachable!("all submitters joined"),
    }
    report
}

/// Simulated makespan: the busiest device bounds the pool's throughput.
fn makespan_s(report: &MetricsReport) -> f64 {
    report
        .devices
        .iter()
        .map(|d| d.busy_s)
        .fold(0.0, f64::max)
}

fn upload_bytes_per_batch(report: &MetricsReport) -> f64 {
    let h2d: u64 = report.devices.iter().map(|d| d.h2d_bytes).sum();
    h2d as f64 / report.batches_formed.max(1) as f64
}

fn main() {
    let jobs: usize = std::env::var("CASOFF_SERVE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);

    // Twenty distinct tenant requests over two PAM patterns; the submitted
    // jobs cycle through them, so the coalescer always has same-pattern
    // company to batch with.
    let mut rng = Xoshiro256::seed_from_u64(0x5E4E);
    let patterns: [&[u8]; 2] = [b"NNNNNNNNNRG", b"NNNNNNNNNGG"];
    let specs: Vec<JobSpec> = (0..20)
        .map(|i| {
            let mut guide: Vec<u8> = (0..8).map(|_| *rng.choose(b"ACGT").unwrap()).collect();
            guide.extend_from_slice(b"NNN");
            JobSpec::new("hg38-mini", patterns[i % 2].to_vec(), guide, 3)
        })
        .collect();

    let config = config_with(ChunkEncoding::Packed, Placement::EarliestCompletion);
    println!(
        "pool: {}",
        config
            .devices
            .iter()
            .map(|d| format!("{} [{}]", d.spec.name, d.api))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Oracle: each distinct spec through the serial OpenCL pipeline,
    // cross-checked against the scalar CPU search.
    let assembly = genome::synth::hg38_mini(GENOME_SCALE);
    let serial_config = PipelineConfig::new(DeviceSpec::mi100())
        .chunk_size(CHUNK_SIZE)
        .exec_mode(ExecMode::Sequential);
    let oracle: Vec<Vec<OffTarget>> = specs
        .iter()
        .map(|spec| {
            let input = SearchInput::parse(&spec_text(spec)).unwrap();
            let serial = ocl::run(&assembly, &input, &serial_config).unwrap().offtargets;
            assert_eq!(
                serial,
                cas_offinder::cpu::search_sequential(&assembly, &input),
                "serial pipeline vs scalar oracle"
            );
            serial
        })
        .collect();

    let packed = serve_run(
        "packed + cost-aware",
        ChunkEncoding::Packed,
        Placement::EarliestCompletion,
        jobs,
        &specs,
        &oracle,
    );
    let raw = serve_run(
        "raw + shortest-queue (PR 2 baseline)",
        ChunkEncoding::Raw,
        Placement::ShortestQueue,
        jobs,
        &specs,
        &oracle,
    );

    let packed_jobs_per_s = jobs as f64 / makespan_s(&packed);
    let raw_jobs_per_s = jobs as f64 / makespan_s(&raw);
    let transfer_reduction = upload_bytes_per_batch(&raw) / upload_bytes_per_batch(&packed);

    println!("packed + cost-aware vs the raw + shortest-queue baseline ({CACHE_BYTES} B cache both):");
    println!(
        "  upload bytes/batch: {:.0} vs {:.0} ({transfer_reduction:.2}x reduction)",
        upload_bytes_per_batch(&packed),
        upload_bytes_per_batch(&raw)
    );
    println!(
        "  cache hit rate:     {:.1}% vs {:.1}%",
        100.0 * packed.cache_hit_rate(),
        100.0 * raw.cache_hit_rate()
    );
    println!(
        "  sim throughput:     {packed_jobs_per_s:.0} vs {raw_jobs_per_s:.0} jobs/s ({:.2}x)",
        packed_jobs_per_s / raw_jobs_per_s
    );
    println!(
        "  prediction error:   {:.1}% vs {:.1}%",
        100.0 * packed.mean_prediction_error(),
        100.0 * raw.mean_prediction_error()
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"jobs\": {},\n",
            "  \"chunk_size\": {},\n",
            "  \"cache_bytes\": {},\n",
            "  \"packed\": {{ \"jobs_per_s\": {:.2}, \"cache_hit_rate\": {:.4}, ",
            "\"upload_bytes_per_batch\": {:.1}, \"mean_prediction_error\": {:.4}, ",
            "\"makespan_s\": {:.6} }},\n",
            "  \"raw_baseline\": {{ \"jobs_per_s\": {:.2}, \"cache_hit_rate\": {:.4}, ",
            "\"upload_bytes_per_batch\": {:.1}, \"mean_prediction_error\": {:.4}, ",
            "\"makespan_s\": {:.6} }},\n",
            "  \"transfer_reduction_per_batch\": {:.3},\n",
            "  \"jobs_per_s_improvement\": {:.3}\n",
            "}}\n"
        ),
        jobs,
        CHUNK_SIZE,
        CACHE_BYTES,
        packed_jobs_per_s,
        packed.cache_hit_rate(),
        upload_bytes_per_batch(&packed),
        packed.mean_prediction_error(),
        makespan_s(&packed),
        raw_jobs_per_s,
        raw.cache_hit_rate(),
        upload_bytes_per_batch(&raw),
        raw.mean_prediction_error(),
        makespan_s(&raw),
        transfer_reduction,
        packed_jobs_per_s / raw_jobs_per_s,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    assert!(
        packed.coalescing_ratio() > 1.5,
        "coalescing ratio {:.2} must exceed 1.5",
        packed.coalescing_ratio()
    );
    assert!(
        packed.cache_hit_rate() > 0.5,
        "packed cache hit rate {:.1}% must exceed 50%",
        100.0 * packed.cache_hit_rate()
    );
    assert!(
        packed.cache_hit_rate() > raw.cache_hit_rate(),
        "packed must out-hit raw at the same byte budget"
    );
    assert!(
        transfer_reduction >= 2.0,
        "packed chunks must cut per-batch upload bytes at least 2x, got {transfer_reduction:.2}x"
    );
    assert!(
        packed_jobs_per_s > raw_jobs_per_s,
        "the packed cost-aware path must out-serve the PR 2 baseline: \
         {packed_jobs_per_s:.0} vs {raw_jobs_per_s:.0} jobs/s"
    );
}
