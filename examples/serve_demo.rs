//! The batch-serving subsystem end to end: four submitter threads push a
//! thousand query jobs at a heterogeneous 4-device pool, the coalescer
//! shares chunk uploads between jobs with the same PAM pattern, and the
//! genome cache keeps the hot chunks resident. Every job's results are
//! verified byte-identical to the serial pipelines.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use cas_offinder::pipeline::{ocl, PipelineConfig};
use cas_offinder::{OffTarget, SearchInput};
use casoff_serve::{JobSpec, Service, ServiceConfig, SubmitError};
use genome::rng::Xoshiro256;
use gpu_sim::{DeviceSpec, ExecMode};

const JOBS: usize = 1000;
const SUBMITTERS: usize = 4;
const CHUNK_SIZE: usize = 1 << 10;

fn spec_text(spec: &JobSpec) -> String {
    format!(
        "{}\n{}\n{} {}\n",
        spec.assembly,
        std::str::from_utf8(&spec.pattern).unwrap(),
        std::str::from_utf8(&spec.guide).unwrap(),
        spec.max_mismatches
    )
}

fn main() {
    let assembly = genome::synth::hg38_mini(0.002);

    // Twenty distinct tenant requests over two PAM patterns; the thousand
    // submitted jobs cycle through them, so the coalescer always has
    // same-pattern company to batch with.
    let mut rng = Xoshiro256::seed_from_u64(0x5E4E);
    let patterns: [&[u8]; 2] = [b"NNNNNNNNNRG", b"NNNNNNNNNGG"];
    let specs: Vec<JobSpec> = (0..20)
        .map(|i| {
            let mut guide: Vec<u8> = (0..8).map(|_| *rng.choose(b"ACGT").unwrap()).collect();
            guide.extend_from_slice(b"NNN");
            JobSpec::new("hg38-mini", patterns[i % 2].to_vec(), guide, 3)
        })
        .collect();

    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = CHUNK_SIZE;
    config.queue_capacity = 64; // small on purpose, so backpressure shows up
    config.cache_chunks = 128;
    println!(
        "pool: {}",
        config
            .devices
            .iter()
            .map(|d| format!("{} [{}]", d.spec.name, d.api))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let service = Arc::new(Service::start(config, vec![assembly]));

    // Submitters race the pool; a full queue means back off and retry, so
    // every job is eventually admitted but rejections are counted.
    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|s| {
            let service = Arc::clone(&service);
            let specs = specs.clone();
            std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in (s..JOBS).step_by(SUBMITTERS) {
                    let spec = specs[i % specs.len()].clone();
                    loop {
                        match service.submit(spec.clone()) {
                            Ok(id) => {
                                ids.push((id, i % specs.len()));
                                break;
                            }
                            Err(SubmitError::QueueFull) => {
                                std::thread::sleep(Duration::from_micros(500));
                            }
                            Err(err) => panic!("unexpected rejection: {err}"),
                        }
                    }
                }
                ids
            })
        })
        .collect();
    let ids: Vec<(u64, usize)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("submitter panicked"))
        .collect();
    assert_eq!(ids.len(), JOBS);

    let results: HashMap<u64, Vec<OffTarget>> = ids
        .iter()
        .map(|&(id, _)| (id, service.wait(id).expect("job was admitted")))
        .collect();

    // Verify: every job byte-identical to the scalar oracle, and each
    // distinct spec byte-identical to the serial OpenCL pipeline.
    let assembly = genome::synth::hg38_mini(0.002);
    let serial_config = PipelineConfig::new(DeviceSpec::mi100())
        .chunk_size(CHUNK_SIZE)
        .exec_mode(ExecMode::Sequential);
    let oracle: Vec<Vec<OffTarget>> = specs
        .iter()
        .map(|spec| {
            let input = SearchInput::parse(&spec_text(spec)).unwrap();
            let serial = ocl::run(&assembly, &input, &serial_config).unwrap().offtargets;
            assert_eq!(
                serial,
                cas_offinder::cpu::search_sequential(&assembly, &input),
                "serial pipeline vs scalar oracle"
            );
            serial
        })
        .collect();
    let mut sites = 0;
    for &(id, spec_index) in &ids {
        assert_eq!(results[&id], oracle[spec_index], "job {id}");
        sites += results[&id].len();
    }
    println!("{JOBS} jobs served, {sites} sites total, all byte-identical to the serial pipeline\n");

    let report = service.metrics();
    print!("{report}");
    assert_eq!(report.jobs_completed, JOBS as u64);
    assert!(
        report.coalescing_ratio() > 1.5,
        "coalescing ratio {:.2} must exceed 1.5",
        report.coalescing_ratio()
    );
    assert!(
        report.cache_hit_rate() > 0.5,
        "cache hit rate {:.1}% must exceed 50%",
        100.0 * report.cache_hit_rate()
    );
    if report.jobs_rejected_full > 0 {
        println!(
            "\nbackpressure: {} submissions bounced off the full queue before admission",
            report.jobs_rejected_full
        );
    }

    match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => unreachable!("all submitters joined"),
    }
}
