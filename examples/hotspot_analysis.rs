//! The paper's §IV.B workflow end to end: profile the application to find
//! the hotspot, inspect the hotspot kernel's compiled form, and read the
//! occupancy trade-off off the disassembly headers — the full
//! rocprof-then-ISA loop the authors describe.
//!
//! ```text
//! cargo run --release --example hotspot_analysis
//! ```

use cas_offinder::kernels::ComparerKernel;
use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::{OptLevel, SearchInput};
use gpu_sim::isa::compile_program;
use gpu_sim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 1: run the application and profile it (the rocprof pass).
    let assembly = genome::synth::hg19_mini(0.02);
    let input = SearchInput::canonical_example(assembly.name());
    let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 17);
    let report = pipeline::sycl::run(&assembly, &input, &config)?;

    println!("profile of the baseline SYCL application on {}:\n", report.device);
    print!("{}", report.profile);

    let (hotspot, stats) = report.profile.hotspots()[0];
    println!(
        "\nhotspot: `{hotspot}` at {:.1}% of kernel time — the paper measures ~98% \
         for the comparer (§IV.B).\n",
        report.profile.share(hotspot) * 100.0
    );
    assert_eq!(hotspot, "comparer");
    assert!(stats.calls > 0);

    // Step 2: inspect the hotspot's compiled form per optimization stage.
    println!("compiled comparer variants (headers of the pseudo-ISA listings):");
    for opt in OptLevel::ALL {
        let program = compile_program(&ComparerKernel::code_model_for(opt));
        let header = program.disassemble().lines().next().unwrap().to_owned();
        println!("  {header}");
    }

    // Step 3: the interesting sections of the baseline vs opt3 vs opt4.
    let base = compile_program(&ComparerKernel::code_model_for(OptLevel::Base));
    let opt4 = compile_program(&ComparerKernel::code_model_for(OptLevel::Opt4));
    println!(
        "\nbaseline staging section (the serial copy loop opt3 removes):"
    );
    for line in base
        .disassemble()
        .lines()
        .skip_while(|l| !l.starts_with("staging_serial"))
        .take(8)
    {
        println!("  {line}");
    }
    println!("\nopt4 register-caching prologue (the 25 VGPRs that cost occupancy 10 -> 9):");
    for line in opt4
        .disassemble()
        .lines()
        .skip_while(|l| !l.starts_with("register_cached_pattern"))
        .take(6)
    {
        println!("  {line}");
    }

    println!(
        "\nconclusion (the paper's): \"there is a performance trade-off between \
         register usage and occupancy on the GPUs.\""
    );
    Ok(())
}
