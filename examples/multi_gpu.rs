//! Multi-GPU scaling — the extension the paper leaves as future work ("The
//! SYCL application currently executes on a single GPU device").
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::SearchInput;
use gpu_sim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let assembly = genome::synth::hg38_mini(0.05);
    let input = SearchInput::canonical_example(assembly.name());
    let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 15);

    let single = pipeline::sycl::run(&assembly, &input, &config)?;
    println!(
        "1 x MI100:             {:.6}s simulated, {} sites",
        single.timing.elapsed_s,
        single.offtargets.len()
    );

    for n in [2usize, 3, 4] {
        let fleet = vec![DeviceSpec::mi100(); n];
        let (multi, per_device) = pipeline::multi::run(&assembly, &input, &config, &fleet)?;
        assert_eq!(multi.offtargets, single.offtargets);
        println!(
            "{n} x MI100:             {:.6}s simulated, scaling {:.2}x  (per-device: {})",
            multi.timing.elapsed_s,
            single.timing.elapsed_s / multi.timing.elapsed_s,
            per_device
                .iter()
                .map(|t| format!("{:.6}s", t.elapsed_s))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    let (hetero, per_device) = pipeline::multi::run(
        &assembly,
        &input,
        &config,
        &DeviceSpec::paper_devices(),
    )?;
    assert_eq!(hetero.offtargets, single.offtargets);
    println!(
        "RVII+MI60+MI100:       {:.6}s simulated (slowest device bounds the run; per-device: {})",
        hetero.timing.elapsed_s,
        per_device
            .iter()
            .map(|t| format!("{:.6}s", t.elapsed_s))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}
