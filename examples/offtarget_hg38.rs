//! The paper's evaluation workload end to end: both assemblies, both host
//! applications (OpenCL and SYCL), all three GPUs — a miniature Table VIII.
//!
//! ```text
//! cargo run --release --example offtarget_hg38 [scale]
//! ```

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::SearchInput;
use gpu_sim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);

    let assemblies = [genome::synth::hg19_mini(scale), genome::synth::hg38_mini(scale)];

    println!("dataset      device      api     elapsed(s)   kernels(s)   sites");
    println!("-------      ------      ---     ----------   ----------   -----");
    for assembly in &assemblies {
        let input = SearchInput::canonical_example(assembly.name());
        for spec in DeviceSpec::paper_devices() {
            let config = PipelineConfig::new(spec.clone()).chunk_size(1 << 18);

            let ocl = pipeline::ocl::run(assembly, &input, &config)?;
            let sycl = pipeline::sycl::run(assembly, &input, &config)?;
            assert_eq!(
                ocl.offtargets, sycl.offtargets,
                "both applications must find the same sites"
            );

            for report in [&ocl, &sycl] {
                println!(
                    "{:<12} {:<11} {:<7} {:<12.6} {:<12.6} {}",
                    assembly.name(),
                    report.device,
                    report.api.to_string(),
                    report.timing.elapsed_s,
                    report.timing.kernel_s(),
                    report.offtargets.len()
                );
            }
            println!(
                "{:<12} {:<11} SYCL speedup over OpenCL: {:.2}x",
                "", spec.name,
                ocl.timing.elapsed_s / sycl.timing.elapsed_s
            );
        }
    }
    Ok(())
}
