//! The paper's §IV.B optimization study in miniature: sweep the comparer
//! kernel through opt1–opt4 and print kernel time, static resources and
//! occupancy (Fig. 2 + Table X side by side).
//!
//! ```text
//! cargo run --release --example kernel_tuning
//! ```

use cas_offinder::kernels::ComparerKernel;
use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::{OptLevel, SearchInput};
use gpu_sim::isa::compile;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceSpec, NdRange};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let assembly = genome::synth::hg38_mini(0.02);
    let input = SearchInput::canonical_example(assembly.name());
    let spec = DeviceSpec::mi100();

    println!("comparer kernel on {} over {} ({} bp):\n", spec.name, assembly.name(), assembly.total_len());
    println!("level  kernel(s)   vs base  code(B)  SGPR  VGPR  occupancy");
    println!("-----  ---------   -------  -------  ----  ----  ---------");

    let mut base_time = None;
    for opt in OptLevel::ALL {
        let config = PipelineConfig::new(spec.clone())
            .chunk_size(1 << 18)
            .opt(opt);
        let report = pipeline::sycl::run(&assembly, &input, &config)?;
        let kernel_s = report.timing.comparer_s;
        let base = *base_time.get_or_insert(kernel_s);

        let mut resources = compile(&ComparerKernel::code_model_for(opt));
        resources.lds_bytes = (2 * input.pattern_len() * 5) as u64;
        let occ = occupancy(&resources, &NdRange::linear(1 << 20, 256), &spec);

        println!(
            "{:<6} {:<11.6} {:<8.2} {:<8} {:<5} {:<5} {}",
            opt.label(),
            kernel_s,
            kernel_s / base,
            resources.code_bytes,
            resources.sgprs,
            resources.vgprs,
            occ.waves_per_simd
        );
    }

    println!(
        "\nthe opt4 row shows the paper's occupancy cliff: less code, more \
         registers, occupancy 10 -> 9, and the kernel time nearly doubles."
    );
    Ok(())
}
