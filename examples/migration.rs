//! The paper's §III migration walk-through as running code: the same saxpy
//! kernel driven first through the thirteen OpenCL steps, then through the
//! eight SYCL steps, printing each step as it is exercised.
//!
//! ```text
//! cargo run --example migration
//! ```

use std::sync::Arc;

use gpu_sim::kernel::{KernelProgram, LocalMem};
use gpu_sim::{DeviceBuffer, ItemCtx, NdRange};
use opencl_rt::{
    BoundKernel, ClBuffer, ClError, ClKernelFunction, ClResult, CommandQueue, Context, DeviceType,
    KernelArg, KernelSource, MemFlags, Platform, Program,
};
use sycl_rt::{AccessMode, Buffer, GpuSelector, Queue};

/// The device kernel both programming models launch: y[i] = a*x[i] + y[i].
struct Saxpy {
    a: f32,
    x: DeviceBuffer<f32>,
    y: DeviceBuffer<f32>,
}

impl KernelProgram for Saxpy {
    type Private = ();
    fn name(&self) -> &str {
        "saxpy"
    }
    fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
        let i = item.global_id(0);
        let v = self.a * self.x.load(item, i) + self.y.load(item, i);
        item.ops(2);
        self.y.store(item, i, v);
    }
}

/// The OpenCL-side kernel function (what lives in the `.cl` source).
struct SaxpyFn;
struct SaxpyBound(Saxpy);
impl BoundKernel for SaxpyBound {
    fn launch(
        &self,
        device: &gpu_sim::Device,
        nd: NdRange,
    ) -> gpu_sim::SimResult<gpu_sim::LaunchReport> {
        device.launch(&self.0, nd)
    }
}
impl ClKernelFunction for SaxpyFn {
    fn name(&self) -> &str {
        "saxpy"
    }
    fn arity(&self) -> usize {
        3
    }
    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        Ok(Box::new(SaxpyBound(Saxpy {
            a: args[0].as_f32(0)?,
            x: args[1].as_buf_f32(1)?,
            y: args[2].as_buf_f32(2)?,
        })))
    }
}

const N: usize = 256;

fn opencl_version() -> Result<Vec<f32>, ClError> {
    println!("OpenCL (Table I, left column — 13 logical steps):");

    let platforms = Platform::query(); // 1. platform query
    let devices = platforms[0].devices(DeviceType::Gpu)?; // 2. device query
    let ctx = Context::new(&devices[..1])?; // 3. create context
    let queue = CommandQueue::new(&ctx, 0)?; // 4. create command queue

    let x = ClBuffer::create_with_data(&ctx, MemFlags::ReadOnly, &vec![1.0f32; N])?; // 5. memory objects
    let y = ClBuffer::create_with_data(&ctx, MemFlags::ReadWrite, &vec![2.0f32; N])?;

    let program = Program::create_with_source(
        // 6. create program
        &ctx,
        KernelSource::new().with_function(Arc::new(SaxpyFn)),
    );
    program.build("-O3")?; // 7. build program
    let kernel = program.create_kernel("saxpy")?; // 8. create kernel

    kernel.set_arg(0, KernelArg::F32(3.0))?; // 9. set kernel arguments
    kernel.set_arg(1, KernelArg::BufF32(x.device_buffer()))?;
    kernel.set_arg(2, KernelArg::BufF32(y.device_buffer()))?;

    let event = queue.enqueue_nd_range_kernel(&kernel, N, Some(64))?; // 10. enqueue kernel
    event.wait(); // 12. event handling

    let mut result = vec![0.0f32; N];
    queue.enqueue_read_buffer(&y, true, 0, &mut result)?; // 11. transfer to host

    kernel.release(); // 13. release resources
    program.release();
    x.release();
    y.release();
    queue.release();

    for step in ctx.step_log().steps() {
        println!("  - {step}");
    }
    Ok(result)
}

fn sycl_version() -> Result<Vec<f32>, sycl_rt::SyclException> {
    println!("\nSYCL (Table I, right column — 8 logical steps):");

    let queue = Queue::new(&GpuSelector::new())?; // 1-2. selector + queue
    let x = Buffer::from_slice(&vec![1.0f32; N]); // 3. buffers
    let y = Buffer::from_slice(&vec![2.0f32; N]);

    let event = queue.submit(|h| {
        // 6. implicit transfers via accessors
        let x_acc = h.get_access(&x, AccessMode::Read)?;
        let y_acc = h.get_access(&y, AccessMode::ReadWrite)?;
        // 4-5. kernel lambda + submit
        h.parallel_for(
            NdRange::linear(N, 64),
            &Saxpy {
                a: 3.0,
                x: x_acc.raw(),
                y: y_acc.raw(),
            },
        )
    })?;
    event.wait(); // 7. event class

    let result = y.to_vec();
    drop((x, y)); // 8. implicit release via destructors
    queue.step_log().record(sycl_rt::Step::ImplicitRelease);

    for step in queue.step_log().steps() {
        println!("  - {step}");
    }
    Ok(result)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ocl = opencl_version()?;
    let sycl = sycl_version()?;
    assert_eq!(ocl, sycl, "both versions must compute the same saxpy");
    assert!(ocl.iter().all(|&v| v == 5.0));
    println!("\nboth versions computed y = 3*x + y = 5.0 for all {N} elements.");
    Ok(())
}
