//! Quickstart: search a miniature genome for off-target sites of one guide.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cas_offinder::pipeline::{self, PipelineConfig};
use cas_offinder::SearchInput;
use gpu_sim::DeviceSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic miniature of the hg38 assembly (~75 kbp at 1% scale).
    let assembly = genome::synth::hg38_mini(0.01);
    println!(
        "genome: {} ({} bp over {} chromosomes)",
        assembly.name(),
        assembly.total_len(),
        assembly.chromosomes().len()
    );

    // The canonical Cas-OFFinder input: SpCas9 NRG PAM, two 20-nt guides,
    // up to 5 mismatches.
    let input = SearchInput::canonical_example(assembly.name());
    println!("pattern: {}", String::from_utf8_lossy(&input.pattern));

    // Run the SYCL application on a simulated AMD MI100.
    let config = PipelineConfig::new(DeviceSpec::mi100()).chunk_size(1 << 16);
    let report = pipeline::sycl::run(&assembly, &input, &config)?;

    println!(
        "\n{} off-target sites found in {:.6} simulated seconds on {}",
        report.offtargets.len(),
        report.timing.elapsed_s,
        report.device
    );
    println!("{}", report.timing);

    println!("\nfirst hits (query  chrom  position  site  strand  mismatches):");
    for hit in report.offtargets.iter().take(10) {
        println!("  {hit}");
    }

    println!("\nresult statistics:");
    print!("{}", cas_offinder::stats::SearchStats::from_hits(&report.offtargets));

    println!("\nkernel profile (the paper's §IV.B hotspot view):");
    print!("{}", report.profile);
    Ok(())
}
