//! Bulge-aware search: off-target sites with insertions/deletions.
//!
//! §II.A of the paper notes Cas-OFFinder "can also predict off-target sites
//! with deletions or insertions"; this example exercises that versatility
//! claim on a genome with hand-planted bulged sites.
//!
//! ```text
//! cargo run --example bulge_search
//! ```

use cas_offinder::bulge::{search_with_bulges, BulgeLimits};
use cas_offinder::SearchInput;
use genome::{Assembly, Chromosome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small genome with three planted variants of the guide ACGTACGTCC:
    //  - a perfect match,
    //  - a site with one extra genomic base   (DNA bulge),
    //  - a site with one deleted genomic base (RNA bulge).
    let guide = b"ACGTACGTCC";
    let mut seq = Vec::new();
    seq.extend_from_slice(b"TTTTTTTT");
    seq.extend_from_slice(b"ACGTACGTCCGG"); // exact + GG PAM
    seq.extend_from_slice(b"TTTTTTTT");
    seq.extend_from_slice(b"ACGTAACGTCCGG"); // extra A -> DNA bulge
    seq.extend_from_slice(b"TTTTTTTT");
    seq.extend_from_slice(b"ACGACGTCCGG"); // missing T -> RNA bulge
    seq.extend_from_slice(b"TTTTTTTT");

    let mut assembly = Assembly::new("bulge-demo");
    assembly.push(Chromosome::new("chr1", seq));

    // Pattern: ten wildcards for the spacer, then the GG PAM.
    let input = SearchInput::parse(&format!(
        "bulge-demo\nNNNNNNNNNNGG\n{}NN 1\n",
        String::from_utf8_lossy(guide)
    ))?;

    let limits = BulgeLimits {
        max_dna: 1,
        max_rna: 1,
    };
    let hits = search_with_bulges(&assembly, &input, limits);

    println!("bulge-aware search over {} bp:", assembly.total_len());
    println!("{:<8} {:<10} {:<6} {:<4} {:<4} site", "class", "position", "strand", "mm", "pos");
    for hit in &hits {
        println!(
            "{:<8} {:<10} {:<6} {:<4} {:<4} {}",
            hit.bulge.to_string(),
            hit.site.position,
            hit.site.strand.to_string(),
            hit.site.mismatches,
            hit.bulge_pos,
            String::from_utf8_lossy(&hit.site.site)
        );
    }

    let classes: Vec<String> = hits.iter().map(|h| h.bulge.to_string()).collect();
    assert!(classes.iter().any(|c| c == "X"), "plain hit expected");
    assert!(classes.iter().any(|c| c == "DNA:1"), "DNA bulge expected");
    assert!(classes.iter().any(|c| c == "RNA:1"), "RNA bulge expected");
    println!("\nfound all three classes: exact, DNA bulge, RNA bulge.");
    Ok(())
}
