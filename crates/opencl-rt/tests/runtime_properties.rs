//! Property-based tests of the OpenCL-flavoured runtime: transfer
//! round-trips at arbitrary offsets, argument-slot semantics, and the
//! runtime's work-group-size choice.

use std::sync::Arc;

use gpu_sim::executor::LaunchReport;
use gpu_sim::kernel::{KernelProgram, LocalMem};
use gpu_sim::{Device, DeviceBuffer, ItemCtx, NdRange, SimResult};
use opencl_rt::{
    BoundKernel, ClBuffer, ClKernelFunction, ClResult, CommandQueue, Context, DeviceType,
    KernelArg, KernelSource, MemFlags, Platform, Program,
};
use proptest::prelude::*;

/// Adds a scalar to every element.
struct AddFn;
struct AddKernel {
    data: DeviceBuffer<u32>,
    addend: u32,
}
impl KernelProgram for AddKernel {
    type Private = ();
    fn name(&self) -> &str {
        "add"
    }
    fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
        let i = item.global_id(0);
        if i < self.data.len() {
            let v = self.data.load(item, i);
            self.data.store(item, i, v.wrapping_add(self.addend));
        }
    }
}
struct AddBound(AddKernel);
impl BoundKernel for AddBound {
    fn launch(&self, device: &Device, nd: NdRange) -> SimResult<LaunchReport> {
        device.launch(&self.0, nd)
    }
}
impl ClKernelFunction for AddFn {
    fn name(&self) -> &str {
        "add"
    }
    fn arity(&self) -> usize {
        2
    }
    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        Ok(Box::new(AddBound(AddKernel {
            data: args[0].as_buf_u32(0)?,
            addend: args[1].as_u32(1)?,
        })))
    }
}

fn setup(len: usize) -> (Context, CommandQueue, opencl_rt::Kernel, ClBuffer<u32>) {
    let devices = Platform::query()[0].devices(DeviceType::Gpu).unwrap();
    let ctx = Context::new(&devices[..1]).unwrap();
    let queue = CommandQueue::new(&ctx, 0).unwrap();
    let program =
        Program::create_with_source(&ctx, KernelSource::new().with_function(Arc::new(AddFn)));
    program.build("-O3").unwrap();
    let kernel = program.create_kernel("add").unwrap();
    let buf = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, len).unwrap();
    (ctx, queue, kernel, buf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn offset_transfers_roundtrip(
        len in 1usize..500,
        data in proptest::collection::vec(any::<u32>(), 1..100),
        offset in 0usize..400,
    ) {
        prop_assume!(offset + data.len() <= len);
        let (_ctx, queue, _k, buf) = setup(len);
        queue.enqueue_write_buffer(&buf, true, offset, &data).unwrap();
        let mut back = vec![0u32; data.len()];
        queue.enqueue_read_buffer(&buf, true, offset, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn out_of_bounds_transfers_fail_without_side_effects(
        len in 1usize..100,
        extra in 1usize..50,
    ) {
        let (_ctx, queue, _k, buf) = setup(len);
        let data = vec![7u32; len + extra];
        prop_assert!(queue.enqueue_write_buffer(&buf, true, 0, &data).is_err());
        // The buffer stays zero-initialized.
        let mut all = vec![1u32; len];
        queue.enqueue_read_buffer(&buf, true, 0, &mut all).unwrap();
        prop_assert!(all.iter().all(|&v| v == 0));
    }

    #[test]
    fn kernel_computes_for_any_geometry(
        groups in 1usize..16,
        addend in any::<u32>(),
    ) {
        let len = groups * 64;
        let (_ctx, queue, kernel, buf) = setup(len);
        let init: Vec<u32> = (0..len as u32).collect();
        queue.enqueue_write_buffer(&buf, true, 0, &init).unwrap();
        kernel.set_arg(0, KernelArg::BufU32(buf.device_buffer())).unwrap();
        kernel.set_arg(1, KernelArg::U32(addend)).unwrap();
        let ev = queue.enqueue_nd_range_kernel(&kernel, len, None).unwrap();
        // Runtime-chosen local size divides the global size.
        let local = ev.launch_report().unwrap().nd.local(0);
        prop_assert_eq!(len % local, 0);
        prop_assert!(local <= 256);

        let mut out = vec![0u32; len];
        queue.enqueue_read_buffer(&buf, true, 0, &mut out).unwrap();
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, (i as u32).wrapping_add(addend));
        }
    }

    #[test]
    fn rebinding_args_overwrites_previous_values(a in any::<u32>(), b in any::<u32>()) {
        let (_ctx, queue, kernel, buf) = setup(64);
        kernel.set_arg(0, KernelArg::BufU32(buf.device_buffer())).unwrap();
        kernel.set_arg(1, KernelArg::U32(a)).unwrap();
        kernel.set_arg(1, KernelArg::U32(b)).unwrap();
        queue.enqueue_nd_range_kernel(&kernel, 64, Some(64)).unwrap();
        let mut out = vec![0u32; 64];
        queue.enqueue_read_buffer(&buf, true, 0, &mut out).unwrap();
        prop_assert!(out.iter().all(|&v| v == b), "last set_arg wins");
    }

    #[test]
    fn simulated_clock_is_monotone_over_command_sequences(
        commands in proptest::collection::vec(0usize..3, 1..20),
    ) {
        let (_ctx, queue, kernel, buf) = setup(128);
        kernel.set_arg(0, KernelArg::BufU32(buf.device_buffer())).unwrap();
        kernel.set_arg(1, KernelArg::U32(1)).unwrap();
        let mut last = 0.0f64;
        let mut scratch = vec![0u32; 128];
        for c in commands {
            let end = match c {
                0 => queue.enqueue_write_buffer(&buf, true, 0, &scratch).unwrap().end_s(),
                1 => queue.enqueue_read_buffer(&buf, true, 0, &mut scratch).unwrap().end_s(),
                _ => queue.enqueue_nd_range_kernel(&kernel, 128, Some(64)).unwrap().end_s(),
            };
            prop_assert!(end > last);
            last = end;
        }
        prop_assert!((queue.elapsed_s() - last).abs() < 1e-15);
    }
}
