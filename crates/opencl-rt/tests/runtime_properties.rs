//! Seeded-random property tests of the OpenCL-flavoured runtime: transfer
//! round-trips at arbitrary offsets, argument-slot semantics, and the
//! runtime's work-group-size choice. Cases are drawn from `genome::rng`,
//! so runs are deterministic and need no external property-testing crate.

use std::sync::Arc;

use genome::rng::Xoshiro256;
use gpu_sim::executor::LaunchReport;
use gpu_sim::kernel::{KernelProgram, LocalMem};
use gpu_sim::{Device, DeviceBuffer, ItemCtx, NdRange, SimResult};
use opencl_rt::{
    BoundKernel, ClBuffer, ClKernelFunction, ClResult, CommandQueue, Context, DeviceType,
    KernelArg, KernelSource, MemFlags, Platform, Program,
};

/// Adds a scalar to every element.
struct AddFn;
struct AddKernel {
    data: DeviceBuffer<u32>,
    addend: u32,
}
impl KernelProgram for AddKernel {
    type Private = ();
    fn name(&self) -> &str {
        "add"
    }
    fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
        let i = item.global_id(0);
        if i < self.data.len() {
            let v = self.data.load(item, i);
            self.data.store(item, i, v.wrapping_add(self.addend));
        }
    }
}
struct AddBound(AddKernel);
impl BoundKernel for AddBound {
    fn launch(&self, device: &Device, nd: NdRange) -> SimResult<LaunchReport> {
        device.launch(&self.0, nd)
    }
}
impl ClKernelFunction for AddFn {
    fn name(&self) -> &str {
        "add"
    }
    fn arity(&self) -> usize {
        2
    }
    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
        Ok(Box::new(AddBound(AddKernel {
            data: args[0].as_buf_u32(0)?,
            addend: args[1].as_u32(1)?,
        })))
    }
}

fn setup(len: usize) -> (Context, CommandQueue, opencl_rt::Kernel, ClBuffer<u32>) {
    let devices = Platform::query()[0].devices(DeviceType::Gpu).unwrap();
    let ctx = Context::new(&devices[..1]).unwrap();
    let queue = CommandQueue::new(&ctx, 0).unwrap();
    let program =
        Program::create_with_source(&ctx, KernelSource::new().with_function(Arc::new(AddFn)));
    program.build("-O3").unwrap();
    let kernel = program.create_kernel("add").unwrap();
    let buf = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, len).unwrap();
    (ctx, queue, kernel, buf)
}

#[test]
fn offset_transfers_roundtrip() {
    let mut rng = Xoshiro256::seed_from_u64(0x0CF);
    for _ in 0..32 {
        let data: Vec<u32> = (0..rng.gen_range(1, 100))
            .map(|_| rng.next_u64() as u32)
            .collect();
        let offset = rng.gen_below(400);
        let len = offset + data.len() + rng.gen_below(64);
        let (_ctx, queue, _k, buf) = setup(len);
        queue.enqueue_write_buffer(&buf, true, offset, &data).unwrap();
        let mut back = vec![0u32; data.len()];
        queue
            .enqueue_read_buffer(&buf, true, offset, &mut back)
            .unwrap();
        assert_eq!(back, data, "offset {offset} len {len}");
    }
}

#[test]
fn out_of_bounds_transfers_fail_without_side_effects() {
    let mut rng = Xoshiro256::seed_from_u64(0x00B);
    for _ in 0..32 {
        let len = rng.gen_range(1, 100);
        let extra = rng.gen_range(1, 50);
        let (_ctx, queue, _k, buf) = setup(len);
        let data = vec![7u32; len + extra];
        assert!(queue.enqueue_write_buffer(&buf, true, 0, &data).is_err());
        // The buffer stays zero-initialized.
        let mut all = vec![1u32; len];
        queue.enqueue_read_buffer(&buf, true, 0, &mut all).unwrap();
        assert!(all.iter().all(|&v| v == 0), "len {len} extra {extra}");
    }
}

#[test]
fn kernel_computes_for_any_geometry() {
    let mut rng = Xoshiro256::seed_from_u64(0x6E0);
    for _ in 0..16 {
        let groups = rng.gen_range(1, 16);
        let addend = rng.next_u64() as u32;
        let len = groups * 64;
        let (_ctx, queue, kernel, buf) = setup(len);
        let init: Vec<u32> = (0..len as u32).collect();
        queue.enqueue_write_buffer(&buf, true, 0, &init).unwrap();
        kernel
            .set_arg(0, KernelArg::BufU32(buf.device_buffer()))
            .unwrap();
        kernel.set_arg(1, KernelArg::U32(addend)).unwrap();
        let ev = queue.enqueue_nd_range_kernel(&kernel, len, None).unwrap();
        // Runtime-chosen local size divides the global size.
        let local = ev.launch_report().unwrap().nd.local(0);
        assert_eq!(len % local, 0);
        assert!(local <= 256);

        let mut out = vec![0u32; len];
        queue.enqueue_read_buffer(&buf, true, 0, &mut out).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u32).wrapping_add(addend));
        }
    }
}

#[test]
fn rebinding_args_overwrites_previous_values() {
    let mut rng = Xoshiro256::seed_from_u64(0x4EB);
    for _ in 0..16 {
        let a = rng.next_u64() as u32;
        let b = rng.next_u64() as u32;
        let (_ctx, queue, kernel, buf) = setup(64);
        kernel
            .set_arg(0, KernelArg::BufU32(buf.device_buffer()))
            .unwrap();
        kernel.set_arg(1, KernelArg::U32(a)).unwrap();
        kernel.set_arg(1, KernelArg::U32(b)).unwrap();
        queue.enqueue_nd_range_kernel(&kernel, 64, Some(64)).unwrap();
        let mut out = vec![0u32; 64];
        queue.enqueue_read_buffer(&buf, true, 0, &mut out).unwrap();
        assert!(out.iter().all(|&v| v == b), "last set_arg wins");
    }
}

#[test]
fn simulated_clock_is_monotone_over_command_sequences() {
    let mut rng = Xoshiro256::seed_from_u64(0xC10C);
    for _ in 0..16 {
        let commands: Vec<usize> = (0..rng.gen_range(1, 20)).map(|_| rng.gen_below(3)).collect();
        let (_ctx, queue, kernel, buf) = setup(128);
        kernel
            .set_arg(0, KernelArg::BufU32(buf.device_buffer()))
            .unwrap();
        kernel.set_arg(1, KernelArg::U32(1)).unwrap();
        let mut last = 0.0f64;
        let mut scratch = vec![0u32; 128];
        for c in commands {
            let end = match c {
                0 => queue
                    .enqueue_write_buffer(&buf, true, 0, &scratch)
                    .unwrap()
                    .end_s(),
                1 => queue
                    .enqueue_read_buffer(&buf, true, 0, &mut scratch)
                    .unwrap()
                    .end_s(),
                _ => queue
                    .enqueue_nd_range_kernel(&kernel, 128, Some(64))
                    .unwrap()
                    .end_s(),
            };
            assert!(end > last);
            last = end;
        }
        assert!((queue.elapsed_s() - last).abs() < 1e-15);
    }
}
