//! Events (Table I step 12) with simulated profiling timestamps.

use std::sync::Arc;

use gpu_sim::executor::LaunchReport;

use crate::steps::{Step, StepLog};

/// The command an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandType {
    /// `clEnqueueWriteBuffer`.
    WriteBuffer,
    /// `clEnqueueReadBuffer`.
    ReadBuffer,
    /// `clEnqueueNDRangeKernel`.
    NdRangeKernel,
}

/// An event tied to an enqueued command (`cl_event`), carrying the
/// simulated `CL_PROFILING_COMMAND_START`/`END` timestamps and — for kernel
/// commands — the full simulator [`LaunchReport`].
///
/// # Examples
///
/// ```no_run
/// # fn get_event() -> opencl_rt::ClEvent { unimplemented!() }
/// let event = get_event();
/// event.wait();
/// println!("kernel took {:.6} simulated seconds", event.duration_s());
/// ```
#[derive(Debug, Clone)]
pub struct ClEvent {
    command: CommandType,
    start_s: f64,
    end_s: f64,
    report: Option<Arc<LaunchReport>>,
    log: StepLog,
}

impl ClEvent {
    pub(crate) fn new(
        command: CommandType,
        start_s: f64,
        end_s: f64,
        report: Option<Arc<LaunchReport>>,
        log: StepLog,
    ) -> Self {
        ClEvent {
            command,
            start_s,
            end_s,
            report,
            log,
        }
    }

    /// The command this event profiles.
    pub fn command(&self) -> CommandType {
        self.command
    }

    /// Block until the command completes (`clWaitForEvents`). Commands in
    /// the simulated queue are synchronous, so this only records the
    /// event-handling step; call it where a real host program would wait.
    pub fn wait(&self) {
        self.log.record(Step::EventHandling);
    }

    /// Simulated start timestamp in seconds (`CL_PROFILING_COMMAND_START`).
    pub fn start_s(&self) -> f64 {
        self.start_s
    }

    /// Simulated end timestamp in seconds (`CL_PROFILING_COMMAND_END`).
    pub fn end_s(&self) -> f64 {
        self.end_s
    }

    /// Simulated duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// The launch report, for kernel commands.
    pub fn launch_report(&self) -> Option<&LaunchReport> {
        self.report.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_exposes_profiling_window() {
        let e = ClEvent::new(CommandType::WriteBuffer, 1.0, 3.5, None, StepLog::new());
        assert_eq!(e.command(), CommandType::WriteBuffer);
        assert_eq!(e.start_s(), 1.0);
        assert_eq!(e.end_s(), 3.5);
        assert!((e.duration_s() - 2.5).abs() < 1e-12);
        assert!(e.launch_report().is_none());
    }

    #[test]
    fn wait_records_event_handling() {
        let log = StepLog::new();
        let e = ClEvent::new(CommandType::NdRangeKernel, 0.0, 0.0, None, log.clone());
        e.wait();
        assert_eq!(log.steps(), vec![Step::EventHandling]);
    }
}
