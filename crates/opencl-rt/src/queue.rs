//! Command queues (Table I steps 4, 10, 11).

use std::fmt;
use std::sync::Arc;

use gpu_sim::{timing, Device, NdRange, Scalar, SimClock};

use crate::buffer::ClBuffer;
use crate::context::Context;
use crate::error::{ClError, ClResult};
use crate::event::{ClEvent, CommandType};
use crate::kernel::Kernel;
use crate::steps::{Step, StepLog};

/// Host-side overhead multiplier of the OpenCL driver relative to the
/// SYCL plugin's path: ROCm OpenCL's blocking reads/writes copy through
/// unpinned host memory and every command crosses the driver individually,
/// whereas the SYCL runtime uses a pinned staging path and batches work in
/// command groups. Applied to the full duration of transfer commands and to
/// the host-side launch overhead; calibrated to the paper's Table VIII
/// elapsed-time gap (SYCL 1.00-1.19x faster).
pub const CL_HOST_OVERHEAD_FACTOR: f64 = 1.15;

/// A command queue bound to one device of a context (`cl_command_queue`).
///
/// The queue owns the simulated clock: every enqueued command advances it by
/// the command's simulated duration and stamps the returned [`ClEvent`], so
/// `queue.elapsed_s()` is the application's device-side elapsed time —
/// the quantity Table VIII of the paper reports.
pub struct CommandQueue {
    device: Device,
    clock: Arc<SimClock>,
    log: StepLog,
}

impl fmt::Debug for CommandQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommandQueue")
            .field("device", &self.device.spec().name)
            .field("elapsed_s", &self.clock.now())
            .finish()
    }
}

impl CommandQueue {
    /// Create a queue for device `device_index` of `ctx`
    /// (`clCreateCommandQueue`).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidDevice`] for an out-of-range index.
    pub fn new(ctx: &Context, device_index: usize) -> ClResult<CommandQueue> {
        let device = ctx.device(device_index)?.clone();
        ctx.step_log().record(Step::CreateCommandQueue);
        Ok(CommandQueue {
            device,
            clock: Arc::new(SimClock::new()),
            log: ctx.step_log().clone(),
        })
    }

    /// The device this queue submits to.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Total simulated time consumed by commands on this queue, in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.clock.now()
    }

    /// Copy host data into a buffer (`clEnqueueWriteBuffer`).
    ///
    /// `offset` is in elements (the byte `offset`/`cb` of the C API divided
    /// by the element size). The simulated queue is always blocking; the
    /// `blocking` flag is kept for API fidelity.
    ///
    /// # Errors
    ///
    /// Returns an error when the region is out of bounds.
    pub fn enqueue_write_buffer<T: Scalar>(
        &self,
        dst: &ClBuffer<T>,
        _blocking: bool,
        offset: usize,
        data: &[T],
    ) -> ClResult<ClEvent> {
        dst.device_buffer().write_from_host(offset, data)?;
        self.log.record(Step::TransferData);
        let spec = self.device.spec();
        let dur =
            timing::transfer_time_s(std::mem::size_of_val(data) as u64, spec) * CL_HOST_OVERHEAD_FACTOR;
        let (start, end) = self.clock.advance(dur);
        Ok(ClEvent::new(
            CommandType::WriteBuffer,
            start,
            end,
            None,
            self.log.clone(),
        ))
    }

    /// Copy buffer data to the host (`clEnqueueReadBuffer`).
    ///
    /// # Errors
    ///
    /// Returns an error when the region is out of bounds.
    pub fn enqueue_read_buffer<T: Scalar>(
        &self,
        src: &ClBuffer<T>,
        _blocking: bool,
        offset: usize,
        out: &mut [T],
    ) -> ClResult<ClEvent> {
        src.device_buffer().read_to_host(offset, out)?;
        self.log.record(Step::TransferData);
        let spec = self.device.spec();
        let dur =
            timing::transfer_time_s(std::mem::size_of_val(out) as u64, spec) * CL_HOST_OVERHEAD_FACTOR;
        let (start, end) = self.clock.advance(dur);
        Ok(ClEvent::new(
            CommandType::ReadBuffer,
            start,
            end,
            None,
            self.log.clone(),
        ))
    }

    /// Fill a buffer with a repeated value (`clEnqueueFillBuffer`), the
    /// canonical way to reset the atomic counters between launches.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` keeps the OpenCL error-code shape.
    pub fn enqueue_fill_buffer<T: Scalar>(
        &self,
        dst: &ClBuffer<T>,
        value: T,
    ) -> ClResult<ClEvent> {
        dst.device_buffer().fill(value);
        self.log.record(Step::TransferData);
        let dur = self.device.spec().transfer_overhead_s * CL_HOST_OVERHEAD_FACTOR;
        let (start, end) = self.clock.advance(dur);
        Ok(ClEvent::new(
            CommandType::WriteBuffer,
            start,
            end,
            None,
            self.log.clone(),
        ))
    }

    /// Copy between buffers on the device (`clEnqueueCopyBuffer`).
    ///
    /// # Errors
    ///
    /// Returns an error when either region is out of bounds.
    pub fn enqueue_copy_buffer<T: Scalar>(
        &self,
        src: &ClBuffer<T>,
        dst: &ClBuffer<T>,
        src_offset: usize,
        dst_offset: usize,
        len: usize,
    ) -> ClResult<ClEvent> {
        let mut staging = vec![T::default(); len];
        src.device_buffer().read_to_host(src_offset, &mut staging)?;
        dst.device_buffer().write_from_host(dst_offset, &staging)?;
        self.log.record(Step::TransferData);
        // Device-to-device: bounded by device bandwidth, not the interconnect.
        let spec = self.device.spec();
        let bytes = (len as u64) * std::mem::size_of::<T>() as u64;
        let dur = bytes as f64 / (spec.peak_bw_bytes_per_s() * spec.bw_efficiency)
            + spec.transfer_overhead_s;
        let (start, end) = self.clock.advance(dur);
        Ok(ClEvent::new(
            CommandType::WriteBuffer,
            start,
            end,
            None,
            self.log.clone(),
        ))
    }

    /// Enqueue a 1-D kernel (`clEnqueueNDRangeKernel` with `work_dim = 1`).
    ///
    /// When `lws` is `None` the runtime chooses the work-group size — the
    /// largest supported size (256) that divides the global size, the
    /// configuration the paper measured for the OpenCL application.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidWorkGroupSize`] when `lws` does not divide
    /// `gws`, [`ClError::InvalidArgValue`] when kernel arguments are unset
    /// or mistyped, and propagates simulator launch failures.
    pub fn enqueue_nd_range_kernel(
        &self,
        kernel: &Kernel,
        gws: usize,
        lws: Option<usize>,
    ) -> ClResult<ClEvent> {
        let local = match lws {
            Some(l) => l,
            None => {
                // The runtime picks the largest supported size that divides
                // the global size, halving down to a single wavefront.
                let mut l = kernel.runtime_work_group_size().min(gws.max(1));
                while l > 1 && !gws.is_multiple_of(l) {
                    l /= 2;
                }
                l
            }
        };
        if local == 0 || !gws.is_multiple_of(local) {
            return Err(ClError::InvalidWorkGroupSize {
                reason: format!("local size {local} does not divide global size {gws}"),
            });
        }
        let bound = kernel.bind()?;
        let report = bound
            .launch(&self.device, NdRange::linear(gws, local))
            .map_err(ClError::Sim)?;
        self.log.record(Step::EnqueueKernel);
        let dur = report.sim_time_s
            + (CL_HOST_OVERHEAD_FACTOR - 1.0) * self.device.spec().launch_overhead_s;
        let (start, end) = self.clock.advance(dur);
        Ok(ClEvent::new(
            CommandType::NdRangeKernel,
            start,
            end,
            Some(Arc::new(report)),
            self.log.clone(),
        ))
    }

    /// Block until all enqueued commands finish (`clFinish`). The simulated
    /// queue executes synchronously, so this is a no-op kept for fidelity.
    pub fn finish(&self) {}

    /// Explicitly release the queue (`clReleaseCommandQueue`).
    pub fn release(self) {
        self.log.record(Step::ReleaseResources);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::MemFlags;
    use crate::kernel::{BoundKernel, ClKernelFunction, KernelArg};
    use crate::platform::{DeviceType, Platform};
    use crate::program::{KernelSource, Program};
    use gpu_sim::executor::LaunchReport;
    use gpu_sim::kernel::{KernelProgram, LocalMem};
    use gpu_sim::{DeviceBuffer, ItemCtx, SimResult};

    /// Doubles each element in place.
    struct DoubleFn;
    struct DoubleKernel {
        data: DeviceBuffer<u32>,
    }
    impl KernelProgram for DoubleKernel {
        type Private = ();
        fn name(&self) -> &str {
            "double"
        }
        fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
            let i = item.global_id(0);
            if i < self.data.len() {
                let v = self.data.load(item, i);
                self.data.store(item, i, v * 2);
            }
        }
    }
    struct DoubleBound {
        data: DeviceBuffer<u32>,
    }
    impl BoundKernel for DoubleBound {
        fn launch(&self, device: &Device, nd: NdRange) -> SimResult<LaunchReport> {
            device.launch(
                &DoubleKernel {
                    data: self.data.clone(),
                },
                nd,
            )
        }
    }
    impl ClKernelFunction for DoubleFn {
        fn name(&self) -> &str {
            "double"
        }
        fn arity(&self) -> usize {
            1
        }
        fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
            Ok(Box::new(DoubleBound {
                data: args[0].as_buf_u32(0)?,
            }))
        }
    }

    fn setup() -> (Context, CommandQueue, Kernel, ClBuffer<u32>) {
        let devices = Platform::query()[0].devices(DeviceType::Gpu).unwrap();
        let ctx = Context::new(&devices).unwrap();
        let queue = CommandQueue::new(&ctx, 0).unwrap();
        let program = Program::create_with_source(
            &ctx,
            KernelSource::new().with_function(Arc::new(DoubleFn)),
        );
        program.build("-O3").unwrap();
        let kernel = program.create_kernel("double").unwrap();
        let buf = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, 128).unwrap();
        (ctx, queue, kernel, buf)
    }

    #[test]
    fn full_thirteen_step_lifecycle() {
        let (ctx, queue, kernel, buf) = setup();
        let host: Vec<u32> = (0..128).collect();
        queue.enqueue_write_buffer(&buf, true, 0, &host).unwrap();
        kernel
            .set_arg(0, KernelArg::BufU32(buf.device_buffer()))
            .unwrap();
        let ev = queue.enqueue_nd_range_kernel(&kernel, 128, Some(64)).unwrap();
        ev.wait();
        let mut out = vec![0u32; 128];
        queue.enqueue_read_buffer(&buf, true, 0, &mut out).unwrap();
        queue.finish();
        kernel.release();
        buf.release();
        queue.release();

        let expect: Vec<u32> = (0..128).map(|v| v * 2).collect();
        assert_eq!(out, expect);

        let mut steps = ctx.step_log().steps();
        steps.sort();
        let mut all = crate::steps::ALL_STEPS.to_vec();
        all.sort();
        assert_eq!(steps, all, "the lifecycle exercises all 13 Table I steps");
    }

    #[test]
    fn runtime_chooses_largest_dividing_work_group_size() {
        let (_ctx, queue, kernel, buf) = setup();
        kernel
            .set_arg(0, KernelArg::BufU32(buf.device_buffer()))
            .unwrap();
        // 128 is not divisible by the preferred 256: halve down to 128.
        let ev = queue.enqueue_nd_range_kernel(&kernel, 128, None).unwrap();
        assert_eq!(ev.launch_report().unwrap().nd.local(0), 128);
        // 512 takes the full preferred 256.
        let ev = queue.enqueue_nd_range_kernel(&kernel, 512, None).unwrap();
        assert_eq!(ev.launch_report().unwrap().nd.local(0), 256);
    }

    #[test]
    fn bad_work_group_size_is_rejected() {
        let (_ctx, queue, kernel, buf) = setup();
        kernel
            .set_arg(0, KernelArg::BufU32(buf.device_buffer()))
            .unwrap();
        let err = queue
            .enqueue_nd_range_kernel(&kernel, 100, Some(64))
            .unwrap_err();
        assert!(matches!(err, ClError::InvalidWorkGroupSize { .. }));
    }

    #[test]
    fn unset_args_fail_at_enqueue() {
        let (_ctx, queue, kernel, _buf) = setup();
        let err = queue
            .enqueue_nd_range_kernel(&kernel, 64, Some(64))
            .unwrap_err();
        assert!(matches!(err, ClError::InvalidArgValue { index: 0, .. }));
    }

    #[test]
    fn fill_and_copy_buffers() {
        let (_ctx, queue, _kernel, buf) = setup();
        queue.enqueue_fill_buffer(&buf, 7u32).unwrap();
        let mut out = vec![0u32; 128];
        queue.enqueue_read_buffer(&buf, true, 0, &mut out).unwrap();
        assert!(out.iter().all(|&v| v == 7));

        let ctx2 = Context::new(
            &Platform::query()[0].devices(DeviceType::Gpu).unwrap()[..1],
        )
        .unwrap();
        let _ = ctx2; // the copy stays within the original context
        let dst = ClBuffer::<u32>::create(&_ctx, MemFlags::ReadWrite, 64).unwrap();
        queue.enqueue_copy_buffer(&buf, &dst, 8, 0, 64).unwrap();
        let mut out = vec![0u32; 64];
        queue.enqueue_read_buffer(&dst, true, 0, &mut out).unwrap();
        assert!(out.iter().all(|&v| v == 7));

        // Out-of-bounds copies are rejected.
        assert!(queue.enqueue_copy_buffer(&buf, &dst, 100, 0, 64).is_err());
    }

    #[test]
    fn clock_advances_with_commands() {
        let (_ctx, queue, kernel, buf) = setup();
        assert_eq!(queue.elapsed_s(), 0.0);
        let data = vec![1u32; 128];
        let w = queue.enqueue_write_buffer(&buf, true, 0, &data).unwrap();
        assert!(w.duration_s() > 0.0);
        kernel
            .set_arg(0, KernelArg::BufU32(buf.device_buffer()))
            .unwrap();
        let k = queue.enqueue_nd_range_kernel(&kernel, 128, Some(64)).unwrap();
        assert!(k.start_s() >= w.end_s());
        assert!(queue.elapsed_s() >= k.end_s());
    }
}
