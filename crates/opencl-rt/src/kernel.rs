//! Kernel objects and arguments (Table I steps 8–9).

use std::fmt;
use std::sync::Arc;

use gpu_sim::executor::LaunchReport;
use gpu_sim::{Device, DeviceBuffer, NdRange, SimResult};

use std::sync::Mutex;

use crate::error::{ClError, ClResult};
use crate::steps::{Step, StepLog};

macro_rules! kernel_arg_buffers {
    ($(($variant:ident, $t:ty, $as_fn:ident)),* $(,)?) => {
        /// A value bound to a kernel argument slot (`clSetKernelArg`).
        ///
        /// OpenCL kernel arguments are set positionally and type-erased; the
        /// kernel implementation recovers the typed values with the `as_*`
        /// accessors, which produce `CL_INVALID_ARG_VALUE`-style errors on
        /// mismatch.
        #[derive(Debug, Clone)]
        #[non_exhaustive]
        pub enum KernelArg {
            $(
                #[doc = concat!("A buffer of `", stringify!($t), "` elements.")]
                $variant(DeviceBuffer<$t>),
            )*
            /// A `u8` scalar.
            U8(u8),
            /// A `u16` scalar.
            U16(u16),
            /// A `u32` scalar.
            U32(u32),
            /// An `i32` scalar.
            I32(i32),
            /// A `u64` scalar.
            U64(u64),
            /// An `f32` scalar.
            F32(f32),
            /// A `__local` allocation of `bytes` bytes (a NULL-argument
            /// `clSetKernelArg` with a size).
            Local {
                /// Size of the local allocation in bytes.
                bytes: usize,
            },
        }

        impl KernelArg {
            $(
                #[doc = concat!("Recover a `", stringify!($t), "` buffer bound at `index`.")]
                ///
                /// # Errors
                ///
                /// Returns [`ClError::InvalidArgValue`] when the slot holds
                /// something else.
                pub fn $as_fn(&self, index: usize) -> ClResult<DeviceBuffer<$t>> {
                    match self {
                        KernelArg::$variant(b) => Ok(b.clone()),
                        other => Err(ClError::InvalidArgValue {
                            index,
                            expected: format!(
                                concat!("buffer of ", stringify!($t), ", got {:?}"),
                                other.kind()
                            ),
                        }),
                    }
                }
            )*
        }
    };
}

kernel_arg_buffers!(
    (BufU8, u8, as_buf_u8),
    (BufI8, i8, as_buf_i8),
    (BufU16, u16, as_buf_u16),
    (BufI16, i16, as_buf_i16),
    (BufU32, u32, as_buf_u32),
    (BufI32, i32, as_buf_i32),
    (BufU64, u64, as_buf_u64),
    (BufI64, i64, as_buf_i64),
    (BufF32, f32, as_buf_f32),
    (BufF64, f64, as_buf_f64),
);

macro_rules! kernel_arg_scalars {
    ($(($variant:ident, $t:ty, $as_fn:ident)),* $(,)?) => {
        impl KernelArg {
            $(
                #[doc = concat!("Recover a `", stringify!($t), "` scalar bound at `index`.")]
                ///
                /// # Errors
                ///
                /// Returns [`ClError::InvalidArgValue`] when the slot holds
                /// something else.
                pub fn $as_fn(&self, index: usize) -> ClResult<$t> {
                    match self {
                        KernelArg::$variant(v) => Ok(*v),
                        other => Err(ClError::InvalidArgValue {
                            index,
                            expected: format!(
                                concat!(stringify!($t), " scalar, got {:?}"),
                                other.kind()
                            ),
                        }),
                    }
                }
            )*
        }
    };
}

kernel_arg_scalars!(
    (U8, u8, as_u8),
    (U16, u16, as_u16),
    (U32, u32, as_u32),
    (I32, i32, as_i32),
    (U64, u64, as_u64),
    (F32, f32, as_f32),
);

impl KernelArg {
    /// Recover a `__local` allocation size bound at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidArgValue`] when the slot holds something
    /// else.
    pub fn as_local_bytes(&self, index: usize) -> ClResult<usize> {
        match self {
            KernelArg::Local { bytes } => Ok(*bytes),
            other => Err(ClError::InvalidArgValue {
                index,
                expected: format!("__local size, got {:?}", other.kind()),
            }),
        }
    }

    /// Short name of the stored kind, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            KernelArg::BufU8(_) => "buffer<u8>",
            KernelArg::BufI8(_) => "buffer<i8>",
            KernelArg::BufU16(_) => "buffer<u16>",
            KernelArg::BufI16(_) => "buffer<i16>",
            KernelArg::BufU32(_) => "buffer<u32>",
            KernelArg::BufI32(_) => "buffer<i32>",
            KernelArg::BufU64(_) => "buffer<u64>",
            KernelArg::BufI64(_) => "buffer<i64>",
            KernelArg::BufF32(_) => "buffer<f32>",
            KernelArg::BufF64(_) => "buffer<f64>",
            KernelArg::U8(_) => "u8",
            KernelArg::U16(_) => "u16",
            KernelArg::U32(_) => "u32",
            KernelArg::I32(_) => "i32",
            KernelArg::U64(_) => "u64",
            KernelArg::F32(_) => "f32",
            KernelArg::Local { .. } => "__local",
        }
    }
}

/// A kernel function compiled into a [`Program`](crate::Program) — the
/// simulated analogue of a `__kernel` entry point in OpenCL C source.
///
/// Implementations live with the application (e.g. the `cas-offinder`
/// crate's finder and comparer) and bridge the type-erased OpenCL argument
/// list to a typed `gpu_sim` kernel.
pub trait ClKernelFunction: Send + Sync {
    /// The `__kernel` function name.
    fn name(&self) -> &str;

    /// Number of arguments the kernel takes.
    fn arity(&self) -> usize;

    /// Validate the bound arguments and produce a launchable kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidArgValue`] for missing or mistyped
    /// arguments.
    fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>>;

    /// The work-group size the runtime picks when the host passes no local
    /// size (the paper: "the sizes in the OpenCL program are determined by
    /// an OpenCL runtime"). AMD's runtime picks the kernel's maximum
    /// supported size — 256 for these kernels — which is why the paper's
    /// kernel times end up close between the two applications; the queue
    /// falls back to smaller wavefront multiples when 256 does not divide
    /// the global size.
    fn runtime_work_group_size(&self) -> usize {
        256
    }
}

/// A kernel with validated arguments, ready to launch on a device.
pub trait BoundKernel: Send + Sync {
    /// Execute over `nd` on `device`.
    ///
    /// # Errors
    ///
    /// Propagates simulator launch failures.
    fn launch(&self, device: &Device, nd: NdRange) -> SimResult<LaunchReport>;
}

/// A kernel object (`cl_kernel`, Table I step 8) with its positional
/// argument slots (step 9).
pub struct Kernel {
    function: Arc<dyn ClKernelFunction>,
    args: Mutex<Vec<Option<KernelArg>>>,
    log: StepLog,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bound = self.args.lock().unwrap().iter().filter(|a| a.is_some()).count();
        f.debug_struct("Kernel")
            .field("name", &self.function.name())
            .field("arity", &self.function.arity())
            .field("bound_args", &bound)
            .finish()
    }
}

impl Kernel {
    pub(crate) fn new(function: Arc<dyn ClKernelFunction>, log: StepLog) -> Self {
        let arity = function.arity();
        Kernel {
            function,
            args: Mutex::new(vec![None; arity]),
            log,
        }
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        self.function.name()
    }

    /// Number of argument slots.
    pub fn arity(&self) -> usize {
        self.function.arity()
    }

    /// Bind `arg` to slot `index` (`clSetKernelArg`).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidArgIndex`] for an out-of-range slot.
    pub fn set_arg(&self, index: usize, arg: KernelArg) -> ClResult<()> {
        let mut args = self.args.lock().unwrap();
        let arity = args.len();
        let slot = args
            .get_mut(index)
            .ok_or(ClError::InvalidArgIndex { index, arity })?;
        *slot = Some(arg);
        self.log.record(Step::SetKernelArgs);
        Ok(())
    }

    /// Validate all slots and produce a launchable kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidArgValue`] if any slot is unset or any
    /// argument has the wrong type.
    pub(crate) fn bind(&self) -> ClResult<Box<dyn BoundKernel>> {
        let args = self.args.lock().unwrap();
        let mut bound = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            match a {
                Some(v) => bound.push(v.clone()),
                None => {
                    return Err(ClError::InvalidArgValue {
                        index: i,
                        expected: "an argument to be set before enqueue".to_owned(),
                    })
                }
            }
        }
        self.function.bind(&bound)
    }

    pub(crate) fn runtime_work_group_size(&self) -> usize {
        self.function.runtime_work_group_size()
    }

    /// Explicitly release the kernel object (`clReleaseKernel`).
    pub fn release(self) {
        self.log.record(Step::ReleaseResources);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    struct Nop;
    impl ClKernelFunction for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn arity(&self) -> usize {
            2
        }
        fn bind(&self, args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
            args[0].as_u32(0)?;
            args[1].as_buf_u8(1)?;
            Ok(Box::new(NopBound))
        }
    }
    struct NopBound;
    impl BoundKernel for NopBound {
        fn launch(&self, _d: &Device, _nd: NdRange) -> SimResult<LaunchReport> {
            unreachable!("not launched in these tests")
        }
    }

    fn buf() -> DeviceBuffer<u8> {
        Device::new(DeviceSpec::mi100()).alloc::<u8>(4).unwrap()
    }

    #[test]
    fn set_arg_validates_index() {
        let k = Kernel::new(Arc::new(Nop), StepLog::new());
        assert!(k.set_arg(0, KernelArg::U32(5)).is_ok());
        let err = k.set_arg(2, KernelArg::U32(5)).unwrap_err();
        assert_eq!(err, ClError::InvalidArgIndex { index: 2, arity: 2 });
    }

    #[test]
    fn bind_requires_all_args() {
        let k = Kernel::new(Arc::new(Nop), StepLog::new());
        k.set_arg(0, KernelArg::U32(5)).unwrap();
        let err = k.bind().map(|_| ()).unwrap_err();
        assert!(matches!(err, ClError::InvalidArgValue { index: 1, .. }));
        k.set_arg(1, KernelArg::BufU8(buf())).unwrap();
        assert!(k.bind().is_ok());
    }

    #[test]
    fn typed_accessors_reject_mismatches() {
        let a = KernelArg::U32(7);
        assert_eq!(a.as_u32(0).unwrap(), 7);
        assert!(a.as_u16(0).is_err());
        assert!(a.as_buf_u32(0).is_err());
        let b = KernelArg::BufU8(buf());
        assert!(b.as_buf_u8(1).is_ok());
        assert!(b.as_buf_i32(1).is_err());
        let l = KernelArg::Local { bytes: 128 };
        assert_eq!(l.as_local_bytes(2).unwrap(), 128);
        assert!(KernelArg::U8(1).as_local_bytes(0).is_err());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(KernelArg::U32(1).kind(), "u32");
        assert_eq!(KernelArg::BufU8(buf()).kind(), "buffer<u8>");
        assert_eq!(KernelArg::Local { bytes: 1 }.kind(), "__local");
    }

    #[test]
    fn arg_mismatch_errors_name_both_sides() {
        let err = KernelArg::U32(1).as_buf_u8(3).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("buffer of u8"));
        assert!(msg.contains("u32"));
    }
}
