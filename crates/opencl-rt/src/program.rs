//! Program objects (Table I steps 6–8).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use std::sync::Mutex;

use crate::context::Context;
use crate::error::{ClError, ClResult};
use crate::kernel::{ClKernelFunction, Kernel};
use crate::steps::{Step, StepLog};

/// "Source code" for a simulated OpenCL program: a collection of kernel
/// functions (the analogue of the `.cl` file's `__kernel` entry points).
///
/// # Examples
///
/// ```no_run
/// use opencl_rt::KernelSource;
/// # fn kernels() -> (std::sync::Arc<dyn opencl_rt::ClKernelFunction>, std::sync::Arc<dyn opencl_rt::ClKernelFunction>) { unimplemented!() }
/// let (finder, comparer) = kernels();
/// let source = KernelSource::new().with_function(finder).with_function(comparer);
/// ```
#[derive(Default, Clone)]
pub struct KernelSource {
    functions: Vec<Arc<dyn ClKernelFunction>>,
}

impl fmt::Debug for KernelSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.functions.iter().map(|k| k.name()).collect();
        f.debug_struct("KernelSource").field("kernels", &names).finish()
    }
}

impl KernelSource {
    /// An empty source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a kernel function.
    pub fn with_function(mut self, f: Arc<dyn ClKernelFunction>) -> Self {
        self.functions.push(f);
        self
    }

    /// Number of kernel functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when the source defines no kernels.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

/// A program object (`cl_program`): created from source (step 6), built
/// (step 7), and then queried for kernel objects (step 8).
pub struct Program {
    functions: HashMap<String, Arc<dyn ClKernelFunction>>,
    built: Mutex<bool>,
    build_options: Mutex<String>,
    log: StepLog,
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("kernels", &self.functions.keys().collect::<Vec<_>>())
            .field("built", &*self.built.lock().unwrap())
            .finish()
    }
}

impl Program {
    /// Create a program from source (`clCreateProgramWithSource`).
    pub fn create_with_source(ctx: &Context, source: KernelSource) -> Program {
        ctx.step_log().record(Step::CreateProgram);
        Program {
            functions: source
                .functions
                .into_iter()
                .map(|f| (f.name().to_owned(), f))
                .collect(),
            built: Mutex::new(false),
            build_options: Mutex::new(String::new()),
            log: ctx.step_log().clone(),
        }
    }

    /// Build the program (`clBuildProgram`), e.g. with `"-O3"`.
    ///
    /// # Errors
    ///
    /// This simulated build cannot fail, but the signature keeps the OpenCL
    /// shape so call sites handle errors the way a real host program must.
    pub fn build(&self, options: &str) -> ClResult<()> {
        *self.build_options.lock().unwrap() = options.to_owned();
        *self.built.lock().unwrap() = true;
        self.log.record(Step::BuildProgram);
        Ok(())
    }

    /// The options the program was built with.
    pub fn build_options(&self) -> String {
        self.build_options.lock().unwrap().clone()
    }

    /// Create a kernel object by name (`clCreateKernel`).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::ProgramNotBuilt`] before [`build`](Self::build),
    /// or [`ClError::InvalidKernelName`] for an unknown kernel.
    pub fn create_kernel(&self, name: &str) -> ClResult<Kernel> {
        if !*self.built.lock().unwrap() {
            return Err(ClError::ProgramNotBuilt);
        }
        let f = self
            .functions
            .get(name)
            .ok_or_else(|| ClError::InvalidKernelName {
                name: name.to_owned(),
            })?;
        self.log.record(Step::CreateKernel);
        Ok(Kernel::new(Arc::clone(f), self.log.clone()))
    }

    /// Names of the kernels the program defines, sorted.
    pub fn kernel_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.functions.keys().cloned().collect();
        names.sort();
        names
    }

    /// Explicitly release the program object (`clReleaseProgram`).
    pub fn release(self) {
        self.log.record(Step::ReleaseResources);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BoundKernel, KernelArg};
    use crate::platform::{DeviceType, Platform};
    use gpu_sim::executor::LaunchReport;
    use gpu_sim::{Device, NdRange, SimResult};

    struct Dummy(&'static str);
    impl ClKernelFunction for Dummy {
        fn name(&self) -> &str {
            self.0
        }
        fn arity(&self) -> usize {
            0
        }
        fn bind(&self, _args: &[KernelArg]) -> ClResult<Box<dyn BoundKernel>> {
            Ok(Box::new(DummyBound))
        }
    }
    struct DummyBound;
    impl BoundKernel for DummyBound {
        fn launch(&self, _d: &Device, _nd: NdRange) -> SimResult<LaunchReport> {
            unreachable!()
        }
    }

    fn ctx() -> Context {
        let devices = Platform::query()[0].devices(DeviceType::Gpu).unwrap();
        Context::new(&devices).unwrap()
    }

    fn program(ctx: &Context) -> Program {
        let src = KernelSource::new()
            .with_function(Arc::new(Dummy("finder")))
            .with_function(Arc::new(Dummy("comparer")));
        Program::create_with_source(ctx, src)
    }

    #[test]
    fn kernel_creation_requires_build() {
        let ctx = ctx();
        let p = program(&ctx);
        assert_eq!(p.create_kernel("finder").unwrap_err(), ClError::ProgramNotBuilt);
        p.build("-O3").unwrap();
        assert_eq!(p.build_options(), "-O3");
        assert!(p.create_kernel("finder").is_ok());
    }

    #[test]
    fn unknown_kernel_name_is_rejected() {
        let ctx = ctx();
        let p = program(&ctx);
        p.build("").unwrap();
        let err = p.create_kernel("missing").unwrap_err();
        assert_eq!(
            err,
            ClError::InvalidKernelName {
                name: "missing".to_owned()
            }
        );
    }

    #[test]
    fn steps_6_to_8_are_recorded() {
        let ctx = ctx();
        let p = program(&ctx);
        p.build("").unwrap();
        let _k = p.create_kernel("comparer").unwrap();
        let steps = ctx.step_log().steps();
        assert!(steps.contains(&Step::CreateProgram));
        assert!(steps.contains(&Step::BuildProgram));
        assert!(steps.contains(&Step::CreateKernel));
    }

    #[test]
    fn kernel_names_are_sorted() {
        let ctx = ctx();
        let p = program(&ctx);
        assert_eq!(p.kernel_names(), vec!["comparer", "finder"]);
    }
}
