//! Memory objects (Table I step 5; Table II of the paper).

use gpu_sim::{DeviceBuffer, Scalar};

use crate::context::Context;
use crate::error::ClResult;
use crate::steps::{Step, StepLog};

/// Access flags of a memory object (`CL_MEM_READ_ONLY` & friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemFlags {
    /// Kernels may read and write (`CL_MEM_READ_WRITE`).
    #[default]
    ReadWrite,
    /// Kernels may only read (`CL_MEM_READ_ONLY`).
    ReadOnly,
    /// Kernels may only write (`CL_MEM_WRITE_ONLY`).
    WriteOnly,
    /// Read-only data the kernel accesses through a `__constant`-qualified
    /// argument (e.g. the finder's `pat` in Table VI): placed in constant
    /// memory, where loads are broadcast-cached.
    Constant,
}

/// A typed OpenCL memory object (`cl_mem`, Table II left column).
///
/// `d = clCreateBuffer(ctx, flags, BS, NULL, err)` maps to
/// [`ClBuffer::create`]; passing a host pointer maps to
/// [`ClBuffer::create_with_data`]; `clReleaseMemObject(d)` maps to
/// [`ClBuffer::release`] (dropping the buffer also releases it, but the
/// OpenCL programming model calls for the explicit release of step 13).
///
/// # Examples
///
/// ```
/// use opencl_rt::{ClBuffer, Context, DeviceType, MemFlags, Platform};
///
/// let devices = Platform::query()[0].devices(DeviceType::Gpu)?;
/// let ctx = Context::new(&devices)?;
/// let buf = ClBuffer::create_with_data(&ctx, MemFlags::ReadOnly, &[1u32, 2, 3])?;
/// assert_eq!(buf.len(), 3);
/// buf.release();
/// # Ok::<(), opencl_rt::ClError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClBuffer<T: Scalar> {
    inner: DeviceBuffer<T>,
    flags: MemFlags,
    log: StepLog,
}

impl<T: Scalar> ClBuffer<T> {
    /// Allocate a zero-initialized buffer of `len` elements on the context's
    /// first device.
    ///
    /// # Errors
    ///
    /// Returns an error when the device is out of memory.
    pub fn create(ctx: &Context, flags: MemFlags, len: usize) -> ClResult<Self> {
        Self::create_on(ctx, 0, flags, len)
    }

    /// Allocate on a specific device of the context.
    ///
    /// # Errors
    ///
    /// Returns an error for a bad device index or when out of memory.
    pub fn create_on(ctx: &Context, device: usize, flags: MemFlags, len: usize) -> ClResult<Self> {
        let dev = ctx.device(device)?;
        let inner = match flags {
            MemFlags::Constant => dev.alloc_constant::<T>(len)?,
            _ => dev.alloc::<T>(len)?,
        };
        ctx.step_log().record(Step::CreateMemObjects);
        Ok(ClBuffer {
            inner,
            flags,
            log: ctx.step_log().clone(),
        })
    }

    /// Allocate and initialize from host data (`CL_MEM_COPY_HOST_PTR`).
    ///
    /// # Errors
    ///
    /// Returns an error when the device is out of memory.
    pub fn create_with_data(ctx: &Context, flags: MemFlags, data: &[T]) -> ClResult<Self> {
        let buf = Self::create(ctx, flags, data.len())?;
        buf.inner
            .write_from_host(0, data)
            .expect("freshly created buffer fits its own data");
        Ok(buf)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The buffer's access flags.
    pub fn flags(&self) -> MemFlags {
        self.flags
    }

    /// The underlying simulator buffer, for binding as a kernel argument.
    pub fn device_buffer(&self) -> DeviceBuffer<T> {
        self.inner.clone()
    }

    /// Explicitly release the memory object (`clReleaseMemObject`).
    ///
    /// The storage is returned to the device when the last clone (including
    /// any kernels still holding it) is dropped.
    pub fn release(self) {
        self.log.record(Step::ReleaseResources);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{DeviceType, Platform};

    fn ctx() -> Context {
        let devices = Platform::query()[0].devices(DeviceType::Gpu).unwrap();
        Context::new(&devices).unwrap()
    }

    #[test]
    fn create_records_step_5() {
        let ctx = ctx();
        let _buf = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, 16).unwrap();
        assert!(ctx.step_log().steps().contains(&Step::CreateMemObjects));
    }

    #[test]
    fn only_constant_flagged_buffers_live_in_constant_memory() {
        let ctx = ctx();
        let c = ClBuffer::<u8>::create(&ctx, MemFlags::Constant, 4).unwrap();
        let ro = ClBuffer::<u8>::create(&ctx, MemFlags::ReadOnly, 4).unwrap();
        let rw = ClBuffer::<u8>::create(&ctx, MemFlags::ReadWrite, 4).unwrap();
        assert_eq!(c.device_buffer().space(), gpu_sim::AddressSpace::Constant);
        assert_eq!(ro.device_buffer().space(), gpu_sim::AddressSpace::Global);
        assert_eq!(rw.device_buffer().space(), gpu_sim::AddressSpace::Global);
    }

    #[test]
    fn create_with_data_copies_host_pointer() {
        let ctx = ctx();
        let buf = ClBuffer::create_with_data(&ctx, MemFlags::ReadWrite, &[9u16, 8, 7]).unwrap();
        assert_eq!(buf.device_buffer().to_vec(), vec![9, 8, 7]);
        assert_eq!(buf.flags(), MemFlags::ReadWrite);
    }

    #[test]
    fn release_records_step_13() {
        let ctx = ctx();
        let buf = ClBuffer::<u8>::create(&ctx, MemFlags::WriteOnly, 4).unwrap();
        buf.release();
        assert!(ctx.step_log().steps().contains(&Step::ReleaseResources));
    }

    #[test]
    fn bad_device_index_is_rejected() {
        let ctx = ctx();
        let err = ClBuffer::<u8>::create_on(&ctx, 9, MemFlags::ReadWrite, 4).unwrap_err();
        assert!(matches!(err, crate::ClError::InvalidDevice { .. }));
    }
}
