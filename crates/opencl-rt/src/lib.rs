//! # opencl-rt — an OpenCL-flavoured host runtime on the `gpu-sim` simulator
//!
//! This crate reproduces the OpenCL side of the paper's migration study: a
//! host API with the same *thirteen logical programming steps* as Table I —
//! platform query, device query, context, command queue, memory objects,
//! program creation, program build, kernel creation, kernel arguments,
//! kernel enqueue, data transfer, event handling, and explicit resource
//! release. Each step is recorded in the context's [`StepLog`], which is how
//! the experiment harness regenerates Table I.
//!
//! Kernels are Rust implementations of [`ClKernelFunction`] registered in a
//! [`KernelSource`] (standing in for `.cl` source text); arguments are bound
//! positionally and type-erased via [`KernelArg`], exactly like
//! `clSetKernelArg`. When the host passes no local work size, the runtime
//! picks one wavefront (64), which is the configuration the paper measured
//! for the OpenCL application.
//!
//! ```
//! use opencl_rt::{ClBuffer, CommandQueue, Context, DeviceType, MemFlags, Platform};
//!
//! // Steps 1-4.
//! let platforms = Platform::query();
//! let devices = platforms[0].devices(DeviceType::Gpu)?;
//! let ctx = Context::new(&devices)?;
//! let queue = CommandQueue::new(&ctx, 0)?;
//!
//! // Step 5 + 11: memory objects and transfers.
//! let buf = ClBuffer::<u32>::create(&ctx, MemFlags::ReadWrite, 16)?;
//! queue.enqueue_write_buffer(&buf, true, 0, &[7u32; 16])?;
//! let mut back = [0u32; 16];
//! queue.enqueue_read_buffer(&buf, true, 0, &mut back)?;
//! assert_eq!(back, [7u32; 16]);
//! # Ok::<(), opencl_rt::ClError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod context;
mod error;
mod event;
mod kernel;
mod platform;
mod program;
mod queue;

pub mod steps;

pub use buffer::{ClBuffer, MemFlags};
pub use context::Context;
pub use error::{ClError, ClResult};
pub use event::{ClEvent, CommandType};
pub use kernel::{BoundKernel, ClKernelFunction, Kernel, KernelArg};
pub use platform::{ClDeviceId, DeviceType, Platform};
pub use program::{KernelSource, Program};
pub use queue::CommandQueue;
pub use steps::{Step, StepLog};
