//! OpenCL-style error codes.

use std::error::Error;
use std::fmt;

use gpu_sim::SimError;

/// Errors reported by the OpenCL-flavoured runtime, mirroring the `CL_*`
/// status codes of the specification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClError {
    /// `CL_DEVICE_NOT_FOUND`: no device matched the query.
    DeviceNotFound,
    /// `CL_INVALID_DEVICE`: a device index was out of range for the context.
    InvalidDevice {
        /// The requested device index.
        index: usize,
        /// Number of devices in the context.
        available: usize,
    },
    /// `CL_INVALID_PROGRAM`: operation requires a built program.
    ProgramNotBuilt,
    /// `CL_INVALID_KERNEL_NAME`: the program contains no kernel of that name.
    InvalidKernelName {
        /// The requested kernel name.
        name: String,
    },
    /// `CL_INVALID_ARG_INDEX`: `set_arg` beyond the kernel's argument count.
    InvalidArgIndex {
        /// The offending index.
        index: usize,
        /// Number of arguments the kernel takes.
        arity: usize,
    },
    /// `CL_INVALID_ARG_VALUE`: an argument had the wrong type, or was unset
    /// at enqueue time.
    InvalidArgValue {
        /// Argument position.
        index: usize,
        /// What the kernel expected there.
        expected: String,
    },
    /// `CL_INVALID_WORK_GROUP_SIZE`: the local size does not divide the
    /// global size or exceeds the device capability.
    InvalidWorkGroupSize {
        /// Human-readable reason.
        reason: String,
    },
    /// `CL_MEM_OBJECT_ALLOCATION_FAILURE` or a simulator-level failure.
    Sim(SimError),
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::DeviceNotFound => write!(f, "no device matched the query"),
            ClError::InvalidDevice { index, available } => {
                write!(f, "device index {index} out of range ({available} devices)")
            }
            ClError::ProgramNotBuilt => write!(f, "program has not been built"),
            ClError::InvalidKernelName { name } => {
                write!(f, "program defines no kernel named {name:?}")
            }
            ClError::InvalidArgIndex { index, arity } => {
                write!(f, "argument index {index} out of range for kernel with {arity} arguments")
            }
            ClError::InvalidArgValue { index, expected } => {
                write!(f, "argument {index} invalid: expected {expected}")
            }
            ClError::InvalidWorkGroupSize { reason } => {
                write!(f, "invalid work-group size: {reason}")
            }
            ClError::Sim(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for ClError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ClError {
    fn from(e: SimError) -> Self {
        ClError::Sim(e)
    }
}

/// Convenience alias for runtime results.
pub type ClResult<T> = Result<T, ClError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_errors_convert_and_chain() {
        let sim = SimError::OutOfMemory {
            requested: 8,
            available: 4,
        };
        let cl: ClError = sim.clone().into();
        assert_eq!(cl, ClError::Sim(sim));
        assert!(Error::source(&cl).is_some());
    }

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = ClError::InvalidArgIndex { index: 9, arity: 4 };
        assert_eq!(
            e.to_string(),
            "argument index 9 out of range for kernel with 4 arguments"
        );
    }
}
