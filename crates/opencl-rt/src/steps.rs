//! The thirteen logical programming steps of an OpenCL program (Table I of
//! the paper), and the [`StepLog`] that records which of them a host program
//! actually performed.

use std::fmt;
use std::sync::Arc;

use std::sync::Mutex;

/// One logical OpenCL programming step (Table I, left column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Step {
    /// 1. Platform query.
    PlatformQuery,
    /// 2. Device query of a platform.
    DeviceQuery,
    /// 3. Create context for devices.
    CreateContext,
    /// 4. Create command queue for context.
    CreateCommandQueue,
    /// 5. Create memory objects.
    CreateMemObjects,
    /// 6. Create program object.
    CreateProgram,
    /// 7. Build a program.
    BuildProgram,
    /// 8. Create kernel(s).
    CreateKernel,
    /// 9. Set kernel arguments.
    SetKernelArgs,
    /// 10. Enqueue a kernel object for execution.
    EnqueueKernel,
    /// 11. Transfer data from device to host.
    TransferData,
    /// 12. Event handling.
    EventHandling,
    /// 13. Release resources.
    ReleaseResources,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Step::PlatformQuery => "platform query",
            Step::DeviceQuery => "device query of a platform",
            Step::CreateContext => "create context for devices",
            Step::CreateCommandQueue => "create command queue for context",
            Step::CreateMemObjects => "create memory objects",
            Step::CreateProgram => "create program object",
            Step::BuildProgram => "build a program",
            Step::CreateKernel => "create kernel(s)",
            Step::SetKernelArgs => "set kernel arguments",
            Step::EnqueueKernel => "enqueue a kernel object for execution",
            Step::TransferData => "transfer data between device and host",
            Step::EventHandling => "event handling",
            Step::ReleaseResources => "release resources",
        };
        f.write_str(s)
    }
}

/// Every step, in Table I order.
pub const ALL_STEPS: [Step; 13] = [
    Step::PlatformQuery,
    Step::DeviceQuery,
    Step::CreateContext,
    Step::CreateCommandQueue,
    Step::CreateMemObjects,
    Step::CreateProgram,
    Step::BuildProgram,
    Step::CreateKernel,
    Step::SetKernelArgs,
    Step::EnqueueKernel,
    Step::TransferData,
    Step::EventHandling,
    Step::ReleaseResources,
];

/// Records the distinct logical steps a host program performed.
///
/// Shared by every object created from one [`Context`](crate::Context); the
/// Table I comparison in the experiment harness reads it back.
#[derive(Debug, Default, Clone)]
pub struct StepLog {
    inner: Arc<Mutex<Vec<Step>>>,
}

impl StepLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `step` (idempotent: each distinct step is kept once, in first
    /// occurrence order).
    pub fn record(&self, step: Step) {
        let mut steps = self.inner.lock().unwrap();
        if !steps.contains(&step) {
            steps.push(step);
        }
    }

    /// The distinct steps recorded so far, in first-occurrence order.
    pub fn steps(&self) -> Vec<Step> {
        self.inner.lock().unwrap().clone()
    }

    /// Number of distinct steps recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_has_thirteen_opencl_steps() {
        assert_eq!(ALL_STEPS.len(), 13);
    }

    #[test]
    fn log_deduplicates_and_preserves_order() {
        let log = StepLog::new();
        log.record(Step::CreateContext);
        log.record(Step::CreateCommandQueue);
        log.record(Step::CreateContext);
        assert_eq!(log.steps(), vec![Step::CreateContext, Step::CreateCommandQueue]);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn clones_share_the_log() {
        let a = StepLog::new();
        let b = a.clone();
        b.record(Step::EnqueueKernel);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn steps_display_readably() {
        assert_eq!(Step::PlatformQuery.to_string(), "platform query");
        for s in ALL_STEPS {
            assert!(!s.to_string().is_empty());
        }
    }
}
