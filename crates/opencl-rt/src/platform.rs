//! Platform and device queries (Table I steps 1–2).

use gpu_sim::DeviceSpec;

use crate::error::{ClError, ClResult};

/// Filter for device queries, mirroring `CL_DEVICE_TYPE_*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceType {
    /// GPUs only (`CL_DEVICE_TYPE_GPU`).
    #[default]
    Gpu,
    /// CPUs only — the simulated platform exposes none.
    Cpu,
    /// Every device (`CL_DEVICE_TYPE_ALL`).
    All,
}

/// A device id returned by a platform query (`cl_device_id`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClDeviceId {
    spec: DeviceSpec,
}

impl ClDeviceId {
    /// Wrap a raw device specification (useful for tests with custom
    /// devices).
    pub fn from_spec(spec: DeviceSpec) -> Self {
        ClDeviceId { spec }
    }

    /// Device name (`CL_DEVICE_NAME`).
    pub fn name(&self) -> &str {
        self.spec.name
    }

    /// Device global memory size in bytes (`CL_DEVICE_GLOBAL_MEM_SIZE`).
    pub fn global_mem_size(&self) -> u64 {
        self.spec.global_mem_bytes
    }

    /// The underlying simulator specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }
}

/// An OpenCL platform (`cl_platform_id`).
///
/// The simulated environment exposes one platform, "ROCm-sim", carrying the
/// three GPUs of the paper's Table VII.
///
/// # Examples
///
/// ```
/// use opencl_rt::{DeviceType, Platform};
///
/// let platforms = Platform::query();
/// assert_eq!(platforms.len(), 1);
/// let gpus = platforms[0].devices(DeviceType::Gpu)?;
/// assert_eq!(gpus.len(), 3);
/// assert_eq!(gpus[2].name(), "MI100");
/// # Ok::<(), opencl_rt::ClError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    vendor: String,
    devices: Vec<ClDeviceId>,
}

impl Platform {
    /// Enumerate the available platforms (`clGetPlatformIDs`).
    pub fn query() -> Vec<Platform> {
        vec![Platform {
            name: "ROCm-sim 4.5.2".to_owned(),
            vendor: "gpu-sim".to_owned(),
            devices: DeviceSpec::paper_devices()
                .into_iter()
                .map(|spec| ClDeviceId { spec })
                .collect(),
        }]
    }

    /// Build a custom platform (for tests and non-paper devices).
    pub fn custom(name: impl Into<String>, specs: Vec<DeviceSpec>) -> Platform {
        Platform {
            name: name.into(),
            vendor: "gpu-sim".to_owned(),
            devices: specs.into_iter().map(|spec| ClDeviceId { spec }).collect(),
        }
    }

    /// Platform name (`CL_PLATFORM_NAME`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Platform vendor (`CL_PLATFORM_VENDOR`).
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// Query devices of a type (`clGetDeviceIDs`).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::DeviceNotFound`] when no device matches, exactly
    /// like `CL_DEVICE_NOT_FOUND`.
    pub fn devices(&self, kind: DeviceType) -> ClResult<Vec<ClDeviceId>> {
        let found: Vec<ClDeviceId> = match kind {
            DeviceType::Gpu | DeviceType::All => self.devices.clone(),
            DeviceType::Cpu => Vec::new(),
        };
        if found.is_empty() {
            return Err(ClError::DeviceNotFound);
        }
        Ok(found)
    }

    /// Find a device by name across all platforms (convenience).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::DeviceNotFound`] when no device has that name.
    pub fn find_device(name: &str) -> ClResult<ClDeviceId> {
        Self::query()
            .into_iter()
            .flat_map(|p| p.devices)
            .find(|d| d.name() == name)
            .ok_or(ClError::DeviceNotFound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_exposes_paper_devices() {
        let p = &Platform::query()[0];
        assert!(p.name().contains("ROCm"));
        let gpus = p.devices(DeviceType::Gpu).unwrap();
        let names: Vec<_> = gpus.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["Radeon VII", "MI60", "MI100"]);
        assert_eq!(gpus[0].global_mem_size(), 16 << 30);
    }

    #[test]
    fn cpu_query_reports_device_not_found() {
        let p = &Platform::query()[0];
        assert_eq!(p.devices(DeviceType::Cpu).unwrap_err(), ClError::DeviceNotFound);
    }

    #[test]
    fn find_device_by_name() {
        assert_eq!(Platform::find_device("MI60").unwrap().name(), "MI60");
        assert!(Platform::find_device("H100").is_err());
    }

    #[test]
    fn custom_platform() {
        let p = Platform::custom("test", vec![DeviceSpec::mi100()]);
        assert_eq!(p.devices(DeviceType::All).unwrap().len(), 1);
        assert_eq!(p.vendor(), "gpu-sim");
    }
}
