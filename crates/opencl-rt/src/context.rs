//! Contexts (Table I step 3).

use gpu_sim::{Device, ExecMode};

use crate::error::{ClError, ClResult};
use crate::platform::ClDeviceId;
use crate::steps::{Step, StepLog};

/// An OpenCL context: a group of devices plus the shared [`StepLog`].
///
/// Creating a context records steps 1–3 of Table I (obtaining the
/// `ClDeviceId`s implies the platform and device queries already happened).
///
/// # Examples
///
/// ```
/// use opencl_rt::{Context, DeviceType, Platform};
///
/// let devices = Platform::query()[0].devices(DeviceType::Gpu)?;
/// let ctx = Context::new(&devices)?;
/// assert_eq!(ctx.device_count(), 3);
/// # Ok::<(), opencl_rt::ClError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Context {
    devices: Vec<Device>,
    log: StepLog,
}

impl Context {
    /// Create a context for `devices` (`clCreateContext`).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::DeviceNotFound`] when `devices` is empty.
    pub fn new(devices: &[ClDeviceId]) -> ClResult<Context> {
        Self::with_mode(devices, ExecMode::default())
    }

    /// Create a context whose devices execute kernels with `mode`
    /// ([`ExecMode::Sequential`] for fully deterministic runs).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::DeviceNotFound`] when `devices` is empty.
    pub fn with_mode(devices: &[ClDeviceId], mode: ExecMode) -> ClResult<Context> {
        if devices.is_empty() {
            return Err(ClError::DeviceNotFound);
        }
        let log = StepLog::new();
        log.record(Step::PlatformQuery);
        log.record(Step::DeviceQuery);
        log.record(Step::CreateContext);
        Ok(Context {
            devices: devices
                .iter()
                .map(|d| Device::with_mode(d.spec().clone(), mode))
                .collect(),
            log,
        })
    }

    /// Number of devices in the context.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The simulator device at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidDevice`] when `index` is out of range.
    pub fn device(&self, index: usize) -> ClResult<&Device> {
        self.devices.get(index).ok_or(ClError::InvalidDevice {
            index,
            available: self.devices.len(),
        })
    }

    /// The shared programming-step log.
    pub fn step_log(&self) -> &StepLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{DeviceType, Platform};

    #[test]
    fn context_records_first_three_steps() {
        let devices = Platform::query()[0].devices(DeviceType::Gpu).unwrap();
        let ctx = Context::new(&devices).unwrap();
        assert_eq!(
            ctx.step_log().steps(),
            vec![Step::PlatformQuery, Step::DeviceQuery, Step::CreateContext]
        );
    }

    #[test]
    fn empty_device_list_is_rejected() {
        assert_eq!(Context::new(&[]).unwrap_err(), ClError::DeviceNotFound);
    }

    #[test]
    fn device_lookup_is_bounds_checked() {
        let devices = Platform::query()[0].devices(DeviceType::Gpu).unwrap();
        let ctx = Context::new(&devices[..1]).unwrap();
        assert!(ctx.device(0).is_ok());
        assert_eq!(
            ctx.device(1).unwrap_err(),
            ClError::InvalidDevice {
                index: 1,
                available: 1
            }
        );
    }
}
