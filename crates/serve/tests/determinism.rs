//! Arrival order must not change results: 200 jobs submitted in several
//! shuffled orders through a heterogeneous 4-device pool produce, job for
//! job, the same bytes as the serial OpenCL pipeline.

use std::collections::HashMap;
use std::time::Duration;

use cas_offinder::pipeline::{ocl, PipelineConfig};
use cas_offinder::{OffTarget, SearchInput};
use casoff_serve::{JobSpec, Placement, Service, ServiceConfig, TenantConfig, TenantId};
use genome::rng::Xoshiro256;
use genome::Assembly;
use gpu_sim::{DeviceSpec, ExecMode};

const CHUNK_SIZE: usize = 512;

fn assembly() -> Assembly {
    genome::synth::hg38_mini(0.001)
}

/// Ten distinct specs, duplicated to 200 jobs. Two PAM patterns so the
/// coalescer has both same-pattern and cross-pattern work.
fn distinct_specs() -> Vec<JobSpec> {
    let mut rng = Xoshiro256::seed_from_u64(0x0DE7);
    let patterns: [&[u8]; 2] = [b"NNNNNNNNNRG", b"NNNNNNNNNGG"];
    (0..10)
        .map(|i| {
            let mut guide: Vec<u8> = (0..8)
                .map(|_| *rng.choose(b"ACGT").unwrap())
                .collect();
            guide.extend_from_slice(b"NNN");
            JobSpec::new(
                "hg38-mini",
                patterns[i % 2].to_vec(),
                guide,
                3 + (i as u16 % 2),
            )
        })
        .collect()
}

/// The exception-dense variant of [`distinct_specs`]: same guides, aimed
/// at the soft-masked assembly so every dense chunk rides the 4-bit path.
fn masked_specs() -> Vec<JobSpec> {
    distinct_specs()
        .into_iter()
        .map(|mut s| {
            s.assembly = "hg38-masked".into();
            s
        })
        .collect()
}

fn serial_ocl(assembly: &Assembly, spec: &JobSpec) -> Vec<OffTarget> {
    let text = format!(
        "{}\n{}\n{} {}\n",
        spec.assembly,
        std::str::from_utf8(&spec.pattern).unwrap(),
        std::str::from_utf8(&spec.guide).unwrap(),
        spec.max_mismatches
    );
    let input = SearchInput::parse(&text).unwrap();
    let config = PipelineConfig::new(DeviceSpec::mi100())
        .chunk_size(CHUNK_SIZE)
        .exec_mode(ExecMode::Sequential);
    ocl::run(assembly, &input, &config).unwrap().offtargets
}

fn submit_with_backoff(service: &Service, spec: JobSpec) -> u64 {
    loop {
        match service.submit(spec.clone()) {
            Ok(id) => return id,
            Err(casoff_serve::SubmitError::Shed { .. }) => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(err) => panic!("unexpected rejection: {err}"),
        }
    }
}

#[test]
fn shuffled_arrival_orders_reproduce_the_serial_pipeline() {
    let specs = distinct_specs();
    let oracle: Vec<Vec<OffTarget>> = {
        let asm = assembly();
        specs.iter().map(|s| serial_ocl(&asm, s)).collect()
    };
    assert!(
        oracle.iter().any(|o| !o.is_empty()),
        "fixture must produce hits somewhere"
    );

    // 200 jobs: every distinct spec twenty times.
    let jobs: Vec<usize> = (0..200).map(|i| i % specs.len()).collect();

    for order_seed in [0x0001u64, 0xBEEF, 0x5EED5] {
        let mut order = jobs.clone();
        Xoshiro256::seed_from_u64(order_seed).shuffle(&mut order);

        let mut config = ServiceConfig::paper_pool();
        config.chunk_size = CHUNK_SIZE;
        // Small on purpose: ~32 jobs' worth of cost, exercises backpressure.
        config.queue_cost_limit = 250_000;
        config.cache_bytes = 16 * 1024;
        // Result dedup off so all 200 jobs really flow through the batcher
        // and device pool; chunk affinity stays on at its default budget.
        config.result_cache_bytes = 0;
        assert_eq!(config.devices.len(), 4, "the pool the issue asks for");
        let service = Service::start(config, vec![assembly()]);

        let ids: Vec<(u64, usize)> = order
            .iter()
            .map(|&spec_index| {
                (
                    submit_with_backoff(&service, specs[spec_index].clone()),
                    spec_index,
                )
            })
            .collect();
        let mut results: HashMap<u64, Vec<OffTarget>> = ids
            .iter()
            .map(|&(id, _)| (id, service.wait(id).unwrap()))
            .collect();
        for (id, spec_index) in ids {
            assert_eq!(
                results.remove(&id).unwrap(),
                oracle[spec_index],
                "order seed {order_seed:#x}, job {id} (spec {spec_index})"
            );
        }

        let report = service.metrics();
        assert_eq!(report.jobs_admitted, 200);
        assert_eq!(report.jobs_completed, 200);
        assert!(
            report.coalescing_ratio() > 1.5,
            "batches should coalesce: {report}"
        );
        assert!(
            report.cache_hit_rate() > 0.5,
            "repeat chunks should hit the cache: {report}"
        );
        service.shutdown();
    }
}

/// Both reuse layers on at deliberately hostile settings — a residency
/// budget of two chunks (constant evictions and re-uploads under a
/// shuffled arrival order) and a live result store serving nineteen of
/// every twenty duplicates without compute — must still hand every job
/// bytes identical to the serial pipeline.
#[test]
fn result_dedup_and_forced_evictions_stay_byte_identical() {
    let specs = distinct_specs();
    let oracle: Vec<Vec<OffTarget>> = {
        let asm = assembly();
        specs.iter().map(|s| serial_ocl(&asm, s)).collect()
    };

    let mut order: Vec<usize> = (0..200).map(|i| i % specs.len()).collect();
    Xoshiro256::seed_from_u64(0xCAC4E).shuffle(&mut order);

    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = CHUNK_SIZE;
    config.queue_cost_limit = 250_000;
    config.cache_bytes = 16 * 1024;
    config.max_batch = 2;
    config.resident_chunks = 2;
    config.result_cache_bytes = 64 * 1024;
    let service = Service::start(config, vec![assembly()]);

    let ids: Vec<(u64, usize)> = order
        .iter()
        .map(|&spec_index| {
            (
                submit_with_backoff(&service, specs[spec_index].clone()),
                spec_index,
            )
        })
        .collect();
    let mut results: HashMap<u64, Vec<OffTarget>> = ids
        .iter()
        .map(|&(id, _)| (id, service.wait(id).unwrap()))
        .collect();
    for (id, spec_index) in ids {
        assert_eq!(
            results.remove(&id).unwrap(),
            oracle[spec_index],
            "job {id} (spec {spec_index})"
        );
    }

    let report = service.metrics();
    assert_eq!(report.jobs_completed, 200);
    assert_eq!(
        report.results.misses,
        specs.len() as u64,
        "each distinct spec computes exactly once: {report}"
    );
    assert_eq!(
        report.results.hits + report.results.merges,
        (200 - specs.len()) as u64,
        "every duplicate is served from the store: {report}"
    );
    service.shutdown();
}

/// The tentpole guarantee on an exception-dense assembly: with the
/// adaptive cache default, every dense chunk is served by the 4-bit
/// nibble comparer — zero batches fall back to the char path — and the
/// results stay byte-identical to the serial char-comparer pipeline even
/// while a two-chunk residency budget forces constant evictions and
/// re-uploads of the nibble payloads.
#[test]
fn masked_chunks_ride_the_nibble_path_and_stay_byte_identical() {
    let specs = masked_specs();
    let asm = genome::synth::hg38_masked_mini(0.001);
    let oracle: Vec<Vec<OffTarget>> = specs.iter().map(|s| serial_ocl(&asm, s)).collect();
    assert!(
        oracle.iter().any(|o| !o.is_empty()),
        "fixture must produce hits somewhere"
    );

    let mut order: Vec<usize> = (0..120).map(|i| i % specs.len()).collect();
    Xoshiro256::seed_from_u64(0x4B17).shuffle(&mut order);

    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = CHUNK_SIZE;
    config.queue_cost_limit = 250_000;
    config.cache_bytes = 16 * 1024;
    config.max_batch = 2;
    config.resident_chunks = 2;
    // Dedup off so all 120 jobs exercise the nibble runners.
    config.result_cache_bytes = 0;
    let service = Service::start(config, vec![asm]);

    let ids: Vec<(u64, usize)> = order
        .iter()
        .map(|&spec_index| {
            (
                submit_with_backoff(&service, specs[spec_index].clone()),
                spec_index,
            )
        })
        .collect();
    let mut results: HashMap<u64, Vec<OffTarget>> = ids
        .iter()
        .map(|&(id, _)| (id, service.wait(id).unwrap()))
        .collect();
    for (id, spec_index) in ids {
        assert_eq!(
            results.remove(&id).unwrap(),
            oracle[spec_index],
            "job {id} (spec {spec_index})"
        );
    }

    let report = service.metrics();
    assert_eq!(report.jobs_completed, 120);
    assert_eq!(
        report.comparer_char_batches, 0,
        "no batch may fall back to the char comparer: {report}"
    );
    assert!(
        report.comparer_4bit_batches > 0,
        "dense chunks must select the nibble comparer: {report}"
    );
    service.shutdown();
}

/// Fleet changes under planned placement must migrate only the chunks
/// whose owner actually changed — removing a device mid-workload moves
/// its partition (plus any boundary shifts) and nothing else, re-adding
/// it restores the original cuts — and the results of every job, before,
/// during and after the changes, stay byte-identical to the serial
/// pipeline.
#[test]
fn mid_workload_fleet_changes_migrate_minimally_and_stay_byte_identical() {
    let specs = distinct_specs();
    let oracle: Vec<Vec<OffTarget>> = {
        let asm = assembly();
        specs.iter().map(|s| serial_ocl(&asm, s)).collect()
    };

    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = CHUNK_SIZE;
    config.placement = Placement::Planned;
    config.queue_cost_limit = 250_000;
    config.cache_bytes = 16 * 1024;
    config.result_cache_bytes = 0;
    let service = Service::start(config, vec![assembly()]);
    let n = service
        .plan()
        .expect("planned placement installs a plan")
        .chunk_count("hg38-mini")
        .expect("the served assembly is registered");

    let order: Vec<usize> = (0..120).map(|i| i % specs.len()).collect();
    let original = service.plan().unwrap();
    let mut ids: Vec<(u64, usize)> = Vec::new();
    let mut total_migrated = 0usize;
    for (k, &spec_index) in order.iter().enumerate() {
        // Shrink the fleet a third of the way in, grow it back at two
        // thirds — both while batches are in flight.
        if k == 40 || k == 80 {
            let before = service.plan().unwrap();
            let migrated = service.set_device_active(3, k == 80);
            let after = service.plan().unwrap();
            let by_hand = (0..n)
                .filter(|&c| before.owner_of("hg38-mini", c) != after.owner_of("hg38-mini", c))
                .count();
            assert_eq!(migrated, by_hand, "only owner-changed chunks migrate");
            assert!(
                migrated > 0 && migrated < n,
                "a fleet change reassigns a strict subset: {migrated}/{n}"
            );
            total_migrated += migrated;
        }
        ids.push((
            submit_with_backoff(&service, specs[spec_index].clone()),
            spec_index,
        ));
    }
    // Re-adding device 3 with the same weight restores the original cuts.
    assert_eq!(service.plan().unwrap().migrated_from(&original), 0);

    let mut results: HashMap<u64, Vec<OffTarget>> = ids
        .iter()
        .map(|&(id, _)| (id, service.wait(id).unwrap()))
        .collect();
    for (id, spec_index) in ids {
        assert_eq!(
            results.remove(&id).unwrap(),
            oracle[spec_index],
            "job {id} (spec {spec_index})"
        );
    }
    let report = service.metrics();
    assert_eq!(report.jobs_completed, 120);
    assert!(report.planned_hits > 0, "{report}");
    assert_eq!(
        report.migrated_chunks, total_migrated as u64,
        "the metric sums exactly the per-change migrations: {report}"
    );
    service.shutdown();
}

/// QoS must never leak into results: a fixed 3-tenant overload mix (weights
/// 4/2/1 on a queue budget far smaller than the offered load, so jobs
/// really shed and retry) produces, run after run, results byte-identical
/// to the serial pipeline — and every shed is attributable to an over-quota
/// tenant, never to global budget pressure, because the derived quotas sum
/// to the budget and bind first.
#[test]
fn tenant_overload_shedding_is_deterministic_and_byte_identical() {
    let specs = distinct_specs();
    let oracle: Vec<Vec<OffTarget>> = {
        let asm = assembly();
        specs.iter().map(|s| serial_ocl(&asm, s)).collect()
    };

    // Fixed mix: job i belongs to tenant 1/2/3 cyclically, spec i mod 10.
    let jobs: Vec<(usize, TenantId)> = (0..90)
        .map(|i| (i % specs.len(), TenantId(1 + (i % 3) as u32)))
        .collect();

    let run = || {
        let mut config = ServiceConfig::paper_pool();
        config.chunk_size = CHUNK_SIZE;
        // ~8 jobs' worth of cost against 90 offered jobs: heavy overload.
        config.queue_cost_limit = 64_000;
        config.cache_bytes = 16 * 1024;
        config.result_cache_bytes = 0;
        config.tenants = vec![
            TenantConfig::weighted(TenantId(1), 4),
            TenantConfig::weighted(TenantId(2), 2),
            TenantConfig::weighted(TenantId(3), 1),
        ];
        let service = Service::start(config, vec![assembly()]);
        let ids: Vec<(u64, usize)> = jobs
            .iter()
            .map(|&(spec_index, tenant)| {
                let spec = specs[spec_index].clone().for_tenant(tenant);
                (submit_with_backoff(&service, spec), spec_index)
            })
            .collect();
        let results: Vec<Vec<OffTarget>> = ids
            .iter()
            .map(|&(id, _)| service.wait(id).unwrap())
            .collect();
        let report = service.metrics();
        assert_eq!(report.jobs_completed, 90);
        assert_eq!(
            report.sheds_budget, 0,
            "derived quotas must bind before the budget: {report}"
        );
        service.shutdown();
        (ids, results, report.jobs_shed > 0)
    };

    let (ids_a, results_a, shed_a) = run();
    let (_ids_b, results_b, _) = run();
    assert!(shed_a, "the overload mix must actually shed");
    assert_eq!(results_a, results_b, "byte-identical across runs");
    for ((id, spec_index), got) in ids_a.iter().zip(&results_a) {
        assert_eq!(got, &oracle[*spec_index], "job {id} (spec {spec_index})");
    }
}
