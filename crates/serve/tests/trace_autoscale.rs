//! The elastic-pool guarantees: a replayed trace produces byte-identical
//! result digests whether the pool is fixed or scaled under it, a
//! scale-down drains the retiring device without losing or duplicating a
//! single job, and an idle autoscaler actually retires capacity.

use std::time::Duration;

use cas_offinder::pipeline::{ocl, PipelineConfig};
use cas_offinder::{OffTarget, SearchInput};
use casoff_serve::trace::{fold_results, schedule_digest, RESULT_DIGEST_SEED};
use casoff_serve::{
    ArrivalShape, AutoscaleConfig, Autoscaler, HotSpot, JobSpec, PhaseSpec, Placement, Service,
    ServiceConfig, TenantId, TraceSpec,
};
use genome::rng::Xoshiro256;
use genome::Assembly;
use gpu_sim::{DeviceSpec, ExecMode};

const CHUNK_SIZE: usize = 512;

fn assembly() -> Assembly {
    genome::synth::hg38_mini(0.001)
}

/// Ten distinct specs over two PAM patterns — the trace's job catalog.
fn catalog() -> Vec<JobSpec> {
    let mut rng = Xoshiro256::seed_from_u64(0x0DE7);
    let patterns: [&[u8]; 2] = [b"NNNNNNNNNRG", b"NNNNNNNNNGG"];
    (0..10)
        .map(|i| {
            let mut guide: Vec<u8> = (0..8).map(|_| *rng.choose(b"ACGT").unwrap()).collect();
            guide.extend_from_slice(b"NNN");
            JobSpec::new("hg38-mini", patterns[i % 2].to_vec(), guide, 3 + (i as u16 % 2))
        })
        .collect()
}

fn serial_ocl(assembly: &Assembly, spec: &JobSpec) -> Vec<OffTarget> {
    let text = format!(
        "{}\n{}\n{} {}\n",
        spec.assembly,
        std::str::from_utf8(&spec.pattern).unwrap(),
        std::str::from_utf8(&spec.guide).unwrap(),
        spec.max_mismatches
    );
    let input = SearchInput::parse(&text).unwrap();
    let config = PipelineConfig::new(DeviceSpec::mi100())
        .chunk_size(CHUNK_SIZE)
        .exec_mode(ExecMode::Sequential);
    ocl::run(assembly, &input, &config).unwrap().offtargets
}

fn submit_with_backoff(service: &Service, spec: JobSpec) -> u64 {
    loop {
        match service.submit(spec.clone()) {
            Ok(id) => return id,
            Err(casoff_serve::SubmitError::Shed { .. }) => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(err) => panic!("unexpected rejection: {err}"),
        }
    }
}

fn trace() -> TraceSpec {
    TraceSpec {
        seed: 0x7E5CA1E,
        phases: vec![
            PhaseSpec {
                duration_s: 1.0,
                shape: ArrivalShape::Diurnal {
                    base_rate_per_s: 60.0,
                    amplitude: 0.5,
                    period_s: 1.0,
                },
                tenants: vec![(TenantId(1), 2), (TenantId(2), 1)],
                hot_spot: None,
            },
            PhaseSpec {
                duration_s: 1.0,
                shape: ArrivalShape::Bursty {
                    on_rate_per_s: 150.0,
                    period_s: 0.5,
                    duty: 0.5,
                },
                tenants: vec![(TenantId(2), 1), (TenantId(3), 1)],
                hot_spot: Some(HotSpot {
                    fraction: 0.7,
                    span: 3,
                }),
            },
        ],
    }
}

fn pool_config(placement: Placement) -> ServiceConfig {
    let mut config = ServiceConfig::paper_pool();
    config.chunk_size = CHUNK_SIZE;
    config.placement = placement;
    config.cache_bytes = 16 * 1024;
    // Every submission must really compute: digest equality has to come
    // from deterministic execution, not from one run's cache feeding the
    // other run's answers.
    config.result_cache_bytes = 0;
    config.candidate_cache_bytes = 0;
    config
}

/// The tentpole determinism claim, end to end: the same seeded
/// `TraceSpec` generates byte-identical schedules, and replaying that
/// schedule against a fixed 4-device pool and against a pool scaled
/// down and back up mid-trace folds every job's records into the same
/// digest — which also matches the serial-pipeline oracle.
#[test]
fn trace_replay_digests_match_fixed_vs_scaled_pools() {
    let spec = trace();
    let events = spec.generate(10);
    assert_eq!(
        schedule_digest(&events),
        schedule_digest(&spec.generate(10)),
        "the generator must replay byte-identically"
    );
    assert!(events.len() > 50, "fixture needs real traffic, got {}", events.len());

    let specs = catalog();
    let oracle_digest = {
        let asm = assembly();
        events.iter().fold(RESULT_DIGEST_SEED, |d, ev| {
            fold_results(d, &serial_ocl(&asm, &specs[ev.spec_index]))
        })
    };

    // Replay 1: the peak-sized fixed pool.
    let fixed = Service::start(pool_config(Placement::Planned), vec![assembly()]);
    let ids: Vec<u64> = events
        .iter()
        .map(|ev| {
            submit_with_backoff(&fixed, specs[ev.spec_index].clone().for_tenant(ev.tenant))
        })
        .collect();
    let fixed_digest = ids.iter().fold(RESULT_DIGEST_SEED, |d, &id| {
        fold_results(d, &fixed.wait(id).unwrap())
    });
    fixed.shutdown();

    // Replay 2: same schedule, elastic fleet — two devices retired a
    // third of the way in, one re-activated at two thirds, all while
    // batches are in flight.
    let scaled = Service::start(pool_config(Placement::Planned), vec![assembly()]);
    let (third, two_thirds) = (events.len() / 3, 2 * events.len() / 3);
    let mut ids: Vec<u64> = Vec::with_capacity(events.len());
    for (k, ev) in events.iter().enumerate() {
        if k == third {
            scaled.set_device_active(3, false);
            scaled.set_device_active(1, false);
        }
        if k == two_thirds {
            scaled.set_device_active(3, true);
        }
        ids.push(submit_with_backoff(
            &scaled,
            specs[ev.spec_index].clone().for_tenant(ev.tenant),
        ));
    }
    let scaled_digest = ids.iter().fold(RESULT_DIGEST_SEED, |d, &id| {
        fold_results(d, &scaled.wait(id).unwrap())
    });
    let report = scaled.metrics();
    assert_eq!(report.jobs_completed, events.len() as u64);
    assert!(report.migrated_chunks > 0, "scale events must replan: {report}");
    scaled.shutdown();

    assert_eq!(fixed_digest, oracle_digest, "fixed pool vs serial oracle");
    assert_eq!(scaled_digest, oracle_digest, "scaled pool vs serial oracle");
}

/// Drain-before-retire: a device deactivated with batches still queued
/// on it finishes that work before leaving — every admitted job
/// completes exactly once with oracle-identical bytes, none is lost and
/// none re-runs, and the survivor fleet keeps serving afterwards.
#[test]
fn scale_down_drains_the_retiring_device_without_losing_jobs() {
    let specs = catalog();
    let oracle: Vec<Vec<OffTarget>> = {
        let asm = assembly();
        specs.iter().map(|s| serial_ocl(&asm, s)).collect()
    };

    let service = Service::start(pool_config(Placement::Planned), vec![assembly()]);
    // Load the whole fleet first so the retiring device has in-flight
    // and queued batches when it leaves.
    let first: Vec<(u64, usize)> = (0..60)
        .map(|i| {
            let spec_index = i % specs.len();
            (
                submit_with_backoff(&service, specs[spec_index].clone()),
                spec_index,
            )
        })
        .collect();
    service.set_device_active(3, false);
    let after: Vec<(u64, usize)> = (0..60)
        .map(|i| {
            let spec_index = i % specs.len();
            (
                submit_with_backoff(&service, specs[spec_index].clone()),
                spec_index,
            )
        })
        .collect();

    for &(id, spec_index) in first.iter().chain(&after) {
        assert_eq!(
            service.wait(id).unwrap(),
            oracle[spec_index],
            "job {id} (spec {spec_index})"
        );
    }
    let report = service.metrics();
    assert_eq!(report.jobs_admitted, 120, "{report}");
    assert_eq!(report.jobs_completed, 120, "every admitted job completes exactly once");
    let active = service.active_devices();
    assert!(!active[3] && active.iter().filter(|&&a| a).count() == 3);
    // The retired device took no work placed after the retirement: its
    // queue is empty and stays empty.
    assert_eq!(service.device_queue_depths()[3], 0, "retired device fully drained");
    service.shutdown();
}

/// Watch-loop smoke: over an idle (then lightly loaded) service the
/// autoscaler retires capacity down to the floor, reports the events
/// with their replan sizes, and the shrunk fleet still serves correctly.
#[test]
fn idle_autoscaler_retires_to_the_floor_and_keeps_serving() {
    let specs = catalog();
    let service = std::sync::Arc::new(Service::start(
        pool_config(Placement::Planned),
        vec![assembly()],
    ));
    let scaler = Autoscaler::watch(
        std::sync::Arc::clone(&service),
        AutoscaleConfig {
            slo: Duration::from_millis(50),
            window: Duration::from_millis(20),
            samples_per_window: 2,
            scale_up_windows: 2,
            scale_down_windows: 2,
            low_utilization: 0.5,
            headroom: 0.5,
            min_devices: 1,
            max_devices: 4,
        },
    );
    // Idle long enough for three retirement decisions (2 windows each).
    std::thread::sleep(Duration::from_millis(400));
    let report = scaler.stop();
    assert_eq!(report.scale_downs(), 3, "4-device pool retires to the floor");
    assert_eq!(report.scale_ups(), 0);
    assert_eq!(report.min_active, 1);
    assert!(report.device_seconds > 0.0);
    assert!(report.windows >= 6, "got {} windows", report.windows);
    assert!(
        report.migrated_chunks() > 0,
        "planned placement replans on every retirement"
    );
    let mut actives: Vec<usize> = report.events.iter().map(|e| e.active_after).collect();
    actives.sort_unstable();
    assert_eq!(actives, vec![1, 2, 3], "one device per event, in order");
    assert_eq!(service.active_devices().iter().filter(|&&a| a).count(), 1);

    // The floor fleet still serves byte-identical results.
    let asm = assembly();
    for spec in &specs {
        let id = submit_with_backoff(&service, spec.clone());
        assert_eq!(service.wait(id).unwrap(), serial_ocl(&asm, spec));
    }
    std::sync::Arc::into_inner(service)
        .expect("stop() joined the watcher, so this is the last handle")
        .shutdown();
}
