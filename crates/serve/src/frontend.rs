//! The non-blocking completion front end: tickets, `poll`/`try_wait`,
//! and completion callbacks.
//!
//! A network layer multiplexing thousands of tenants cannot afford one
//! parked thread per outstanding job, so completion is exposed three ways,
//! all std-only and runtime-agnostic:
//!
//! - **Polling**: [`crate::Service::poll`] returns [`Poll::Pending`] or
//!   [`Poll::Ready`] without ever blocking; [`crate::Service::try_wait`]
//!   is the `Option`-shaped spelling of the same thing.
//! - **Callbacks**: [`crate::Service::on_complete`] registers a `FnOnce`
//!   waker invoked from the completion path (outside every service lock),
//!   so an async executor can wake the right task, a reactor can write the
//!   response, or a test can count completions — without any runtime
//!   dependency baked into the service.
//! - **Blocking**: [`crate::Service::wait`] is now a thin wrapper that
//!   polls under the completion condvar; the service counts how many
//!   waits actually parked a thread, so a non-blocking harness can assert
//!   it never blocked.
//!
//! Collection is single-shot and typed: the first successful `poll`/`wait`
//! takes the records; afterwards the job id is a bounded *tombstone*, so
//! "already collected" ([`WaitError::Collected`]) stays distinguishable
//! from "never admitted" ([`WaitError::UnknownJob`]) instead of both
//! collapsing to `None`.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use cas_offinder::OffTarget;

use crate::job::JobId;
use crate::results::CanonicalSpec;
use crate::tenant::TenantId;

/// Non-blocking completion status of a job.
#[derive(Debug, PartialEq, Eq)]
pub enum Poll {
    /// The job finished; its records are handed over exactly once — the
    /// job id is a tombstone afterwards.
    Ready(Vec<OffTarget>),
    /// The job is admitted (or merged onto an in-flight duplicate) and
    /// still computing.
    Pending,
}

/// Why a `poll`/`wait` could not produce results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The id was never admitted by this service (or its tombstone has
    /// aged out of the bounded collected-id window).
    UnknownJob,
    /// The job completed and its records were already collected by an
    /// earlier `poll`/`wait`; results are handed over exactly once.
    Collected,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::UnknownJob => write!(f, "job id was never admitted"),
            WaitError::Collected => write!(f, "job results were already collected"),
        }
    }
}

impl std::error::Error for WaitError {}

/// Receipt for an admitted job: everything a submitter needs to poll for
/// completion and to back off intelligently when later submissions shed.
#[derive(Debug, Clone)]
pub struct Ticket {
    /// The admitted job's id — what [`crate::Service::poll`] takes.
    pub id: JobId,
    /// The tenant the job was charged to.
    pub tenant: TenantId,
    /// Admission cost in scan-position units: what the job holds of its
    /// tenant's in-flight quota until completion.
    pub cost: u64,
    /// The completion SLO the job was admitted under, if any.
    pub deadline: Option<Duration>,
}

/// A completion callback: invoked exactly once, from the completion path,
/// outside every service lock.
pub(crate) type CompletionCallback = Box<dyn FnOnce(JobId) + Send>;

/// A registered job's progress: how many chunk-batch memberships are still
/// due, the records accumulated so far, and the QoS bookkeeping settled at
/// completion.
pub(crate) struct JobEntry {
    /// `None` until the batcher has planned the job's chunk tasks.
    pub remaining: Option<usize>,
    pub offtargets: Vec<OffTarget>,
    /// Bulge jobs fold several variant searches into one record set; exact
    /// duplicates across variants are removed at completion.
    pub dedup: bool,
    pub done: bool,
    /// Set on result-store compute leaders only: the digest + canonical
    /// spec this job must publish to the result store when it finishes,
    /// fulfilling any merged followers.
    pub publish: Option<(u64, CanonicalSpec)>,
    /// The tenant charged for the job.
    pub tenant: TenantId,
    /// Admission cost, in scan-position units.
    pub cost: u64,
    /// Whether the job actually entered the fair queue (and thus holds
    /// tenant quota that completion must release). Result-cache hits and
    /// single-flight merges never do.
    pub charged: bool,
    /// The completion SLO, if any; checked against the measured latency.
    pub deadline: Option<Duration>,
    /// When the job was registered; completion latency is measured from
    /// here.
    pub submitted: Instant,
    /// Completion waker, if one was registered before the job finished.
    pub callback: Option<CompletionCallback>,
}

impl JobEntry {
    /// A fresh pending entry for an admitted (or about-to-be-admitted)
    /// job.
    pub fn new(
        tenant: TenantId,
        cost: u64,
        deadline: Option<Duration>,
        dedup: bool,
        publish: Option<(u64, CanonicalSpec)>,
    ) -> Self {
        JobEntry {
            remaining: None,
            offtargets: Vec::new(),
            dedup,
            done: false,
            publish,
            tenant,
            cost,
            charged: true,
            deadline,
            submitted: Instant::now(),
            callback: None,
        }
    }

    /// Mark the entry done and extract the side effects the caller must
    /// settle *after* releasing the jobs lock: quota release, per-tenant
    /// accounting, and the registered callback.
    pub fn finish(&mut self, id: JobId) -> Completion {
        self.done = true;
        let latency = self.submitted.elapsed();
        Completion {
            id,
            tenant: self.tenant,
            cost: self.cost,
            charged: self.charged,
            latency,
            deadline_missed: self.deadline.is_some_and(|d| latency > d),
            callback: self.callback.take(),
        }
    }
}

/// The out-of-lock side effects of one job completing. Produced by
/// [`JobEntry::finish`] under the jobs lock, consumed by the service's
/// settle path after dropping it — so callbacks and quota releases never
/// run under the completion mutex.
pub(crate) struct Completion {
    pub id: JobId,
    pub tenant: TenantId,
    pub cost: u64,
    pub charged: bool,
    pub latency: Duration,
    pub deadline_missed: bool,
    pub callback: Option<CompletionCallback>,
}

/// Collected job ids are remembered in a bounded FIFO window so a repeat
/// collect reports [`WaitError::Collected`] instead of `UnknownJob`.
/// Beyond the window the distinction ages out — the memory stays bounded
/// no matter how many jobs a service serves.
const TOMBSTONE_WINDOW: usize = 4096;

#[derive(Default)]
struct Tombstones {
    set: HashSet<JobId>,
    order: VecDeque<JobId>,
}

impl Tombstones {
    fn insert(&mut self, id: JobId) {
        if self.set.insert(id) {
            self.order.push_back(id);
            while self.order.len() > TOMBSTONE_WINDOW {
                let evicted = self.order.pop_front().expect("window is non-empty");
                self.set.remove(&evicted);
            }
        }
    }

    fn contains(&self, id: JobId) -> bool {
        self.set.contains(&id)
    }
}

/// Completion tracking for every in-flight job: the entry map the batcher
/// and workers fold records into, the condvar blocking waiters park on,
/// and the collected-id tombstones.
///
/// Lock order: `jobs` before `tombstones`, never the reverse.
pub(crate) struct CompletionHub {
    pub jobs: Mutex<HashMap<JobId, JobEntry>>,
    pub done: Condvar,
    tombstones: Mutex<Tombstones>,
}

impl CompletionHub {
    pub fn new() -> Self {
        CompletionHub {
            jobs: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            tombstones: Mutex::new(Tombstones::default()),
        }
    }

    /// Register a pending entry under `id`.
    pub fn register(&self, id: JobId, entry: JobEntry) {
        self.jobs.lock().unwrap().insert(id, entry);
    }

    /// Remove a registration that never got admitted (submission failed).
    pub fn discard(&self, id: JobId) {
        self.jobs.lock().unwrap().remove(&id);
    }

    /// Non-blocking completion check; `Ready` takes the records and
    /// tombstones the id.
    pub fn poll(&self, id: JobId) -> Result<Poll, WaitError> {
        let mut jobs = self.jobs.lock().unwrap();
        match jobs.get(&id) {
            None => Err(self.absent_error(id)),
            Some(entry) if entry.done => {
                let entry = jobs.remove(&id).expect("entry exists");
                self.tombstones.lock().unwrap().insert(id);
                Ok(Poll::Ready(entry.offtargets))
            }
            Some(_) => Ok(Poll::Pending),
        }
    }

    /// Block until `id` completes and take its records; `on_block` fires
    /// once if the call actually parks (so harnesses can count threads
    /// that really blocked in `wait`).
    pub fn wait(&self, id: JobId, on_block: impl FnOnce()) -> Result<Vec<OffTarget>, WaitError> {
        let mut jobs = self.jobs.lock().unwrap();
        let mut on_block = Some(on_block);
        loop {
            match jobs.get(&id) {
                None => return Err(self.absent_error(id)),
                Some(entry) if entry.done => {
                    let entry = jobs.remove(&id).expect("entry exists");
                    self.tombstones.lock().unwrap().insert(id);
                    return Ok(entry.offtargets);
                }
                Some(_) => {
                    if let Some(f) = on_block.take() {
                        f();
                    }
                    jobs = self.done.wait(jobs).unwrap();
                }
            }
        }
    }

    /// Register `callback` to run when `id` completes; runs immediately
    /// (outside the lock) if the job already finished but was not yet
    /// collected. A later registration replaces an earlier one.
    pub fn on_complete(&self, id: JobId, callback: CompletionCallback) -> Result<(), WaitError> {
        let mut jobs = self.jobs.lock().unwrap();
        match jobs.get_mut(&id) {
            None => Err(self.absent_error(id)),
            Some(entry) if entry.done => {
                drop(jobs);
                callback(id);
                Ok(())
            }
            Some(entry) => {
                entry.callback = Some(callback);
                Ok(())
            }
        }
    }

    /// The typed error for an id with no live entry. Caller holds the
    /// `jobs` lock (lock order: `jobs` → `tombstones`).
    fn absent_error(&self, id: JobId) -> WaitError {
        if self.tombstones.lock().unwrap().contains(id) {
            WaitError::Collected
        } else {
            WaitError::UnknownJob
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn entry() -> JobEntry {
        JobEntry::new(TenantId(1), 10, None, false, None)
    }

    #[test]
    fn poll_distinguishes_pending_ready_collected_and_unknown() {
        let hub = CompletionHub::new();
        assert_eq!(hub.poll(7), Err(WaitError::UnknownJob));
        hub.register(7, entry());
        assert_eq!(hub.poll(7), Ok(Poll::Pending));
        let completion = {
            let mut jobs = hub.jobs.lock().unwrap();
            jobs.get_mut(&7).unwrap().finish(7)
        };
        assert_eq!(completion.id, 7);
        assert!(completion.charged);
        assert_eq!(hub.poll(7), Ok(Poll::Ready(Vec::new())));
        assert_eq!(hub.poll(7), Err(WaitError::Collected), "single-shot");
        assert_eq!(hub.poll(8), Err(WaitError::UnknownJob));
    }

    #[test]
    fn callbacks_fire_on_finish_or_immediately_when_already_done() {
        let hub = CompletionHub::new();
        let fired = Arc::new(AtomicU64::new(0));
        hub.register(1, entry());
        let f = Arc::clone(&fired);
        hub.on_complete(1, Box::new(move |_| { f.fetch_add(1, Ordering::SeqCst); }))
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 0, "not fired while pending");
        let completion = {
            let mut jobs = hub.jobs.lock().unwrap();
            jobs.get_mut(&1).unwrap().finish(1)
        };
        // The completion path invokes the taken callback outside the lock.
        completion.callback.expect("callback was registered")(1);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Registering after completion fires immediately.
        let f = Arc::clone(&fired);
        hub.on_complete(1, Box::new(move |_| { f.fetch_add(10, Ordering::SeqCst); }))
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 11);
        assert_eq!(
            hub.on_complete(99, Box::new(|_| {})),
            Err(WaitError::UnknownJob)
        );
    }

    #[test]
    fn wait_counts_only_calls_that_actually_park() {
        let hub = Arc::new(CompletionHub::new());
        hub.register(3, entry());
        {
            let mut jobs = hub.jobs.lock().unwrap();
            jobs.get_mut(&3).unwrap().finish(3);
        }
        let mut blocked = false;
        let got = hub.wait(3, || blocked = true).unwrap();
        assert!(got.is_empty());
        assert!(!blocked, "already-done waits must not count as blocking");

        hub.register(4, entry());
        let h = Arc::clone(&hub);
        let waiter = std::thread::spawn(move || {
            let mut blocked = false;
            let got = h.wait(4, || blocked = true);
            (got, blocked)
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let mut jobs = hub.jobs.lock().unwrap();
            jobs.get_mut(&4).unwrap().finish(4);
        }
        hub.done.notify_all();
        let (got, blocked) = waiter.join().unwrap();
        assert!(got.unwrap().is_empty());
        assert!(blocked, "this wait really parked");
    }

    #[test]
    fn deadline_misses_are_measured_against_real_latency() {
        let mut hit = JobEntry::new(TenantId(0), 1, Some(Duration::from_secs(3600)), false, None);
        assert!(!hit.finish(0).deadline_missed);
        let mut missed = JobEntry::new(TenantId(0), 1, Some(Duration::ZERO), false, None);
        std::thread::sleep(Duration::from_millis(1));
        assert!(missed.finish(1).deadline_missed);
    }

    #[test]
    fn tombstones_age_out_beyond_the_window() {
        let mut t = Tombstones::default();
        for id in 0..(TOMBSTONE_WINDOW as u64 + 10) {
            t.insert(id);
        }
        assert!(!t.contains(0), "oldest ids age out");
        assert!(t.contains(TOMBSTONE_WINDOW as u64 + 9));
        assert_eq!(t.order.len(), TOMBSTONE_WINDOW);
    }
}
