//! Reactive device-pool autoscaling against a tail-latency SLO.
//!
//! The [`Controller`] is a pure decision function: fed one
//! [`WindowObservation`] per metrics window (peak predicted queue delay,
//! measured utilization, active fleet size), it answers scale up, scale
//! down, or hold. Scale-up fires when the predicted p99 queue delay has
//! breached the SLO for `scale_up_windows` consecutive windows;
//! scale-down waits for `scale_down_windows` of sustained low
//! utilization *with* delay comfortably inside the SLO. Keeping the
//! policy pure makes it deterministic and unit-testable without a
//! service or a clock.
//!
//! The [`Autoscaler`] wraps the controller in a sampling thread over a
//! live [`Service`]. It watches the *predicted* queue delay — in-flight
//! admission cost divided by the calibrated per-API rate of the devices
//! currently in the fleet — rather than completion latencies, because
//! prediction moves the moment a burst lands in the queue, while p99
//! completions only confirm the damage afterwards. Scale events go
//! through [`Service::set_device_active`]: retiring keeps the device's
//! queued batches draining (drain-before-retire — no job is lost or
//! rerun), activation re-plans the shard partition through
//! `ShardPlan::migrated_from` so only chunks whose owner actually
//! changed migrate, and both directions are sized by re-predicting the
//! delay of the hypothetical fleet before committing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::service::Service;

/// Autoscaling policy knobs.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Predicted-queue-delay SLO: the controller scales up when the
    /// windowed peak prediction exceeds this. Keep it well under the
    /// end-to-end latency SLO — queueing is only one term of completion
    /// latency, and reacting at the full budget reacts too late.
    pub slo: Duration,
    /// Metrics window the controller decides at (one decision per
    /// window). Match the service's `metrics_window` for aligned
    /// reporting.
    pub window: Duration,
    /// Delay samples taken per window; the window's signal is their
    /// peak, a windowed-p99 stand-in that a burst cannot hide from.
    pub samples_per_window: usize,
    /// Consecutive breached windows before scaling up.
    pub scale_up_windows: usize,
    /// Consecutive low-utilization windows before scaling down.
    pub scale_down_windows: usize,
    /// Utilization (busy wall-seconds / active device wall-seconds)
    /// below which a window counts toward scale-down.
    pub low_utilization: f64,
    /// Scale events target `headroom * slo` predicted delay: scale-up
    /// activates devices until the prediction is back under it, and
    /// scale-down refuses to retire a device if the survivor fleet's
    /// prediction would exceed it.
    pub headroom: f64,
    /// Never drop below this many active devices (the pool itself
    /// requires at least one).
    pub min_devices: usize,
    /// Never grow past this many active devices.
    pub max_devices: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            slo: Duration::from_millis(700),
            window: Duration::from_millis(250),
            samples_per_window: 5,
            scale_up_windows: 2,
            scale_down_windows: 6,
            low_utilization: 0.35,
            headroom: 0.5,
            min_devices: 1,
            max_devices: usize::MAX,
        }
    }
}

/// Which way a scale event moved the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDirection {
    /// A device joined the fleet.
    Up,
    /// A device was retired (its queued batches drained first).
    Down,
}

/// One committed fleet change, with the evidence that drove it.
#[derive(Debug, Clone)]
pub struct ScaleEvent {
    /// When the event fired, measured from watch start.
    pub at: Duration,
    /// Direction of the change.
    pub direction: ScaleDirection,
    /// The device activated or retired.
    pub device: usize,
    /// Active devices after the event.
    pub active_after: usize,
    /// The windowed peak predicted queue delay that triggered the
    /// decision.
    pub predicted_delay: Duration,
    /// Admission-queue depth when the event fired.
    pub queue_depth: usize,
    /// Chunks the minimal-migration replan actually moved.
    pub migrated_chunks: usize,
}

/// One metrics window distilled for the controller.
#[derive(Debug, Clone, Copy)]
pub struct WindowObservation {
    /// Peak predicted queue delay sampled during the window.
    pub peak_predicted_delay: Duration,
    /// Busy wall-seconds over active device wall-seconds, in `[0, ~1]`.
    pub utilization: f64,
    /// Active devices during the window.
    pub active_devices: usize,
}

/// The controller's verdict for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Add capacity until the predicted delay is back under headroom.
    ScaleUp,
    /// Retire one device if the survivors can hold the SLO.
    ScaleDown,
    /// Leave the fleet alone.
    Hold,
}

/// Pure windowed scale policy: consecutive-breach counting up,
/// sustained-low-utilization counting down, hysteresis between them.
#[derive(Debug, Clone)]
pub struct Controller {
    config: AutoscaleConfig,
    breach_streak: usize,
    low_streak: usize,
}

impl Controller {
    /// A controller with zeroed streaks.
    pub fn new(config: AutoscaleConfig) -> Controller {
        Controller {
            config,
            breach_streak: 0,
            low_streak: 0,
        }
    }

    /// The policy knobs the controller was built with.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.config
    }

    /// Digest one window and decide. Streaks reset on any decision (the
    /// fleet just changed; old evidence is stale) and on any window
    /// contradicting them, so flapping requires sustained contradictory
    /// evidence, not one noisy window each way.
    pub fn decide(&mut self, obs: &WindowObservation) -> Decision {
        let breach = obs.peak_predicted_delay > self.config.slo;
        if breach {
            self.breach_streak += 1;
            self.low_streak = 0;
        } else {
            self.breach_streak = 0;
            // Only windows that are quiet on *both* signals — low
            // utilization and delay already inside the scale-up target —
            // count toward retiring capacity.
            let delay_ok = obs.peak_predicted_delay.as_secs_f64()
                <= self.config.slo.as_secs_f64() * self.config.headroom;
            if obs.utilization < self.config.low_utilization && delay_ok {
                self.low_streak += 1;
            } else {
                self.low_streak = 0;
            }
        }
        if self.breach_streak >= self.config.scale_up_windows
            && obs.active_devices < self.config.max_devices
        {
            self.breach_streak = 0;
            return Decision::ScaleUp;
        }
        if self.low_streak >= self.config.scale_down_windows
            && obs.active_devices > self.config.min_devices.max(1)
        {
            self.low_streak = 0;
            return Decision::ScaleDown;
        }
        Decision::Hold
    }
}

/// Predicted queue delay, in wall seconds, of `inflight_cost` admission
/// units drained by the active subset of `rates` (calibrated cost units
/// per simulated second each) under `pacing` wall-seconds per simulated
/// second (`0.0` = unpaced, simulated seconds pass at host speed). The
/// same arithmetic [`Service::predicted_queue_delay`] applies to the
/// live fleet, exposed so scale decisions can price *hypothetical*
/// fleets before committing.
pub fn predicted_delay_s(rates: &[f64], active: &[bool], inflight_cost: f64, pacing: f64) -> f64 {
    let rate: f64 = rates
        .iter()
        .zip(active)
        .filter(|&(_, &a)| a)
        .map(|(r, _)| r)
        .sum();
    let sim_s = inflight_cost / rate.max(1e-12);
    if pacing > 0.0 {
        sim_s * pacing
    } else {
        sim_s
    }
}

/// Everything a harness wants to know after a watched run.
#[derive(Debug, Clone)]
pub struct AutoscaleReport {
    /// Committed scale events in order.
    pub events: Vec<ScaleEvent>,
    /// Decision windows observed.
    pub windows: usize,
    /// Wall device-seconds of provisioned (active) capacity integrated
    /// over the watch — the cost side of the elasticity trade.
    pub device_seconds: f64,
    /// Most devices ever active during the watch.
    pub peak_active: usize,
    /// Fewest devices ever active during the watch.
    pub min_active: usize,
}

impl AutoscaleReport {
    /// Scale-up events committed.
    pub fn scale_ups(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.direction == ScaleDirection::Up)
            .count()
    }

    /// Scale-down events committed.
    pub fn scale_downs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.direction == ScaleDirection::Down)
            .count()
    }

    /// Chunks migrated across all scale events.
    pub fn migrated_chunks(&self) -> usize {
        self.events.iter().map(|e| e.migrated_chunks).sum()
    }
}

/// A running watch thread scaling a [`Service`]'s pool; stop it to get
/// the [`AutoscaleReport`].
pub struct Autoscaler {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<AutoscaleReport>,
}

impl Autoscaler {
    /// Start watching `service`, sampling its predicted queue delay
    /// `config.samples_per_window` times per window and deciding once
    /// per window through a [`Controller`].
    ///
    /// # Panics
    /// Panics if `samples_per_window` is zero or `max_devices <
    /// min_devices`.
    pub fn watch(service: Arc<Service>, config: AutoscaleConfig) -> Autoscaler {
        assert!(config.samples_per_window > 0, "need at least one sample per window");
        assert!(
            config.max_devices >= config.min_devices.max(1),
            "max_devices must admit the minimum fleet"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || watch_loop(&service, config, &flag));
        Autoscaler { stop, handle }
    }

    /// Stop sampling and collect the report. The fleet is left in
    /// whatever state the last committed event put it.
    pub fn stop(self) -> AutoscaleReport {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("autoscaler thread panicked")
    }
}

fn watch_loop(service: &Service, config: AutoscaleConfig, stop: &AtomicBool) -> AutoscaleReport {
    let tick = Duration::from_secs_f64(
        (config.window.as_secs_f64() / config.samples_per_window as f64).max(1e-4),
    );
    let window_s = config.window.as_secs_f64();
    let pacing = service.pacing();
    let started = Instant::now();
    let mut controller = Controller::new(config.clone());
    let mut events: Vec<ScaleEvent> = Vec::new();
    let mut windows = 0usize;
    let mut device_seconds = 0.0f64;
    let mut delays: Vec<f64> = Vec::with_capacity(config.samples_per_window);
    let mut busy_prev: f64 = service.metrics().devices.iter().map(|d| d.busy_s).sum();
    let initial_active = active_count(&service.active_devices());
    let mut peak_active = initial_active;
    let mut min_active = initial_active;
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        let active = service.active_devices();
        let count = active_count(&active);
        peak_active = peak_active.max(count);
        min_active = min_active.min(count);
        device_seconds += count as f64 * tick.as_secs_f64();
        delays.push(service.predicted_queue_delay().as_secs_f64());
        if delays.len() < config.samples_per_window {
            continue;
        }
        let peak = delays.iter().fold(0.0f64, |a, &b| a.max(b));
        delays.clear();
        windows += 1;
        // Utilization: simulated busy seconds this window, mapped to wall
        // through pacing, over the wall capacity the active fleet offered.
        let busy_now: f64 = service.metrics().devices.iter().map(|d| d.busy_s).sum();
        let busy_delta = (busy_now - busy_prev).max(0.0);
        busy_prev = busy_now;
        let busy_wall = if pacing > 0.0 { busy_delta * pacing } else { busy_delta };
        let utilization = busy_wall / (window_s * count.max(1) as f64);
        let obs = WindowObservation {
            peak_predicted_delay: Duration::from_secs_f64(peak.min(1e9)),
            utilization,
            active_devices: count,
        };
        match controller.decide(&obs) {
            Decision::ScaleUp => {
                scale_up(service, &config, &obs, started, &mut events);
            }
            Decision::ScaleDown => {
                scale_down(service, &config, &obs, started, &mut events);
            }
            Decision::Hold => {}
        }
        let count = active_count(&service.active_devices());
        peak_active = peak_active.max(count);
        min_active = min_active.min(count);
    }
    AutoscaleReport {
        events,
        windows,
        device_seconds,
        peak_active,
        min_active,
    }
}

fn active_count(active: &[bool]) -> usize {
    active.iter().filter(|&&a| a).count()
}

/// Activate devices — fastest calibrated rate first — until the
/// re-predicted delay of the grown fleet is back under `headroom * slo`
/// or the fleet is maxed. Sizing against the prediction rather than
/// stepping one device per window is what lets one decision catch a
/// steep burst ramp.
fn scale_up(
    service: &Service,
    config: &AutoscaleConfig,
    obs: &WindowObservation,
    started: Instant,
    events: &mut Vec<ScaleEvent>,
) {
    let rates = service.device_admission_rates();
    let mut active = service.active_devices();
    let inflight = service.inflight_cost() as f64;
    let pacing = service.pacing();
    let target = config.slo.as_secs_f64() * config.headroom;
    loop {
        if active_count(&active) >= config.max_devices {
            return;
        }
        if predicted_delay_s(&rates, &active, inflight, pacing) <= target {
            return;
        }
        let Some(device) = (0..rates.len())
            .filter(|&d| !active[d])
            .max_by(|&a, &b| rates[a].total_cmp(&rates[b]))
        else {
            return;
        };
        let migrated = service.set_device_active(device, true);
        active[device] = true;
        events.push(ScaleEvent {
            at: started.elapsed(),
            direction: ScaleDirection::Up,
            device,
            active_after: active_count(&active),
            predicted_delay: obs.peak_predicted_delay,
            queue_depth: service.queue_depth(),
            migrated_chunks: migrated,
        });
    }
}

/// Retire the slowest active device, but only if the survivor fleet's
/// re-predicted delay stays under `headroom * slo` — otherwise hold.
/// One retirement per decision window: drain is gradual by design.
fn scale_down(
    service: &Service,
    config: &AutoscaleConfig,
    obs: &WindowObservation,
    started: Instant,
    events: &mut Vec<ScaleEvent>,
) {
    let rates = service.device_admission_rates();
    let mut active = service.active_devices();
    if active_count(&active) <= config.min_devices.max(1) {
        return;
    }
    let Some(device) = (0..rates.len())
        .filter(|&d| active[d])
        .min_by(|&a, &b| rates[a].total_cmp(&rates[b]))
    else {
        return;
    };
    active[device] = false;
    let survivors_delay = predicted_delay_s(
        &rates,
        &active,
        service.inflight_cost() as f64,
        service.pacing(),
    );
    if survivors_delay > config.slo.as_secs_f64() * config.headroom {
        return;
    }
    let migrated = service.set_device_active(device, false);
    events.push(ScaleEvent {
        at: started.elapsed(),
        direction: ScaleDirection::Down,
        device,
        active_after: active_count(&active),
        predicted_delay: obs.peak_predicted_delay,
        queue_depth: service.queue_depth(),
        migrated_chunks: migrated,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AutoscaleConfig {
        AutoscaleConfig {
            slo: Duration::from_millis(100),
            scale_up_windows: 2,
            scale_down_windows: 3,
            low_utilization: 0.3,
            headroom: 0.5,
            min_devices: 1,
            max_devices: 4,
            ..AutoscaleConfig::default()
        }
    }

    fn obs(delay_ms: u64, util: f64, active: usize) -> WindowObservation {
        WindowObservation {
            peak_predicted_delay: Duration::from_millis(delay_ms),
            utilization: util,
            active_devices: active,
        }
    }

    #[test]
    fn scale_up_needs_consecutive_breaches() {
        let mut c = Controller::new(config());
        assert_eq!(c.decide(&obs(150, 0.9, 1)), Decision::Hold);
        // A good window resets the streak.
        assert_eq!(c.decide(&obs(50, 0.9, 1)), Decision::Hold);
        assert_eq!(c.decide(&obs(150, 0.9, 1)), Decision::Hold);
        assert_eq!(c.decide(&obs(150, 0.9, 1)), Decision::ScaleUp);
        // Deciding consumed the streak: the next breach starts over.
        assert_eq!(c.decide(&obs(150, 0.9, 2)), Decision::Hold);
    }

    #[test]
    fn scale_up_respects_max_devices() {
        let mut c = Controller::new(config());
        assert_eq!(c.decide(&obs(150, 0.9, 4)), Decision::Hold);
        assert_eq!(c.decide(&obs(150, 0.9, 4)), Decision::Hold, "fleet already maxed");
    }

    #[test]
    fn scale_down_needs_sustained_low_utilization_and_slack_delay() {
        let mut c = Controller::new(config());
        assert_eq!(c.decide(&obs(10, 0.1, 2)), Decision::Hold);
        assert_eq!(c.decide(&obs(10, 0.1, 2)), Decision::Hold);
        assert_eq!(c.decide(&obs(10, 0.1, 2)), Decision::ScaleDown);
        // Low utilization with delay above headroom*slo (50ms) does not
        // count toward retiring capacity.
        assert_eq!(c.decide(&obs(80, 0.1, 2)), Decision::Hold);
        assert_eq!(c.decide(&obs(80, 0.1, 2)), Decision::Hold);
        assert_eq!(c.decide(&obs(80, 0.1, 2)), Decision::Hold);
    }

    #[test]
    fn scale_down_respects_min_devices() {
        let mut c = Controller::new(config());
        for _ in 0..10 {
            assert_eq!(c.decide(&obs(1, 0.0, 1)), Decision::Hold, "floor fleet never shrinks");
        }
    }

    #[test]
    fn breaches_reset_the_low_streak() {
        let mut c = Controller::new(config());
        assert_eq!(c.decide(&obs(10, 0.1, 2)), Decision::Hold);
        assert_eq!(c.decide(&obs(10, 0.1, 2)), Decision::Hold);
        assert_eq!(c.decide(&obs(150, 0.1, 2)), Decision::Hold, "breach interrupts");
        assert_eq!(c.decide(&obs(10, 0.1, 2)), Decision::Hold, "streak restarted");
        assert_eq!(c.decide(&obs(10, 0.1, 2)), Decision::Hold);
        assert_eq!(c.decide(&obs(10, 0.1, 2)), Decision::ScaleDown);
    }

    #[test]
    fn hypothetical_fleet_delay_prices_active_subset() {
        let rates = [100.0, 300.0];
        assert!((predicted_delay_s(&rates, &[true, false], 50.0, 0.0) - 0.5).abs() < 1e-12);
        assert!((predicted_delay_s(&rates, &[true, true], 50.0, 0.0) - 0.125).abs() < 1e-12);
        // Pacing maps simulated drain time to wall clock.
        assert!((predicted_delay_s(&rates, &[true, true], 50.0, 10.0) - 1.25).abs() < 1e-12);
    }
}
