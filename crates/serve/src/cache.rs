//! A byte-budgeted LRU cache of encoded genome chunks.
//!
//! Uploading a chunk to a device is cheap in the simulator but slicing and
//! owning the chunk bytes on the host is the work the service repeats for
//! every batch that targets the same genome region. The cache keeps the
//! hot working set resident: a batch that lands on a chunk another batch
//! just used pays a map lookup instead of a copy of up to `chunk_size`
//! bases.
//!
//! Chunks are stored 2-bit packed by default ([`ChunkEncoding::Packed`]):
//! a [`genome::twobit::PackedSeq`] holds ~0.375 bytes per base (packed
//! words + N mask) plus a rare exception list, so the same byte budget
//! keeps roughly 2.7x as many chunks resident as raw bytes would, and the
//! packed payload is what the runners upload. [`ChunkEncoding::Raw`] keeps
//! the classic one-byte-per-base layout for baseline comparisons.
//!
//! The 2-bit layout degrades on exception-dense chunks: every soft-masked
//! or degenerate byte costs a 5-byte host exception, and a single
//! degenerate exception forces the comparers back onto the char kernel.
//! [`ChunkEncoding::Adaptive`] therefore inspects each chunk as it is
//! encoded and switches to the 4-bit nibble layout
//! ([`genome::fourbit::NibbleSeq`], 0.5 B/base on device, never any
//! fallback) whenever the 2-bit form would be unsafe to compare or would
//! out-weigh the nibbles on the host.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cas_offinder::pipeline::chunk::twobit_compare_safe;
use genome::fourbit::NibbleSeq;
use genome::twobit::PackedSeq;

use crate::results::{fnv1a64, FNV_OFFSET};

/// Exception density (2-bit exceptions per base) above which the adaptive
/// encoding switches a chunk to the nibble layout. The break-even of the
/// host footprints: 2-bit costs `0.375 + 5d` bytes per base at density `d`
/// while nibbles cost a flat `0.625`, which cross at `d = 0.05`.
pub const NIBBLE_DENSITY_THRESHOLD: f64 = 0.05;

/// How the cache (and the upload path) represents chunk bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkEncoding {
    /// Per-chunk choice between 2-bit and 4-bit (the serving default):
    /// 2-bit packed while its exceptions are compare-safe and rarer than
    /// [`NIBBLE_DENSITY_THRESHOLD`], 4-bit nibbles otherwise — so no chunk
    /// ever falls back to the char comparer.
    #[default]
    Adaptive,
    /// Always 2-bit packed + N mask + exception list.
    Packed,
    /// One byte per base, as the serial pipelines upload.
    Raw,
}

/// The resident representation of a chunk's bases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkPayload {
    /// Losslessly 2-bit packed.
    Packed(PackedSeq),
    /// 4-bit nibble packed: every IUPAC code kept as its possibility mask.
    Nibble(NibbleSeq),
    /// Raw bases.
    Raw(Vec<u8>),
}

/// One genome chunk in host memory, ready for upload: `scan_len` owned
/// scan positions plus the trailing overlap context, in the cache's
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedChunk {
    /// Index of the source chromosome within the assembly.
    pub chrom_index: usize,
    /// Name of the source chromosome.
    pub chrom: String,
    /// Offset of the chunk's first base within the chromosome.
    pub start: usize,
    /// Number of scan positions owned by this chunk.
    pub scan_len: usize,
    /// The chunk's bases, in the configured encoding.
    pub payload: ChunkPayload,
}

impl EncodedChunk {
    /// Encode `seq` under `encoding`.
    pub fn encode(
        chrom_index: usize,
        chrom: String,
        start: usize,
        scan_len: usize,
        seq: &[u8],
        encoding: ChunkEncoding,
    ) -> Self {
        let payload = match encoding {
            ChunkEncoding::Adaptive => {
                let packed = PackedSeq::encode(seq);
                let density = packed.exceptions().len() as f64 / seq.len().max(1) as f64;
                if twobit_compare_safe(&packed) && density <= NIBBLE_DENSITY_THRESHOLD {
                    ChunkPayload::Packed(packed)
                } else {
                    ChunkPayload::Nibble(NibbleSeq::encode(seq))
                }
            }
            ChunkEncoding::Packed => ChunkPayload::Packed(PackedSeq::encode(seq)),
            ChunkEncoding::Raw => ChunkPayload::Raw(seq.to_vec()),
        };
        EncodedChunk {
            chrom_index,
            chrom,
            start,
            scan_len,
            payload,
        }
    }

    /// Number of bases the chunk holds (scan positions + trailing context).
    pub fn seq_len(&self) -> usize {
        match &self.payload {
            ChunkPayload::Packed(p) => p.len(),
            ChunkPayload::Nibble(n) => n.len(),
            ChunkPayload::Raw(seq) => seq.len(),
        }
    }

    /// Host bytes the payload keeps resident — what the cache budget
    /// charges for this entry.
    pub fn byte_len(&self) -> usize {
        match &self.payload {
            ChunkPayload::Packed(p) => p.byte_len(),
            ChunkPayload::Nibble(n) => n.byte_len(),
            ChunkPayload::Raw(seq) => seq.len(),
        }
    }

    /// Bytes a device upload of this payload moves — what the scheduler
    /// prices and residency skips. Smaller than [`byte_len`](Self::byte_len)
    /// for packed forms: exception lists and case masks stay on the host.
    pub fn upload_byte_len(&self) -> usize {
        match &self.payload {
            ChunkPayload::Packed(p) => p.packed_bytes().len() + p.mask_bytes().len(),
            ChunkPayload::Nibble(n) => n.device_byte_len(),
            ChunkPayload::Raw(seq) => seq.len(),
        }
    }

    /// Encoding tag of the payload form (raw 0, 2-bit 1, 4-bit 2) — part
    /// of the candidate cache's content key, so a cached list only
    /// replays through the finder flavour that produced it.
    pub fn encoding_tag(&self) -> u8 {
        match &self.payload {
            ChunkPayload::Raw(_) => 0,
            ChunkPayload::Packed(_) => 1,
            ChunkPayload::Nibble(_) => 2,
        }
    }

    /// Stable 64-bit digest of the chunk's bases — the candidate cache's
    /// content address. Hashed over the exact decoded byte sequence, so
    /// it is independent of the payload encoding, and chunks with
    /// identical bases (telomeric N runs, repeated contigs) share one
    /// digest and therefore one cached candidate list per pattern.
    pub fn content_digest(&self) -> u64 {
        let bases = self.decode();
        let h = fnv1a64(FNV_OFFSET, &(bases.len() as u64).to_le_bytes());
        fnv1a64(h, &bases)
    }

    /// The chunk's bases as characters, decoding packed payloads
    /// (borrowing raw ones). Exact: packed payloads round-trip degenerate
    /// and lowercase bases through the exception list.
    pub fn decode(&self) -> Cow<'_, [u8]> {
        match &self.payload {
            ChunkPayload::Packed(p) => Cow::Owned(p.decode()),
            ChunkPayload::Nibble(n) => Cow::Owned(n.decode()),
            ChunkPayload::Raw(seq) => Cow::Borrowed(seq),
        }
    }
}

/// Cache key: which chunk of which assembly, under which overlap.
///
/// The overlap (= pattern length) is part of the key because chunks sliced
/// for different pattern lengths carry different amounts of trailing
/// context.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// Registered assembly name.
    pub assembly: String,
    /// Pattern length the chunk was sliced for.
    pub plen: usize,
    /// Chunk ordinal within the assembly's chunk sequence.
    pub index: usize,
}

struct Entry {
    chunk: Arc<EncodedChunk>,
    last_used: u64,
}

struct Inner {
    map: HashMap<ChunkKey, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time cache accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to encode the chunk.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Chunks currently resident.
    pub len: usize,
    /// Payload bytes currently resident.
    pub bytes_resident: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe LRU over [`EncodedChunk`]s, bounded by resident payload
/// bytes rather than entry count — a packed cache therefore keeps ~2.7x
/// the chunks of a raw cache at the same budget.
pub struct GenomeCache {
    capacity_bytes: usize,
    inner: Mutex<Inner>,
}

impl GenomeCache {
    /// An empty cache holding at most `capacity_bytes` of payload.
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be positive");
        GenomeCache {
            capacity_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Fetch the chunk for `key`, encoding it with `encode` on a miss.
    /// Either way the entry becomes the most recently used; on insertion
    /// past the byte budget, least recently used entries are evicted until
    /// the new entry fits (an entry larger than the whole budget is still
    /// admitted, alone).
    pub fn get_or_insert_with(
        &self,
        key: &ChunkKey,
        encode: impl FnOnce() -> EncodedChunk,
    ) -> Arc<EncodedChunk> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(key) {
            entry.last_used = tick;
            let chunk = Arc::clone(&entry.chunk);
            inner.hits += 1;
            return chunk;
        }
        inner.misses += 1;
        let chunk = Arc::new(encode());
        let incoming = chunk.byte_len();
        while !inner.map.is_empty() && inner.bytes + incoming > self.capacity_bytes {
            // O(len) scan; resident counts stay small by construction.
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                if let Some(evicted) = inner.map.remove(&lru) {
                    inner.bytes -= evicted.chunk.byte_len();
                    inner.evictions += 1;
                }
            }
        }
        inner.bytes += incoming;
        inner.map.insert(
            key.clone(),
            Entry {
                chunk: Arc::clone(&chunk),
                last_used: tick,
            },
        );
        chunk
    }

    /// Look up `key` without touching recency or the hit/miss counters —
    /// for read-only observers like the shard planner's makespan
    /// prediction, which must not perturb the LRU order or the hit-rate
    /// accounting the serving path reports.
    pub fn peek(&self, key: &ChunkKey) -> Option<Arc<EncodedChunk>> {
        let inner = self.inner.lock().unwrap();
        inner.map.get(key).map(|e| Arc::clone(&e.chunk))
    }

    /// Current accounting.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
            bytes_resident: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(index: usize) -> ChunkKey {
        ChunkKey {
            assembly: "a".into(),
            plen: 3,
            index,
        }
    }

    fn chunk(index: usize, encoding: ChunkEncoding) -> EncodedChunk {
        EncodedChunk::encode(0, "chr1".into(), index * 10, 10, &[b'A'; 13], encoding)
    }

    /// 13 raw bases pack into ceil(13/4) + ceil(13/8) = 4 + 2 = 6 bytes.
    const PACKED_BYTES: usize = 6;

    #[test]
    fn hits_and_misses_are_accounted_in_bytes() {
        let cache = GenomeCache::new(4 * PACKED_BYTES);
        let a = cache.get_or_insert_with(&key(0), || chunk(0, ChunkEncoding::Packed));
        assert_eq!(a.byte_len(), PACKED_BYTES);
        assert_eq!(a.seq_len(), 13);
        assert_eq!(a.decode().as_ref(), &[b'A'; 13]);
        let b = cache.get_or_insert_with(&key(0), || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert_eq!(stats.bytes_resident, PACKED_BYTES);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_removes_the_least_recently_used_by_byte_budget() {
        let cache = GenomeCache::new(2 * PACKED_BYTES);
        cache.get_or_insert_with(&key(0), || chunk(0, ChunkEncoding::Packed));
        cache.get_or_insert_with(&key(1), || chunk(1, ChunkEncoding::Packed));
        // Touch 0 so 1 becomes the LRU entry.
        cache.get_or_insert_with(&key(0), || unreachable!());
        cache.get_or_insert_with(&key(2), || chunk(2, ChunkEncoding::Packed)); // evicts 1
        cache.get_or_insert_with(&key(0), || unreachable!("0 must survive"));
        cache.get_or_insert_with(&key(1), || chunk(1, ChunkEncoding::Packed)); // 1 is gone: miss
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2, "inserting 2 evicted 1; reinserting 1 evicted the then-LRU");
        assert_eq!(stats.len, 2);
        assert_eq!(stats.bytes_resident, 2 * PACKED_BYTES);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn packed_entries_outnumber_raw_at_the_same_budget() {
        // Budget of two raw chunks holds four packed ones (6 B vs 13 B).
        let budget = 2 * 13;
        let raw = GenomeCache::new(budget);
        let packed = GenomeCache::new(budget);
        for i in 0..4 {
            raw.get_or_insert_with(&key(i), || chunk(i, ChunkEncoding::Raw));
            packed.get_or_insert_with(&key(i), || chunk(i, ChunkEncoding::Packed));
        }
        assert_eq!(raw.stats().len, 2, "raw: two 13 B entries fill 26 B");
        assert_eq!(packed.stats().len, 4, "packed: four 6 B entries fit");
        assert!(packed.stats().evictions < raw.stats().evictions);
    }

    #[test]
    fn oversized_entries_are_admitted_alone() {
        let cache = GenomeCache::new(4);
        let c = cache.get_or_insert_with(&key(0), || chunk(0, ChunkEncoding::Raw));
        assert_eq!(c.byte_len(), 13);
        assert_eq!(cache.stats().len, 1, "an entry above budget still serves");
        cache.get_or_insert_with(&key(1), || chunk(1, ChunkEncoding::Raw));
        assert_eq!(cache.stats().len, 1, "but is evicted by the next insert");
    }

    #[test]
    fn peek_observes_without_perturbing_recency_or_stats() {
        let cache = GenomeCache::new(2 * PACKED_BYTES);
        cache.get_or_insert_with(&key(0), || chunk(0, ChunkEncoding::Packed));
        cache.get_or_insert_with(&key(1), || chunk(1, ChunkEncoding::Packed));
        let before = cache.stats();
        assert!(cache.peek(&key(0)).is_some());
        assert!(cache.peek(&key(7)).is_none());
        assert_eq!(cache.stats(), before, "peek leaves the counters alone");
        // Peeking 0 did not refresh it: 0 is still the LRU entry and the
        // next insert evicts it, not 1.
        cache.get_or_insert_with(&key(2), || chunk(2, ChunkEncoding::Packed));
        assert!(cache.peek(&key(0)).is_none(), "0 stayed LRU despite the peek");
        assert!(cache.peek(&key(1)).is_some());
    }

    #[test]
    fn keys_separate_assemblies_and_overlaps() {
        let cache = GenomeCache::new(1 << 10);
        cache.get_or_insert_with(&key(0), || chunk(0, ChunkEncoding::Packed));
        let other = ChunkKey {
            assembly: "a".into(),
            plen: 5,
            index: 0,
        };
        cache.get_or_insert_with(&other, || chunk(0, ChunkEncoding::Packed));
        assert_eq!(cache.stats().misses, 2, "same index, different overlap");
    }

    #[test]
    fn packed_payloads_preserve_degenerate_and_lowercase_bases() {
        let seq = b"ACGTACGTACGTACGTACGTRyACGTACGTACGTNNNNNN";
        let c = EncodedChunk::encode(0, "chr1".into(), 0, 32, seq, ChunkEncoding::Packed);
        assert_eq!(c.decode().as_ref(), seq, "lossless round-trip incl. R, y");
        assert!(c.byte_len() < seq.len(), "rare exceptions keep packing ahead");
    }

    #[test]
    fn adaptive_encoding_keeps_clean_chunks_2bit() {
        // Concrete bases and N runs: zero exceptions, 2-bit wins.
        let seq = b"ACGTACGTACGTACGTNNNNNNNNACGTACGT";
        let c = EncodedChunk::encode(0, "chr1".into(), 0, 24, seq, ChunkEncoding::Adaptive);
        assert!(matches!(c.payload, ChunkPayload::Packed(_)));
        assert_eq!(c.decode().as_ref(), seq);
    }

    #[test]
    fn adaptive_encoding_switches_degenerate_chunks_to_nibbles() {
        // A single degenerate byte already defeats the 2-bit comparer, so
        // safety — not density — must force the nibble form.
        let mut seq = vec![b'A'; 64];
        seq[10] = b'R';
        let c = EncodedChunk::encode(0, "chr1".into(), 0, 32, &seq, ChunkEncoding::Adaptive);
        assert!(matches!(c.payload, ChunkPayload::Nibble(_)));
        assert_eq!(c.decode(), seq, "nibble payloads round-trip byte-exactly");
        assert_eq!(c.upload_byte_len(), 32, "half a byte per base on device");
    }

    #[test]
    fn adaptive_encoding_switches_soft_mask_runs_to_nibbles() {
        // Lowercase concrete bases are compare-safe for the 2-bit kernel,
        // but at 5 host bytes per exception a long soft-mask run makes the
        // 2-bit form larger than the nibbles — density flips the choice.
        let mut seq = vec![b'A'; 100];
        for b in seq.iter_mut().take(40) {
            *b = b'a';
        }
        let dense = EncodedChunk::encode(0, "chr1".into(), 0, 64, &seq, ChunkEncoding::Adaptive);
        assert!(matches!(dense.payload, ChunkPayload::Nibble(_)));
        assert_eq!(dense.decode(), seq, "case survives the nibble round-trip");
        // At exactly the threshold (5 exceptions in 100 bases) 2-bit stays.
        let mut sparse = vec![b'A'; 100];
        for b in sparse.iter_mut().take(5) {
            *b = b'a';
        }
        let c = EncodedChunk::encode(0, "chr1".into(), 0, 64, &sparse, ChunkEncoding::Adaptive);
        assert!(matches!(c.payload, ChunkPayload::Packed(_)));
    }
}
