//! A capacity-bounded LRU cache of encoded genome chunks.
//!
//! Uploading a chunk to a device is cheap in the simulator but slicing and
//! owning the chunk bytes on the host is the work the service repeats for
//! every batch that targets the same genome region. The cache keeps the
//! hot working set resident: a batch that lands on a chunk another batch
//! just used pays a map lookup instead of a copy of up to `chunk_size`
//! bases.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One genome chunk in host memory, ready for upload: `scan_len` owned
/// scan positions plus the trailing overlap context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedChunk {
    /// Index of the source chromosome within the assembly.
    pub chrom_index: usize,
    /// Name of the source chromosome.
    pub chrom: String,
    /// Offset of the chunk's first base within the chromosome.
    pub start: usize,
    /// Number of scan positions owned by this chunk.
    pub scan_len: usize,
    /// The chunk's bases.
    pub seq: Vec<u8>,
}

/// Cache key: which chunk of which assembly, under which overlap.
///
/// The overlap (= pattern length) is part of the key because chunks sliced
/// for different pattern lengths carry different amounts of trailing
/// context.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    /// Registered assembly name.
    pub assembly: String,
    /// Pattern length the chunk was sliced for.
    pub plen: usize,
    /// Chunk ordinal within the assembly's chunk sequence.
    pub index: usize,
}

struct Entry {
    chunk: Arc<EncodedChunk>,
    last_used: u64,
}

struct Inner {
    map: HashMap<ChunkKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Point-in-time cache accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to encode the chunk.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Chunks currently resident.
    pub len: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe LRU over [`EncodedChunk`]s, bounded by chunk count.
pub struct GenomeCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl GenomeCache {
    /// An empty cache holding at most `capacity` chunks.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        GenomeCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Fetch the chunk for `key`, encoding it with `encode` on a miss.
    /// Either way the entry becomes the most recently used; on insertion
    /// past capacity the least recently used entry is evicted.
    pub fn get_or_insert_with(
        &self,
        key: &ChunkKey,
        encode: impl FnOnce() -> EncodedChunk,
    ) -> Arc<EncodedChunk> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(key) {
            entry.last_used = tick;
            let chunk = Arc::clone(&entry.chunk);
            inner.hits += 1;
            return chunk;
        }
        inner.misses += 1;
        let chunk = Arc::new(encode());
        if inner.map.len() >= self.capacity {
            // O(len) scan; the capacity is small by construction.
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key.clone(),
            Entry {
                chunk: Arc::clone(&chunk),
                last_used: tick,
            },
        );
        chunk
    }

    /// Current accounting.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(index: usize) -> ChunkKey {
        ChunkKey {
            assembly: "a".into(),
            plen: 3,
            index,
        }
    }

    fn chunk(index: usize) -> EncodedChunk {
        EncodedChunk {
            chrom_index: 0,
            chrom: "chr1".into(),
            start: index * 10,
            scan_len: 10,
            seq: vec![b'A'; 13],
        }
    }

    #[test]
    fn hits_and_misses_are_accounted() {
        let cache = GenomeCache::new(4);
        let a = cache.get_or_insert_with(&key(0), || chunk(0));
        let b = cache.get_or_insert_with(&key(0), || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let cache = GenomeCache::new(2);
        cache.get_or_insert_with(&key(0), || chunk(0));
        cache.get_or_insert_with(&key(1), || chunk(1));
        // Touch 0 so 1 becomes the LRU entry.
        cache.get_or_insert_with(&key(0), || unreachable!());
        cache.get_or_insert_with(&key(2), || chunk(2)); // evicts 1
        cache.get_or_insert_with(&key(0), || unreachable!("0 must survive"));
        cache.get_or_insert_with(&key(1), || chunk(1)); // 1 is gone: miss
        let stats = cache.stats();
        assert_eq!(stats.evictions, 2, "inserting 2 evicted 1; reinserting 1 evicted the then-LRU");
        assert_eq!(stats.len, 2);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn keys_separate_assemblies_and_overlaps() {
        let cache = GenomeCache::new(8);
        cache.get_or_insert_with(&key(0), || chunk(0));
        let other = ChunkKey {
            assembly: "a".into(),
            plen: 5,
            index: 0,
        };
        cache.get_or_insert_with(&other, || chunk(0));
        assert_eq!(cache.stats().misses, 2, "same index, different overlap");
    }
}
