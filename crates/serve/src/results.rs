//! Content-addressed result store with single-flight coalescing.
//!
//! Identical `(assembly, pattern, guide, mismatches, bulge, chunking)`
//! specs produce identical results, so recomputing them wastes every stage
//! of the pipeline: admission budget, batcher work, chunk uploads and
//! kernel launches. The [`ResultStore`] short-circuits all of it. A repeat
//! spec whose results are cached is answered at submit time without ever
//! entering the admission queue; a repeat spec whose first submission is
//! still computing is *merged* onto that in-flight leader (single-flight),
//! so N concurrent identical specs trigger exactly one compute.
//!
//! Keys are 64-bit FNV-1a digests of the canonical spec bytes. Digests are
//! not trusted alone: the canonical spec is stored alongside each entry and
//! compared on lookup, so a (vanishingly unlikely) collision degrades to a
//! miss instead of serving wrong results. The store is bounded by a byte
//! budget and evicts least-recently-used entries.

use std::collections::HashMap;
use std::sync::Mutex;

use cas_offinder::OffTarget;

use crate::job::{JobId, JobSpec};

/// 64-bit FNV-1a over `bytes`, continuing from `state` (seed with
/// [`FNV_OFFSET`]). Stable across runs — the digest doubles as the
/// scheduler's chunk-residency token, which must be identical for
/// identical work no matter which thread computes it.
pub(crate) fn fnv1a64(state: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a offset basis: the seed for [`fnv1a64`] chains.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The fields of a [`JobSpec`] that determine its results, in canonical
/// form. Priority is deliberately excluded — it changes *when* a job runs,
/// never what it returns. The chunk size is included: it does not change
/// the result set either, but keying on it keeps the cache trivially
/// correct if a future revision lets per-service chunking affect result
/// order before canonical sorting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CanonicalSpec {
    assembly: String,
    pattern: Vec<u8>,
    guide: Vec<u8>,
    max_mismatches: u16,
    bulge: Option<(u8, u8)>,
    /// Library-screen guides in **sorted** order: a screen's result set is
    /// the union over its guides, so two submissions listing the same
    /// guides in different orders are the same work and must share one
    /// digest. Empty for single-guide jobs.
    library: Vec<Vec<u8>>,
    chunk_size: usize,
}

impl CanonicalSpec {
    /// Canonicalize `spec` and digest it.
    pub fn digest(spec: &JobSpec, chunk_size: usize) -> (u64, CanonicalSpec) {
        let mut library = spec.library.clone().unwrap_or_default();
        library.sort_unstable();
        let canon = CanonicalSpec {
            assembly: spec.assembly.clone(),
            pattern: spec.pattern.clone(),
            guide: spec.guide.clone(),
            max_mismatches: spec.max_mismatches,
            bulge: spec.bulge.map(|b| (b.max_dna, b.max_rna)),
            library,
            chunk_size,
        };
        let mut h = fnv1a64(FNV_OFFSET, canon.assembly.as_bytes());
        h = fnv1a64(h, &[0]);
        h = fnv1a64(h, &canon.pattern);
        h = fnv1a64(h, &[0]);
        h = fnv1a64(h, &canon.guide);
        h = fnv1a64(h, &canon.max_mismatches.to_le_bytes());
        let (dna, rna) = canon.bulge.map_or((0xff, 0xff), |b| b);
        h = fnv1a64(h, &[dna, rna]);
        h = fnv1a64(h, &(canon.library.len() as u64).to_le_bytes());
        for g in &canon.library {
            h = fnv1a64(h, g);
            h = fnv1a64(h, &[0]);
        }
        h = fnv1a64(h, &(canon.chunk_size as u64).to_le_bytes());
        (h, canon)
    }
}

/// Counters of the result store, as exposed by
/// [`MetricsReport`](crate::MetricsReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Submissions answered from the cache without computing.
    pub hits: u64,
    /// Submissions that became compute leaders.
    pub misses: u64,
    /// Submissions merged onto an in-flight leader (single-flight).
    pub merges: u64,
    /// Completed result sets inserted into the cache.
    pub insertions: u64,
    /// Entries evicted to fit the byte budget.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Approximate bytes of cached results.
    pub bytes_resident: usize,
}

/// How [`ResultStore::admit`] classified a submission.
pub(crate) enum Admission {
    /// Cached results — the job is done before it was ever queued.
    Hit(Vec<OffTarget>),
    /// An identical spec is computing; the job rides along as a follower.
    Merged,
    /// First of its kind: the caller enqueued it as the compute leader.
    Admitted,
}

struct StoredEntry {
    spec: CanonicalSpec,
    results: Vec<OffTarget>,
    bytes: usize,
    last_used: u64,
}

struct InFlight {
    spec: CanonicalSpec,
    followers: Vec<JobId>,
}

struct StoreInner {
    entries: HashMap<u64, StoredEntry>,
    inflight: HashMap<u64, InFlight>,
    clock: u64,
    bytes: usize,
    stats: ResultCacheStats,
}

/// Bounded LRU store of finished result sets plus the in-flight
/// single-flight registry. See the module docs for the protocol.
pub(crate) struct ResultStore {
    cap_bytes: usize,
    inner: Mutex<StoreInner>,
}

/// Approximate host bytes of a result set (the eviction currency).
fn approx_bytes(results: &[OffTarget]) -> usize {
    const PER_ENTRY: usize = 64; // struct + allocation overheads
    results
        .iter()
        .map(|o| o.query.len() + o.chrom.len() + o.site.len() + PER_ENTRY)
        .sum::<usize>()
        .max(PER_ENTRY) // an empty result set still occupies an entry
}

impl ResultStore {
    pub fn new(cap_bytes: usize) -> Self {
        ResultStore {
            cap_bytes,
            inner: Mutex::new(StoreInner {
                entries: HashMap::new(),
                inflight: HashMap::new(),
                clock: 0,
                bytes: 0,
                stats: ResultCacheStats::default(),
            }),
        }
    }

    /// Classify a submission: cache hit, single-flight merge, or leader.
    /// `try_enqueue` runs *while the store lock is held* on the leader path,
    /// so a concurrent duplicate cannot slip between the admission decision
    /// and the leader registration — it either sees the leader (merge) or
    /// becomes one itself after this enqueue failed.
    ///
    /// # Errors
    ///
    /// Forwards `try_enqueue`'s error (admission rejection); the store is
    /// left unchanged in that case.
    pub fn admit<E>(
        &self,
        digest: u64,
        spec: &CanonicalSpec,
        id: JobId,
        try_enqueue: impl FnOnce() -> Result<(), E>,
    ) -> Result<Admission, E> {
        let mut s = self.inner.lock().unwrap();
        s.clock += 1;
        let clock = s.clock;
        if let Some(e) = s.entries.get_mut(&digest) {
            if e.spec == *spec {
                e.last_used = clock;
                let results = e.results.clone();
                s.stats.hits += 1;
                return Ok(Admission::Hit(results));
            }
        }
        if let Some(f) = s.inflight.get_mut(&digest) {
            if f.spec == *spec {
                f.followers.push(id);
                s.stats.merges += 1;
                return Ok(Admission::Merged);
            }
        }
        try_enqueue()?;
        s.stats.misses += 1;
        // On a digest collision (occupied by a different spec) the job
        // computes uncoalesced and its results stay uncached — correct,
        // just not deduplicated.
        s.inflight
            .entry(digest)
            .or_insert_with(|| InFlight {
                spec: spec.clone(),
                followers: Vec::new(),
            });
        Ok(Admission::Admitted)
    }

    /// Withdraw a failed leader (its enqueue succeeded but a later
    /// submission step failed) so followers are not stranded on a compute
    /// that will never complete. Returns any followers already merged —
    /// the caller must fail or resubmit them.
    #[allow(dead_code)]
    pub fn withdraw(&self, digest: u64, spec: &CanonicalSpec) -> Vec<JobId> {
        let mut s = self.inner.lock().unwrap();
        match s.inflight.get(&digest) {
            Some(f) if f.spec == *spec => s.inflight.remove(&digest).unwrap().followers,
            _ => Vec::new(),
        }
    }

    /// Publish a leader's finished results: cache them (evicting LRU
    /// entries past the byte budget) and return the followers to fulfill.
    /// Removal from the in-flight registry and insertion into the cache are
    /// atomic under the store lock, so no submission can fall between them.
    pub fn complete(
        &self,
        digest: u64,
        spec: &CanonicalSpec,
        results: &[OffTarget],
    ) -> Vec<JobId> {
        let mut s = self.inner.lock().unwrap();
        s.clock += 1;
        let clock = s.clock;
        let followers = match s.inflight.get(&digest) {
            Some(f) if f.spec == *spec => s.inflight.remove(&digest).unwrap().followers,
            _ => Vec::new(),
        };
        let bytes = approx_bytes(results);
        let occupied = s
            .entries
            .get(&digest)
            .is_some_and(|e| e.spec != *spec);
        if bytes <= self.cap_bytes && !occupied {
            while s.bytes + bytes > self.cap_bytes {
                let lru = s
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("bytes > 0 implies at least one entry");
                let evicted = s.entries.remove(&lru).expect("key just found");
                s.bytes -= evicted.bytes;
                s.stats.evictions += 1;
            }
            if s
                .entries
                .insert(
                    digest,
                    StoredEntry {
                        spec: spec.clone(),
                        results: results.to_vec(),
                        bytes,
                        last_used: clock,
                    },
                )
                .is_none()
            {
                s.bytes += bytes;
                s.stats.insertions += 1;
            }
        }
        followers
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ResultCacheStats {
        let s = self.inner.lock().unwrap();
        ResultCacheStats {
            len: s.entries.len(),
            bytes_resident: s.bytes,
            ..s.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_offinder::Strand;

    fn spec(guide: &[u8]) -> JobSpec {
        JobSpec::new("hg38", b"NNNRG".to_vec(), guide.to_vec(), 3)
    }

    fn hit(pos: usize) -> OffTarget {
        OffTarget::from_window(b"ACGTG", "chr1", pos, Strand::Forward, 1, b"ACGTG")
    }

    #[test]
    fn digests_separate_every_result_bearing_field() {
        let base = spec(b"ACGTG");
        let (d0, _) = CanonicalSpec::digest(&base, 512);
        let variants = [
            CanonicalSpec::digest(&JobSpec::new("hg19", b"NNNRG".to_vec(), b"ACGTG".to_vec(), 3), 512).0,
            CanonicalSpec::digest(&JobSpec::new("hg38", b"NNNGG".to_vec(), b"ACGTG".to_vec(), 3), 512).0,
            CanonicalSpec::digest(&spec(b"ACGTT"), 512).0,
            CanonicalSpec::digest(&JobSpec::new("hg38", b"NNNRG".to_vec(), b"ACGTG".to_vec(), 4), 512).0,
            CanonicalSpec::digest(&base, 1024).0,
        ];
        for v in variants {
            assert_ne!(d0, v);
        }
        // Priority does not change results, so it must not change the key.
        let (d1, _) = CanonicalSpec::digest(&spec(b"ACGTG").high_priority(), 512);
        assert_eq!(d0, d1);
    }

    #[test]
    fn library_digests_canonicalize_guide_order() {
        let fwd = JobSpec::library(
            "hg38",
            b"NNNRG".to_vec(),
            vec![b"ACGTG".to_vec(), b"TTTTG".to_vec(), b"CCCTG".to_vec()],
            3,
        );
        let rev = JobSpec::library(
            "hg38",
            b"NNNRG".to_vec(),
            vec![b"TTTTG".to_vec(), b"CCCTG".to_vec(), b"ACGTG".to_vec()],
            3,
        );
        let (df, cf) = CanonicalSpec::digest(&fwd, 512);
        let (dr, cr) = CanonicalSpec::digest(&rev, 512);
        assert_eq!(df, dr, "guide order must not change the digest");
        assert_eq!(cf, cr);
        // A different guide set is different work.
        let other = JobSpec::library(
            "hg38",
            b"NNNRG".to_vec(),
            vec![b"ACGTG".to_vec(), b"TTTTG".to_vec()],
            3,
        );
        assert_ne!(df, CanonicalSpec::digest(&other, 512).0);
        // A screen differs from the single-guide job sharing its first guide.
        assert_ne!(df, CanonicalSpec::digest(&spec(b"ACGTG"), 512).0);
    }

    #[test]
    fn leader_then_merge_then_hit() {
        let store = ResultStore::new(1 << 16);
        let (d, c) = CanonicalSpec::digest(&spec(b"ACGTG"), 512);
        let a = store.admit::<()>(d, &c, 1, || Ok(())).unwrap();
        assert!(matches!(a, Admission::Admitted));
        let a = store.admit::<()>(d, &c, 2, || panic!("duplicate must not enqueue")).unwrap();
        assert!(matches!(a, Admission::Merged));
        let followers = store.complete(d, &c, &[hit(7)]);
        assert_eq!(followers, vec![2]);
        match store.admit::<()>(d, &c, 3, || panic!("hit must not enqueue")).unwrap() {
            Admission::Hit(results) => assert_eq!(results, vec![hit(7)]),
            _ => panic!("expected a cache hit"),
        }
        let stats = store.stats();
        assert_eq!((stats.misses, stats.merges, stats.hits), (1, 1, 1));
        assert_eq!(stats.len, 1);
    }

    #[test]
    fn rejected_leaders_leave_no_trace() {
        let store = ResultStore::new(1 << 16);
        let (d, c) = CanonicalSpec::digest(&spec(b"ACGTG"), 512);
        let r = store.admit(d, &c, 1, || Err("full"));
        assert_eq!(r.err(), Some("full"));
        // The next identical submission becomes the leader, not a follower
        // of a phantom compute.
        let a = store.admit::<()>(d, &c, 2, || Ok(())).unwrap();
        assert!(matches!(a, Admission::Admitted));
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let one = approx_bytes(&[hit(1)]);
        let store = ResultStore::new(2 * one);
        let specs: Vec<_> = [b"ACGTG", b"ACGTT", b"ACGTC"]
            .iter()
            .map(|g| CanonicalSpec::digest(&spec(*g), 512))
            .collect();
        for (d, c) in &specs {
            store.admit::<()>(*d, c, 0, || Ok(())).unwrap();
            store.complete(*d, c, &[hit(1)]);
        }
        let stats = store.stats();
        assert_eq!(stats.evictions, 1, "third insert evicts the oldest");
        assert_eq!(stats.len, 2);
        assert!(stats.bytes_resident <= 2 * one);
        // The first spec was evicted; the last two still hit.
        assert!(matches!(
            store.admit::<()>(specs[0].0, &specs[0].1, 9, || Ok(())).unwrap(),
            Admission::Admitted
        ));
        assert!(matches!(
            store.admit::<()>(specs[2].0, &specs[2].1, 9, || panic!()).unwrap(),
            Admission::Hit(_)
        ));
    }

    #[test]
    fn oversized_results_pass_through_uncached() {
        let store = ResultStore::new(8);
        let (d, c) = CanonicalSpec::digest(&spec(b"ACGTG"), 512);
        store.admit::<()>(d, &c, 1, || Ok(())).unwrap();
        store.complete(d, &c, &[hit(1)]);
        assert_eq!(store.stats().insertions, 0);
        assert!(matches!(
            store.admit::<()>(d, &c, 2, || Ok(())).unwrap(),
            Admission::Admitted
        ));
    }

    #[test]
    fn withdraw_returns_followers_for_the_caller_to_fail() {
        let store = ResultStore::new(1 << 16);
        let (d, c) = CanonicalSpec::digest(&spec(b"ACGTG"), 512);
        store.admit::<()>(d, &c, 1, || Ok(())).unwrap();
        store.admit::<()>(d, &c, 2, || panic!()).unwrap();
        assert_eq!(store.withdraw(d, &c), vec![2]);
        assert!(store.complete(d, &c, &[]).is_empty());
    }
}
