//! Planned chunk→device placement: partition each assembly's chunk space
//! across the device fleet *up front*, instead of letting placement emerge
//! from LRU residency plus earliest-completion steering.
//!
//! The paper's multi-GPU pipeline splits the genome statically across
//! devices; PR 4's serving path replaced that with emergent affinity, which
//! tops out around 70% resident hits — roughly a third of batches still pay
//! the H2D upload the residency machinery exists to avoid. A [`ShardPlan`]
//! makes placement deterministic again:
//!
//! - **Range partitions, throughput-weighted.** Each registered assembly's
//!   chunk index space `[0, n)` is cut into one contiguous range per
//!   device, sized by the device's calibrated `admission_units_per_s`
//!   (scan positions per second through the measured cost model). Device
//!   `i`'s share of an `n`-chunk assembly is `n · wᵢ / Σw`, apportioned by
//!   largest remainder so the shares are exact integers summing to `n`.
//!   Contiguity is what makes one-pass prefetch possible: a device's
//!   partition of an assembly is a single chunk range, visited in order.
//! - **Consistent-hash fallback.** Chunks of assemblies the plan has never
//!   seen (registered after planning, or indices past the planned count)
//!   fall back to weighted rendezvous hashing over the same weights:
//!   each live device scores `-ln(u(device, assembly, chunk)) / wᵢ` with
//!   `u` a uniform hash in (0,1], and the minimum score owns the chunk.
//!   Ownership is stable under fleet change — removing a device moves
//!   *only* the chunks that device owned, adding one back restores them.
//! - **Minimal migration on recompute.** [`ShardPlan::migrated_from`]
//!   counts exactly the chunks whose owner changed between two plans;
//!   the service migrates those and nothing else when a device joins or
//!   leaves the fleet.
//!
//! The plan is a pure value: building one touches no locks and launches
//! nothing. The scheduler steers each batch to its chunk's planned owner
//! (spilling to earliest-completion only past a calibrated saturation
//! threshold), and workers prefetch their partition's payloads on first
//! touch of an assembly, so a whole-genome scan's completion time is a
//! function of the plan plus the calibrated device models.

use std::collections::HashMap;

use crate::results::{fnv1a64, FNV_OFFSET};

/// A deterministic chunk→device ownership map over a weighted fleet.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per-device placement weight (calibrated admission units per second);
    /// `0.0` marks a device out of the fleet — it owns nothing.
    weights: Vec<f64>,
    /// Per registered assembly: cumulative range boundaries, one entry per
    /// device plus the leading zero. Device `i` owns chunk indices
    /// `[cuts[i], cuts[i + 1])`; `cuts[n_devices]` is the chunk count.
    ranges: HashMap<String, Vec<usize>>,
}

impl ShardPlan {
    /// Partition each `(assembly name, chunk count)` in `assemblies` across
    /// `weights.len()` devices, ranges sized proportionally to `weights` by
    /// largest-remainder apportionment. A zero (or negative) weight takes
    /// the device out of the fleet: it owns no range and never wins the
    /// rendezvous fallback.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or no weight is positive.
    pub fn build(weights: &[f64], assemblies: &[(String, usize)]) -> ShardPlan {
        assert!(!weights.is_empty(), "a plan needs at least one device");
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        assert!(total > 0.0, "a plan needs at least one positive weight");
        let ranges = assemblies
            .iter()
            .map(|(name, n)| (name.clone(), cuts(weights, total, *n)))
            .collect();
        ShardPlan {
            weights: weights.to_vec(),
            ranges,
        }
    }

    /// Number of devices the plan spans (including zero-weight ones).
    pub fn device_count(&self) -> usize {
        self.weights.len()
    }

    /// The planned chunk count of `assembly`, if it was registered.
    pub fn chunk_count(&self, assembly: &str) -> Option<usize> {
        self.ranges.get(assembly).map(|c| c[self.weights.len()])
    }

    /// The device owning `chunk` of `assembly`. Registered assemblies
    /// resolve through their range partition; unknown assemblies (and
    /// indices past the registered count) resolve through weighted
    /// rendezvous hashing over the positive-weight devices.
    pub fn owner_of(&self, assembly: &str, chunk: usize) -> usize {
        if let Some(cuts) = self.ranges.get(assembly) {
            if chunk < cuts[self.weights.len()] {
                // partition_point returns how many boundaries are <= chunk;
                // cuts[0] == 0 always is, so the owner is that count - 1.
                return cuts.partition_point(|&c| c <= chunk) - 1;
            }
        }
        self.rendezvous_owner(assembly, chunk)
    }

    /// The contiguous chunk range of `assembly` that `device` owns under
    /// the range partition; `None` for unregistered assemblies (whose
    /// ownership is scattered by the hash fallback) and out-of-fleet
    /// devices.
    pub fn owned_range(&self, device: usize, assembly: &str) -> Option<std::ops::Range<usize>> {
        let cuts = self.ranges.get(assembly)?;
        (device < self.weights.len()).then(|| cuts[device]..cuts[device + 1])
    }

    /// Total registered chunks `device` owns across every registered
    /// assembly — what a scale event is about to move onto (or drain
    /// off) the device, reported alongside each `ScaleEvent`.
    pub fn owned_chunks(&self, device: usize) -> usize {
        if device >= self.weights.len() {
            return 0;
        }
        self.ranges
            .values()
            .map(|cuts| cuts[device + 1] - cuts[device])
            .sum()
    }

    /// How many registered chunks `self` places on a different device than
    /// `old` — the exact set a fleet-change migration must move (counted
    /// over `self`'s registered assemblies and chunk counts).
    pub fn migrated_from(&self, old: &ShardPlan) -> usize {
        self.ranges
            .iter()
            .map(|(name, cuts)| {
                let n = cuts[self.weights.len()];
                (0..n)
                    .filter(|&c| self.owner_of(name, c) != old.owner_of(name, c))
                    .count()
            })
            .sum()
    }

    /// Weighted rendezvous hash: every positive-weight device draws a
    /// deterministic uniform `u ∈ (0, 1]` from `(device, assembly, chunk)`
    /// and scores `-ln(u) / w`; the minimum score wins. Each device's score
    /// depends only on its own identity and weight, so removing a device
    /// reassigns exactly the chunks it owned and changes nothing else.
    fn rendezvous_owner(&self, assembly: &str, chunk: usize) -> usize {
        let mut best: Option<(usize, f64)> = None;
        for (i, &w) in self.weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            let mut h = fnv1a64(FNV_OFFSET, &(i as u64).to_le_bytes());
            h = fnv1a64(h, assembly.as_bytes());
            h = fnv1a64(h, &(chunk as u64).to_le_bytes());
            // Top 53 bits → uniform in [0, 1); nudge off zero so ln is finite.
            let u = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            let score = -u.ln() / w;
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((i, score));
            }
        }
        best.expect("build() guarantees a positive weight").0
    }
}

/// Cumulative range boundaries for an `n`-chunk assembly: device `i`'s
/// share is `n · wᵢ / total` rounded by largest remainder, so shares are
/// exact integers summing to `n` and a zero-weight device's range is empty.
fn cuts(weights: &[f64], total: f64, n: usize) -> Vec<usize> {
    let exact: Vec<f64> = weights
        .iter()
        .map(|&w| if w > 0.0 { n as f64 * w / total } else { 0.0 })
        .collect();
    let mut share: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
    let assigned: usize = share.iter().sum();
    // Hand the rounding remainder out by largest fractional part, ties to
    // the lower index; zero-weight devices have fraction 0 and an exact
    // floor, so they can only receive one if every weighted device already
    // has (impossible: remainder < number of weighted devices).
    let mut order: Vec<usize> = (0..weights.len()).filter(|&i| weights[i] > 0.0).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in order.iter().take(n - assigned) {
        share[i] += 1;
    }
    let mut cuts = Vec::with_capacity(weights.len() + 1);
    cuts.push(0);
    let mut acc = 0;
    for s in share {
        acc += s;
        cuts.push(acc);
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(weights: &[f64], n: usize) -> ShardPlan {
        ShardPlan::build(weights, &[("hg".to_string(), n)])
    }

    #[test]
    fn ranges_are_contiguous_exhaustive_and_weight_proportional() {
        let p = plan(&[1.0, 2.0, 1.0], 100);
        let r0 = p.owned_range(0, "hg").unwrap();
        let r1 = p.owned_range(1, "hg").unwrap();
        let r2 = p.owned_range(2, "hg").unwrap();
        assert_eq!(r0.len() + r1.len() + r2.len(), 100);
        assert_eq!(r0.end, r1.start);
        assert_eq!(r1.end, r2.start);
        assert_eq!(r1.len(), 50, "double weight owns half the chunks");
        for c in 0..100 {
            let o = p.owner_of("hg", c);
            assert!(p.owned_range(o, "hg").unwrap().contains(&c));
        }
    }

    #[test]
    fn largest_remainder_apportionment_is_exact() {
        // 7 chunks over weights 1:1:1 cannot split evenly; the remainder
        // goes to the lowest indices and every chunk has exactly one owner.
        let p = plan(&[1.0, 1.0, 1.0], 7);
        let lens: Vec<usize> = (0..3)
            .map(|d| p.owned_range(d, "hg").unwrap().len())
            .collect();
        assert_eq!(lens, vec![3, 2, 2]);
    }

    #[test]
    fn zero_weight_devices_own_nothing() {
        let p = plan(&[1.0, 0.0, 1.0], 64);
        assert!(p.owned_range(1, "hg").unwrap().is_empty());
        for c in 0..64 {
            assert_ne!(p.owner_of("hg", c), 1);
            assert_ne!(p.owner_of("unregistered", c), 1, "hash fallback too");
        }
    }

    #[test]
    fn unknown_assemblies_hash_consistently_and_weight_proportionally() {
        let p = plan(&[1.0, 3.0], 1);
        let owners: Vec<usize> = (0..4000).map(|c| p.owner_of("novel", c)).collect();
        assert_eq!(owners, (0..4000).map(|c| p.owner_of("novel", c)).collect::<Vec<_>>());
        let to1 = owners.iter().filter(|&&o| o == 1).count() as f64 / 4000.0;
        assert!(
            (to1 - 0.75).abs() < 0.05,
            "3x weight should own ~75% of hashed chunks, got {to1}"
        );
    }

    #[test]
    fn removing_a_device_migrates_only_its_chunks_under_the_hash_fallback() {
        let full = plan(&[1.0, 1.0, 1.0], 1);
        let without_2 = plan(&[1.0, 1.0, 0.0], 1);
        for c in 0..1000 {
            let before = full.owner_of("novel", c);
            let after = without_2.owner_of("novel", c);
            if before != 2 {
                assert_eq!(before, after, "chunk {c} moved without cause");
            } else {
                assert_ne!(after, 2);
            }
        }
    }

    #[test]
    fn migrated_from_counts_exactly_the_reassigned_chunks() {
        let before = plan(&[1.0, 1.0, 1.0, 1.0], 80);
        let after = plan(&[1.0, 1.0, 1.0, 0.0], 80);
        let moved = after.migrated_from(&before);
        let by_hand = (0..80)
            .filter(|&c| before.owner_of("hg", c) != after.owner_of("hg", c))
            .count();
        assert_eq!(moved, by_hand);
        // Device 3 owned 20 chunks; at least those must move, and the
        // survivors' leading ranges keep their prefix — strictly fewer than
        // everything migrates.
        assert!(moved >= 20);
        assert!(moved < 80);
        assert_eq!(after.migrated_from(&after), 0, "identical plans migrate nothing");
    }

    #[test]
    fn chunk_indices_past_the_registered_count_fall_back_to_the_hash() {
        let p = plan(&[1.0, 1.0], 10);
        let in_range = p.owner_of("hg", 9);
        assert!(p.owned_range(in_range, "hg").unwrap().contains(&9));
        // Index 10 is past the plan; it must still resolve, deterministically.
        assert_eq!(p.owner_of("hg", 10), p.owner_of("hg", 10));
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_weights_refuse_to_plan() {
        let _ = ShardPlan::build(&[0.0, 0.0], &[]);
    }

    #[test]
    fn owned_chunks_sums_registered_assemblies() {
        let p = ShardPlan::build(&[1.0, 3.0], &[("a".to_string(), 40), ("b".to_string(), 8)]);
        let total: usize = (0..2).map(|d| p.owned_chunks(d)).sum();
        assert_eq!(total, 48, "every registered chunk has one owner");
        assert_eq!(p.owned_chunks(0), 10 + 2);
        assert_eq!(p.owned_chunks(7), 0, "out-of-fleet devices own nothing");
    }
}
