//! Seeded, replayable open-loop traffic generation.
//!
//! A [`TraceSpec`] describes a workload as a sequence of phases, each
//! with its own arrival-rate shape ([`ArrivalShape`]), tenant mix, and
//! optional hot-spot skew over the job catalog. [`TraceSpec::generate`]
//! expands the spec into a flat, timestamped schedule of
//! [`TraceEvent`]s using only the spec's seed — the same spec always
//! produces byte-identical events, so two replays of a trace submit
//! exactly the same job sequence no matter how the pool behind the
//! service is scaled between them. That determinism is what lets the
//! autoscaling benchmarks compare a fixed pool against an elastic one
//! on result *digests*, not just counts.
//!
//! Arrivals are drawn by thinning a homogeneous Poisson process: the
//! generator proposes candidate arrivals at the phase's peak rate
//! (exponential inter-arrival gaps) and accepts each with probability
//! `rate(t) / peak`, which realizes any time-varying rate — bursty
//! on/off square waves, diurnal sinusoids — from one stream of seeded
//! uniform draws. Every candidate consumes the same number of draws
//! whether accepted or not, so the schedule never depends on float
//! rounding of earlier accept/reject decisions.

use crate::results::{fnv1a64, FNV_OFFSET};
use crate::tenant::TenantId;
use cas_offinder::OffTarget;
use genome::rng::Xoshiro256;

/// Arrival-rate shape of one trace phase, in jobs per second of trace
/// time.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalShape {
    /// Constant arrival rate for the whole phase.
    Steady {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// On/off square wave: `on_rate_per_s` for the first `duty`
    /// fraction of every `period_s`, silence for the rest.
    Bursty {
        /// Arrival rate while the burst is on.
        on_rate_per_s: f64,
        /// Length of one on+off cycle in seconds.
        period_s: f64,
        /// Fraction of each period spent bursting, in `[0, 1]`.
        duty: f64,
    },
    /// Sinusoidal rate `base * (1 + amplitude * sin(2πt / period))`,
    /// clamped at zero — a compressed diurnal curve.
    Diurnal {
        /// Mean arrival rate around which the sinusoid swings.
        base_rate_per_s: f64,
        /// Relative swing; `1.0` touches zero at the trough.
        amplitude: f64,
        /// Seconds per full cycle of simulated "day".
        period_s: f64,
    },
}

impl ArrivalShape {
    /// Instantaneous rate at `t` seconds into the phase.
    fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalShape::Steady { rate_per_s } => rate_per_s.max(0.0),
            ArrivalShape::Bursty {
                on_rate_per_s,
                period_s,
                duty,
            } => {
                let phase = (t % period_s.max(1e-9)) / period_s.max(1e-9);
                if phase < duty.clamp(0.0, 1.0) {
                    on_rate_per_s.max(0.0)
                } else {
                    0.0
                }
            }
            ArrivalShape::Diurnal {
                base_rate_per_s,
                amplitude,
                period_s,
            } => {
                let angle = 2.0 * std::f64::consts::PI * t / period_s.max(1e-9);
                (base_rate_per_s * (1.0 + amplitude * angle.sin())).max(0.0)
            }
        }
    }

    /// Peak rate over the phase — the thinning envelope.
    fn peak(&self) -> f64 {
        match *self {
            ArrivalShape::Steady { rate_per_s } => rate_per_s.max(0.0),
            ArrivalShape::Bursty { on_rate_per_s, .. } => on_rate_per_s.max(0.0),
            ArrivalShape::Diurnal {
                base_rate_per_s,
                amplitude,
                ..
            } => (base_rate_per_s * (1.0 + amplitude.abs())).max(0.0),
        }
    }
}

/// Hot-spot skew: a `fraction` of a phase's jobs are pinned to the
/// first `span` entries of the catalog instead of drawing uniformly —
/// the few assemblies/guides everyone queries during an incident.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSpot {
    /// Fraction of arrivals routed to the hot span, in `[0, 1]`.
    pub fraction: f64,
    /// Number of leading catalog entries forming the hot set.
    pub span: usize,
}

/// One phase of a trace: a duration, an arrival shape, the weighted
/// tenant mix submitting during it, and optional hot-spot skew.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase length in seconds of trace time.
    pub duration_s: f64,
    /// Arrival-rate shape over the phase.
    pub shape: ArrivalShape,
    /// Weighted tenant mix; an empty mix submits everything as the
    /// default tenant. Shifting the mix between phases models tenant
    /// churn over the day.
    pub tenants: Vec<(TenantId, u32)>,
    /// Optional hot-spot skew over the job catalog.
    pub hot_spot: Option<HotSpot>,
}

/// A complete, replayable workload description: a seed plus phases.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Seed for every random draw the generator makes.
    pub seed: u64,
    /// Phases played back to back.
    pub phases: Vec<PhaseSpec>,
}

/// One timestamped submission in a generated schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Offset from trace start, in seconds.
    pub at_s: f64,
    /// Index into the caller's job catalog.
    pub spec_index: usize,
    /// Tenant submitting the job.
    pub tenant: TenantId,
}

impl TraceSpec {
    /// Total trace length in seconds — the sum of phase durations.
    pub fn horizon_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s.max(0.0)).sum()
    }

    /// Expand the spec into a timestamped schedule over a catalog of
    /// `catalog_len` job specs. Deterministic in the spec alone: the
    /// same spec and catalog length always yield an identical event
    /// vector (verify with [`schedule_digest`]).
    ///
    /// # Panics
    /// Panics if `catalog_len` is zero while any phase has a positive
    /// peak rate — there would be arrivals with nothing to submit.
    pub fn generate(&self, catalog_len: usize) -> Vec<TraceEvent> {
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut events = Vec::new();
        let mut phase_start = 0.0f64;
        for phase in &self.phases {
            let duration = phase.duration_s.max(0.0);
            let peak = phase.shape.peak();
            if peak > 0.0 {
                assert!(catalog_len > 0, "arrivals scheduled over an empty catalog");
                let weight_total: usize = phase.tenants.iter().map(|&(_, w)| w as usize).sum();
                let mut t = 0.0f64;
                loop {
                    // Exponential gap at the envelope rate; 1 - u is in
                    // (0, 1], so the log is finite.
                    t += -(1.0 - rng.gen_f64()).ln() / peak;
                    if t >= duration {
                        break;
                    }
                    // Thinning: always burn the accept draw so the
                    // stream position is a pure function of the gap
                    // count, then the catalog and tenant draws only on
                    // acceptance.
                    let accept = rng.gen_f64() < phase.shape.rate_at(t) / peak;
                    if !accept {
                        continue;
                    }
                    let spec_index = match phase.hot_spot {
                        Some(h) if h.span > 0 && rng.gen_f64() < h.fraction => {
                            rng.gen_below(h.span.min(catalog_len))
                        }
                        _ => rng.gen_below(catalog_len),
                    };
                    let tenant = if weight_total == 0 {
                        TenantId::default()
                    } else {
                        let mut pick = rng.gen_below(weight_total);
                        let mut chosen = phase.tenants[0].0;
                        for &(tenant, w) in &phase.tenants {
                            if pick < w as usize {
                                chosen = tenant;
                                break;
                            }
                            pick -= w as usize;
                        }
                        chosen
                    };
                    events.push(TraceEvent {
                        at_s: phase_start + t,
                        spec_index,
                        tenant,
                    });
                }
            }
            phase_start += duration;
        }
        events
    }
}

/// FNV-1a digest of a generated schedule — timestamp bits, catalog
/// index, and tenant of every event in order. Two replays of the same
/// [`TraceSpec`] produce the same digest; any divergence in timing,
/// job choice, or tenant mix changes it.
pub fn schedule_digest(events: &[TraceEvent]) -> u64 {
    let mut h = FNV_OFFSET;
    for ev in events {
        h = fnv1a64(h, &ev.at_s.to_bits().to_le_bytes());
        h = fnv1a64(h, &(ev.spec_index as u64).to_le_bytes());
        h = fnv1a64(h, &ev.tenant.0.to_le_bytes());
    }
    h
}

/// Seed for [`fold_results`] chains — fold every job's records in
/// submission order starting from this.
pub const RESULT_DIGEST_SEED: u64 = FNV_OFFSET;

/// Fold one job's result records into a running digest. Records are
/// digested field by field in the order the service returned them —
/// the service's canonical ordering makes the digest identical across
/// replays if and only if every job returned byte-identical results.
pub fn fold_results(digest: u64, records: &[OffTarget]) -> u64 {
    let mut h = fnv1a64(digest, &(records.len() as u64).to_le_bytes());
    for r in records {
        h = fnv1a64(h, &r.query);
        h = fnv1a64(h, &[0]);
        h = fnv1a64(h, r.chrom.as_bytes());
        h = fnv1a64(h, &[0]);
        h = fnv1a64(h, &(r.position as u64).to_le_bytes());
        h = fnv1a64(h, format!("{:?}", r.strand).as_bytes());
        h = fnv1a64(h, &r.mismatches.to_le_bytes());
        h = fnv1a64(h, &r.site);
        h = fnv1a64(h, &[0]);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> TraceSpec {
        TraceSpec {
            seed,
            phases: vec![
                PhaseSpec {
                    duration_s: 3.0,
                    shape: ArrivalShape::Diurnal {
                        base_rate_per_s: 40.0,
                        amplitude: 0.6,
                        period_s: 3.0,
                    },
                    tenants: vec![(TenantId(1), 3), (TenantId(2), 1)],
                    hot_spot: None,
                },
                PhaseSpec {
                    duration_s: 4.0,
                    shape: ArrivalShape::Bursty {
                        on_rate_per_s: 120.0,
                        period_s: 2.0,
                        duty: 0.5,
                    },
                    tenants: vec![(TenantId(2), 1), (TenantId(3), 1)],
                    hot_spot: Some(HotSpot {
                        fraction: 0.8,
                        span: 2,
                    }),
                },
            ],
        }
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = spec(7).generate(16);
        let b = spec(7).generate(16);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = spec(7).generate(16);
        let b = spec(8).generate(16);
        assert_ne!(schedule_digest(&a), schedule_digest(&b));
    }

    #[test]
    fn events_are_ordered_and_bounded() {
        let s = spec(11);
        let events = s.generate(16);
        let horizon = s.horizon_s();
        let mut last = 0.0;
        for ev in &events {
            assert!(ev.at_s >= last, "events out of order");
            assert!(ev.at_s < horizon);
            assert!(ev.spec_index < 16);
            last = ev.at_s;
        }
    }

    #[test]
    fn bursty_off_windows_are_silent() {
        let s = TraceSpec {
            seed: 3,
            phases: vec![PhaseSpec {
                duration_s: 10.0,
                shape: ArrivalShape::Bursty {
                    on_rate_per_s: 50.0,
                    period_s: 2.0,
                    duty: 0.25,
                },
                tenants: vec![],
                hot_spot: None,
            }],
        };
        let events = s.generate(4);
        assert!(!events.is_empty());
        for ev in &events {
            let phase = (ev.at_s % 2.0) / 2.0;
            assert!(phase < 0.25, "arrival at {:.3}s falls in an off window", ev.at_s);
            assert_eq!(ev.tenant, TenantId::default());
        }
    }

    #[test]
    fn hot_spot_skews_catalog_draws() {
        let s = TraceSpec {
            seed: 5,
            phases: vec![PhaseSpec {
                duration_s: 20.0,
                shape: ArrivalShape::Steady { rate_per_s: 50.0 },
                tenants: vec![],
                hot_spot: Some(HotSpot {
                    fraction: 0.9,
                    span: 2,
                }),
            }],
        };
        let events = s.generate(100);
        let hot = events.iter().filter(|e| e.spec_index < 2).count();
        let frac = hot as f64 / events.len() as f64;
        // 90% pinned + ~2% of uniform draws landing there anyway.
        assert!(frac > 0.8, "hot fraction {frac:.3} too low");
    }

    #[test]
    fn tenant_mix_tracks_weights() {
        let s = TraceSpec {
            seed: 9,
            phases: vec![PhaseSpec {
                duration_s: 20.0,
                shape: ArrivalShape::Steady { rate_per_s: 50.0 },
                tenants: vec![(TenantId(1), 3), (TenantId(2), 1)],
                hot_spot: None,
            }],
        };
        let events = s.generate(8);
        let t1 = events.iter().filter(|e| e.tenant == TenantId(1)).count();
        let frac = t1 as f64 / events.len() as f64;
        assert!((frac - 0.75).abs() < 0.08, "tenant-1 share {frac:.3}");
    }

    #[test]
    fn diurnal_rate_modulates_density() {
        let s = TraceSpec {
            seed: 13,
            phases: vec![PhaseSpec {
                duration_s: 8.0,
                shape: ArrivalShape::Diurnal {
                    base_rate_per_s: 60.0,
                    amplitude: 0.9,
                    period_s: 8.0,
                },
                tenants: vec![],
                hot_spot: None,
            }],
        };
        let events = s.generate(4);
        // First half-cycle (sin > 0) must out-arrive the second.
        let first = events.iter().filter(|e| e.at_s < 4.0).count();
        let second = events.len() - first;
        assert!(first > second * 2, "diurnal peak {first} vs trough {second}");
    }

    #[test]
    fn result_digest_orders_and_separates_fields() {
        let rec = |chrom: &str, pos: usize| OffTarget {
            query: b"ACGT".to_vec(),
            chrom: chrom.into(),
            position: pos,
            strand: cas_offinder::Strand::Forward,
            mismatches: 1,
            site: b"ACGa".to_vec(),
        };
        let a = fold_results(RESULT_DIGEST_SEED, &[rec("chr1", 5), rec("chr2", 9)]);
        let b = fold_results(RESULT_DIGEST_SEED, &[rec("chr2", 9), rec("chr1", 5)]);
        assert_ne!(a, b, "digest must be order-sensitive");
        let c = fold_results(RESULT_DIGEST_SEED, &[rec("chr1", 5), rec("chr2", 9)]);
        assert_eq!(a, c);
    }
}
