//! Multi-tenant identity, weights, and quotas.
//!
//! Every [`crate::JobSpec`] carries a [`TenantId`]; the admission queue
//! keeps one FIFO sub-queue per tenant and drains them by weighted deficit
//! round-robin (see [`crate::queue`]), so a tenant's share of device time
//! follows its configured *weight* rather than its submission rate. On top
//! of the drain-side weighting, each tenant has an **in-flight cost
//! quota** — admitted-but-unfinished work, in the same calibrated cost
//! units the queue budget charges — so a single tenant can never occupy
//! the whole backlog: once its quota is full, further submissions are
//! *shed* with a typed retry hint while other tenants keep being admitted.
//!
//! Quotas default to the tenant's weighted share of the queue's cost
//! budget, which is what makes load shedding graceful *and* ordered:
//! the lowest-weight tenants have the smallest quotas, hit them first
//! under overload, and are therefore shed first, while every shed job
//! provably belonged to a tenant at or over its quota.
//!
//! The ledger half of this module accumulates the per-tenant counters the
//! service surfaces through [`crate::metrics`]: admitted/shed/completed
//! jobs, goodput in cost units, deadline misses, and completion-latency
//! samples reduced to p50/p95/p99.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::metrics::TenantReport;

/// A tenant's identity. `TenantId::default()` (id 0) is the anonymous
/// tenant every spec starts with; ids are small and assigned by the
/// embedding layer (e.g. one per API key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Per-tenant QoS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Who the parameters apply to.
    pub id: TenantId,
    /// Fair-queuing weight: under contention a tenant receives device
    /// time proportional to its weight (weighted deficit round-robin with
    /// the calibrated per-job cost as the quantum currency).
    pub weight: u32,
    /// In-flight cost quota: admitted-but-unfinished work above this is
    /// shed. `None` derives the tenant's weighted share of the queue's
    /// cost budget.
    pub quota_cost: Option<u64>,
}

impl TenantConfig {
    /// A tenant with `weight` and the derived (weighted-share) quota.
    pub fn weighted(id: TenantId, weight: u32) -> Self {
        TenantConfig {
            id,
            weight,
            quota_cost: None,
        }
    }
}

/// Resolved per-tenant parameters: what the queue consults on every
/// admission and every deficit-round-robin turn.
#[derive(Debug, Clone)]
pub(crate) struct TenantTable {
    entries: HashMap<TenantId, (u32, u64)>,
    /// Weight and quota for tenants absent from the config.
    default_weight: u32,
    default_quota: u64,
}

impl TenantTable {
    /// Resolve `configs` against the queue's `cost_budget`.
    ///
    /// A configured tenant's derived quota is `budget × weight / Σweights`.
    /// With an empty config (the single-tenant case) every tenant gets
    /// weight 1 and an unlimited quota — the global cost budget is then
    /// the only backpressure, which is the pre-tenancy behaviour. With a
    /// non-empty config, unconfigured tenants get weight 1 and the share
    /// a weight-1 tenant would have had.
    pub fn resolve(configs: &[TenantConfig], cost_budget: u64) -> Self {
        if configs.is_empty() {
            return TenantTable {
                entries: HashMap::new(),
                default_weight: 1,
                default_quota: u64::MAX,
            };
        }
        let total_weight: u64 = configs.iter().map(|c| u64::from(c.weight.max(1))).sum();
        let entries = configs
            .iter()
            .map(|c| {
                let weight = c.weight.max(1);
                let quota = c
                    .quota_cost
                    .unwrap_or_else(|| quota_share(cost_budget, weight, total_weight));
                (c.id, (weight, quota))
            })
            .collect();
        TenantTable {
            entries,
            default_weight: 1,
            default_quota: quota_share(cost_budget, 1, total_weight),
        }
    }

    pub fn weight(&self, id: TenantId) -> u32 {
        self.entries.get(&id).map_or(self.default_weight, |e| e.0)
    }

    pub fn quota(&self, id: TenantId) -> u64 {
        self.entries.get(&id).map_or(self.default_quota, |e| e.1)
    }
}

fn quota_share(budget: u64, weight: u32, total_weight: u64) -> u64 {
    ((budget as u128 * u128::from(weight)) / u128::from(total_weight.max(1))).max(1) as u64
}

/// One tenant's accumulated counters.
#[derive(Debug, Default)]
struct TenantStats {
    admitted: u64,
    shed: u64,
    completed: u64,
    goodput_cost: u64,
    deadline_misses: u64,
    /// Wall-clock submit-to-completion latencies, nanoseconds. Unsorted;
    /// quantiles are computed at report time.
    latencies_ns: Vec<u64>,
}

/// Crate-internal per-tenant accounting: admission and completion paths
/// record into it, [`crate::Service::metrics`] reduces it to
/// [`TenantReport`] rows.
#[derive(Debug, Default)]
pub(crate) struct TenantLedger {
    inner: Mutex<HashMap<TenantId, TenantStats>>,
}

impl TenantLedger {
    pub fn admitted(&self, id: TenantId) {
        self.inner.lock().unwrap().entry(id).or_default().admitted += 1;
    }

    pub fn shed(&self, id: TenantId) {
        self.inner.lock().unwrap().entry(id).or_default().shed += 1;
    }

    pub fn completed(&self, id: TenantId, cost: u64, latency: Duration, deadline_missed: bool) {
        let mut inner = self.inner.lock().unwrap();
        let stats = inner.entry(id).or_default();
        stats.completed += 1;
        stats.goodput_cost += cost;
        stats.deadline_misses += u64::from(deadline_missed);
        stats.latencies_ns.push(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Reduce to report rows, sorted by tenant id for deterministic output.
    pub fn report(&self, table: &TenantTable) -> Vec<TenantReport> {
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<TenantReport> = inner
            .iter()
            .map(|(&id, stats)| {
                let mut sorted = stats.latencies_ns.clone();
                sorted.sort_unstable();
                TenantReport {
                    id,
                    weight: table.weight(id),
                    admitted: stats.admitted,
                    shed: stats.shed,
                    completed: stats.completed,
                    goodput_cost: stats.goodput_cost,
                    deadline_misses: stats.deadline_misses,
                    latency_p50_ns: quantile(&sorted, 0.50),
                    latency_p95_ns: quantile(&sorted, 0.95),
                    latency_p99_ns: quantile(&sorted, 0.99),
                }
            })
            .collect();
        rows.sort_by_key(|r| r.id);
        rows
    }
}

/// Nearest-rank quantile over an ascending-sorted slice; 0 when empty.
/// Shared with the windowed latency accounting in [`crate::metrics`] so
/// per-tenant and per-window percentiles agree on rank semantics.
pub(crate) fn quantile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_config_means_single_tenant_semantics() {
        let table = TenantTable::resolve(&[], 1000);
        assert_eq!(table.weight(TenantId(7)), 1);
        assert_eq!(table.quota(TenantId(7)), u64::MAX, "budget is the only limit");
    }

    #[test]
    fn derived_quotas_are_weighted_shares_of_the_budget() {
        let configs = [
            TenantConfig::weighted(TenantId(1), 4),
            TenantConfig::weighted(TenantId(2), 2),
            TenantConfig::weighted(TenantId(3), 1),
        ];
        let table = TenantTable::resolve(&configs, 7000);
        assert_eq!(table.quota(TenantId(1)), 4000);
        assert_eq!(table.quota(TenantId(2)), 2000);
        assert_eq!(table.quota(TenantId(3)), 1000);
        // Unconfigured tenants get a weight-1 share, not a free ride.
        assert_eq!(table.weight(TenantId(9)), 1);
        assert_eq!(table.quota(TenantId(9)), 1000);
    }

    #[test]
    fn explicit_quotas_override_the_derived_share() {
        let configs = [TenantConfig {
            id: TenantId(1),
            weight: 1,
            quota_cost: Some(123),
        }];
        let table = TenantTable::resolve(&configs, 7000);
        assert_eq!(table.quota(TenantId(1)), 123);
    }

    #[test]
    fn ledger_reduces_latencies_to_quantiles() {
        let ledger = TenantLedger::default();
        let t = TenantId(5);
        ledger.admitted(t);
        ledger.shed(t);
        for ms in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            ledger.completed(t, 7, Duration::from_millis(ms), ms == 100);
        }
        let table = TenantTable::resolve(&[TenantConfig::weighted(t, 3)], 100);
        let rows = ledger.report(&table);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.weight, 3);
        assert_eq!(row.admitted, 1);
        assert_eq!(row.shed, 1);
        assert_eq!(row.completed, 10);
        assert_eq!(row.goodput_cost, 70);
        assert_eq!(row.deadline_misses, 1);
        assert_eq!(row.latency_p50_ns, 50_000_000);
        assert_eq!(row.latency_p95_ns, 100_000_000);
        assert_eq!(row.latency_p99_ns, 100_000_000);
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.5), 7);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.5), 2);
        assert_eq!(quantile(&[1, 2, 3, 4], 0.99), 4);
    }
}
