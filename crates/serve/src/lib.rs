//! # casoff-serve — batch serving for off-target search
//!
//! A multi-tenant serving layer over the `cas-offinder` pipelines: many
//! concurrent query jobs (guide + PAM + mismatch threshold + assembly) are
//! admitted through a cost-budgeted priority queue, **coalesced** by the
//! [batcher] so jobs scanning the same genome chunk share one chunk upload
//! and one finder launch, scheduled across a pool of simulated devices
//! (mixing OpenCL and SYCL pipelines on Radeon VII / MI60 / MI100 specs)
//! by *earliest predicted completion* under a per-device cost model, with
//! work stealing and occupancy-derived in-flight limits, and fed from a
//! byte-budgeted LRU [cache] of packed genome chunks that the runners
//! upload packed and decode on-device — **2-bit** while a chunk's
//! exceptions stay rare and compare-safe, **4-bit nibbles** for
//! exception-dense chunks so none of them falls back to the char comparer.
//! Bulge-aware searches
//! (`JobSpec::with_bulges`) are expanded into per-variant unit searches by
//! the batcher and served as one job.
//!
//! Two further layers avoid repeating work the pool already did. Devices
//! keep a budget of **resident chunk payloads** (`resident_chunks`): the
//! scheduler prices uploads at zero for chunks a device still holds, so
//! repeat chunks steer back to the device that uploaded them and the
//! runner skips the transfer outright. And a **content-addressed result
//! store** (`result_cache_bytes`) keyed by a canonical digest of the spec
//! serves repeat jobs straight from memory — concurrent identical specs
//! coalesce onto a single in-flight compute. The per-device cost model is
//! calibrated at startup from profiler-measured kernel rates rather than
//! hand-set constants.
//!
//! The front end is **multi-tenant and QoS-aware**. Every job carries a
//! [`TenantId`]; the admission [queue] keeps one FIFO sub-queue per tenant
//! and drains them by *weighted deficit round-robin* with the calibrated
//! per-job cost as the quantum currency, so device time follows configured
//! [`TenantConfig`] weights rather than submission rates. Per-tenant
//! in-flight quotas (defaulting to the weighted share of the cost budget)
//! make load shedding graceful and ordered: over-quota tenants shed first,
//! with a typed [`SubmitError::Shed`] retry hint. Jobs may carry a
//! deadline ([`JobSpec::with_deadline`]); admission consults the
//! calibrated device models and rejects infeasible deadlines up front
//! ([`SubmitError::DeadlineInfeasible`]). Completion is non-blocking
//! ([frontend]): [`Service::poll`] / [`Service::try_wait`] never park,
//! [`Service::on_complete`] registers a runtime-agnostic completion
//! callback, and the blocking [`Service::wait`] is a thin wrapper over the
//! same hub.
//!
//! Results are byte-identical to the serial pipelines regardless of
//! arrival order or scheduling (see [`service`] for the argument), and the
//! service exposes [metrics] for admission, coalescing, cache
//! effectiveness, per-device utilization, and per-tenant QoS (goodput,
//! shed rate, deadline misses, latency percentiles).
//!
//! For load testing and capacity work, [trace] generates seeded,
//! replayable open-loop traffic (bursty / diurnal / tenant-shift /
//! hot-spot phases; the same [`TraceSpec`] always submits byte-identical
//! job sequences), [metrics] keeps a ring of time-bucketed latency
//! windows (p50/p95/p99 and queue-depth timelines via
//! [`Service::latency_windows`]), and [autoscale] scales the device pool
//! against a predicted-queue-delay SLO — drain-before-retire on the way
//! down, minimal-migration shard replans both ways — so the fleet
//! follows load instead of being sized for the peak.
//!
//! ```
//! use casoff_serve::{JobSpec, Service, ServiceConfig};
//!
//! let assembly = genome::synth::hg38_mini(0.002);
//! let mut config = ServiceConfig::paper_pool();
//! config.chunk_size = 1 << 10;
//! let service = Service::start(config, vec![assembly]);
//! let id = service
//!     .submit(JobSpec::new(
//!         "hg38-mini",
//!         b"NNNNNNNNNRG".to_vec(),
//!         b"ACGTACGTNNN".to_vec(),
//!         3,
//!     ))
//!     .unwrap();
//! let sites = service.wait(id).unwrap();
//! println!("{} sites; {}", sites.len(), service.metrics());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscale;
pub mod batcher;
pub mod cache;
mod calibrate;
pub mod candidates;
pub mod frontend;
pub mod job;
pub mod metrics;
pub mod queue;
mod results;
mod scheduler;
pub mod service;
pub mod shard;
pub mod tenant;
pub mod trace;

pub use autoscale::{
    AutoscaleConfig, AutoscaleReport, Autoscaler, Controller, Decision, ScaleDirection,
    ScaleEvent, WindowObservation,
};
pub use cache::{CacheStats, ChunkEncoding, GenomeCache, NIBBLE_DENSITY_THRESHOLD};
pub use candidates::{CandidateCache, CandidateKey, CandidateLookup, CandidateStats};
pub use frontend::{Poll, Ticket, WaitError};
pub use job::{Job, JobId, JobSpec, Priority};
pub use metrics::{
    DeviceReport, LatencyWindows, MetricsReport, TenantReport, VariantReport, WindowReport,
};
pub use results::ResultCacheStats;
pub use queue::{FairJobQueue, QueueError};
pub use scheduler::Placement;
pub use service::{DeviceSlot, Service, ServiceConfig, SubmitError};
pub use shard::ShardPlan;
pub use tenant::{TenantConfig, TenantId};
pub use trace::{ArrivalShape, HotSpot, PhaseSpec, TraceEvent, TraceSpec};
