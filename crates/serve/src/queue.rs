//! The bounded admission queue: two FIFO lanes (high/normal priority)
//! behind one capacity limit, with rejection — not blocking — when full.
//!
//! Admission control happens here: a tenant that submits faster than the
//! device pool drains sees `QueueFull` and must back off, so one tenant
//! cannot grow the service's memory without bound.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::job::{Job, Priority};

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The queue is at capacity; retry after backing off.
    Full,
    /// The service is shutting down; no further jobs are accepted.
    Closed,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full => write!(f, "admission queue is full"),
            QueueError::Closed => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for QueueError {}

#[derive(Default)]
struct Lanes {
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
    depth_high_water: usize,
    closed: bool,
}

impl Lanes {
    fn depth(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

/// A capacity-bounded, two-lane FIFO job queue.
pub(crate) struct BoundedJobQueue {
    capacity: usize,
    lanes: Mutex<Lanes>,
    available: Condvar,
}

impl BoundedJobQueue {
    /// An empty queue admitting at most `capacity` queued jobs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedJobQueue {
            capacity,
            lanes: Mutex::new(Lanes::default()),
            available: Condvar::new(),
        }
    }

    /// Enqueue `job`, rejecting instead of blocking when at capacity.
    pub fn try_submit(&self, job: Job) -> Result<(), QueueError> {
        let mut lanes = self.lanes.lock().unwrap();
        if lanes.closed {
            return Err(QueueError::Closed);
        }
        if lanes.depth() >= self.capacity {
            return Err(QueueError::Full);
        }
        match job.spec.priority {
            Priority::High => lanes.high.push_back(job),
            Priority::Normal => lanes.normal.push_back(job),
        }
        let depth = lanes.depth();
        lanes.depth_high_water = lanes.depth_high_water.max(depth);
        drop(lanes);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue the next job (high lane first), blocking while the queue is
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<Job> {
        let mut lanes = self.lanes.lock().unwrap();
        loop {
            if let Some(job) = lanes.high.pop_front().or_else(|| lanes.normal.pop_front()) {
                return Some(job);
            }
            if lanes.closed {
                return None;
            }
            lanes = self.available.wait(lanes).unwrap();
        }
    }

    /// Dequeue without blocking; `None` when currently empty.
    pub fn try_pop(&self) -> Option<Job> {
        let mut lanes = self.lanes.lock().unwrap();
        lanes.high.pop_front().or_else(|| lanes.normal.pop_front())
    }

    /// Stop admissions and wake blocked consumers; queued jobs still drain.
    pub fn close(&self) {
        self.lanes.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Deepest the queue has ever been.
    pub fn depth_high_water(&self) -> usize {
        self.lanes.lock().unwrap().depth_high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn job(id: u64, priority: Priority) -> Job {
        let mut spec = JobSpec::new("a", b"NGG".to_vec(), b"ANN".to_vec(), 1);
        spec.priority = priority;
        Job { id, spec }
    }

    #[test]
    fn admission_rejects_past_capacity() {
        let q = BoundedJobQueue::new(2);
        q.try_submit(job(0, Priority::Normal)).unwrap();
        q.try_submit(job(1, Priority::Normal)).unwrap();
        assert_eq!(
            q.try_submit(job(2, Priority::Normal)),
            Err(QueueError::Full)
        );
        // Draining one slot re-opens admission.
        assert_eq!(q.pop().unwrap().id, 0);
        q.try_submit(job(2, Priority::Normal)).unwrap();
        assert_eq!(q.depth_high_water(), 2);
    }

    #[test]
    fn high_priority_jumps_the_normal_lane() {
        let q = BoundedJobQueue::new(8);
        q.try_submit(job(0, Priority::Normal)).unwrap();
        q.try_submit(job(1, Priority::High)).unwrap();
        q.try_submit(job(2, Priority::Normal)).unwrap();
        q.try_submit(job(3, Priority::High)).unwrap();
        let order: Vec<u64> = (0..4).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, [1, 3, 0, 2], "high lane FIFO, then normal FIFO");
    }

    #[test]
    fn close_rejects_new_work_but_drains_old() {
        let q = BoundedJobQueue::new(4);
        q.try_submit(job(0, Priority::Normal)).unwrap();
        q.close();
        assert_eq!(
            q.try_submit(job(1, Priority::Normal)),
            Err(QueueError::Closed)
        );
        assert_eq!(q.pop().unwrap().id, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_a_producer_arrives() {
        let q = std::sync::Arc::new(BoundedJobQueue::new(4));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop().map(|j| j.id));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_submit(job(7, Priority::Normal)).unwrap();
        assert_eq!(t.join().unwrap(), Some(7));
    }
}
