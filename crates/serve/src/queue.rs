//! The bounded admission queue: two FIFO lanes (high/normal priority)
//! behind one estimated-cost budget, with rejection — not blocking — when
//! over budget.
//!
//! Admission control happens here, and it is *cost*-aware rather than
//! count-aware: each job carries an estimated work cost (assembly bases ×
//! search variants), and the queue admits jobs until the summed cost of
//! queued work exceeds the budget. A tenant submitting a few whole-genome
//! bulge sweeps hits backpressure as fast as one submitting hundreds of
//! small jobs, so neither can grow the service's backlog without bound.
//! One exception keeps the service live: a job dearer than the whole
//! budget is still admitted when the queue is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::job::{Job, Priority};

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The queued cost budget is exhausted; retry after backing off.
    Full,
    /// The service is shutting down; no further jobs are accepted.
    Closed,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Full => write!(f, "admission queue cost budget is exhausted"),
            QueueError::Closed => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for QueueError {}

#[derive(Default)]
struct Lanes {
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
    /// Summed cost of queued (not yet popped) jobs.
    cost_queued: u64,
    depth_high_water: usize,
    closed: bool,
}

impl Lanes {
    fn depth(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

/// A cost-budgeted, two-lane FIFO job queue.
pub(crate) struct BoundedJobQueue {
    cost_budget: u64,
    lanes: Mutex<Lanes>,
    available: Condvar,
}

impl BoundedJobQueue {
    /// An empty queue admitting jobs while their summed cost stays within
    /// `cost_budget`.
    pub fn new(cost_budget: u64) -> Self {
        assert!(cost_budget > 0, "queue cost budget must be positive");
        BoundedJobQueue {
            cost_budget,
            lanes: Mutex::new(Lanes::default()),
            available: Condvar::new(),
        }
    }

    /// Enqueue `job`, rejecting instead of blocking when its cost would
    /// push the queued total past the budget (unless the queue is empty —
    /// a single oversized job must still be servable).
    pub fn try_submit(&self, job: Job) -> Result<(), QueueError> {
        let mut lanes = self.lanes.lock().unwrap();
        if lanes.closed {
            return Err(QueueError::Closed);
        }
        let over = lanes.cost_queued.saturating_add(job.cost) > self.cost_budget;
        if over && lanes.depth() > 0 {
            return Err(QueueError::Full);
        }
        lanes.cost_queued = lanes.cost_queued.saturating_add(job.cost);
        match job.spec.priority {
            Priority::High => lanes.high.push_back(job),
            Priority::Normal => lanes.normal.push_back(job),
        }
        let depth = lanes.depth();
        lanes.depth_high_water = lanes.depth_high_water.max(depth);
        drop(lanes);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue the next job (high lane first), blocking while the queue is
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<Job> {
        let mut lanes = self.lanes.lock().unwrap();
        loop {
            if let Some(job) = lanes.high.pop_front().or_else(|| lanes.normal.pop_front()) {
                lanes.cost_queued = lanes.cost_queued.saturating_sub(job.cost);
                return Some(job);
            }
            if lanes.closed {
                return None;
            }
            lanes = self.available.wait(lanes).unwrap();
        }
    }

    /// Dequeue without blocking; `None` when currently empty.
    pub fn try_pop(&self) -> Option<Job> {
        let mut lanes = self.lanes.lock().unwrap();
        let job = lanes.high.pop_front().or_else(|| lanes.normal.pop_front());
        if let Some(job) = &job {
            lanes.cost_queued = lanes.cost_queued.saturating_sub(job.cost);
        }
        job
    }

    /// Stop admissions and wake blocked consumers; queued jobs still drain.
    pub fn close(&self) {
        self.lanes.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Deepest (in jobs) the queue has ever been.
    pub fn depth_high_water(&self) -> usize {
        self.lanes.lock().unwrap().depth_high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn job(id: u64, priority: Priority, cost: u64) -> Job {
        let mut spec = JobSpec::new("a", b"NGG".to_vec(), b"ANN".to_vec(), 1);
        spec.priority = priority;
        Job { id, spec, cost }
    }

    #[test]
    fn admission_rejects_past_the_cost_budget() {
        let q = BoundedJobQueue::new(25);
        q.try_submit(job(0, Priority::Normal, 10)).unwrap();
        q.try_submit(job(1, Priority::Normal, 10)).unwrap();
        assert_eq!(
            q.try_submit(job(2, Priority::Normal, 10)),
            Err(QueueError::Full),
            "30 > 25: third job is rejected even though only 2 are queued"
        );
        // A cheap job still fits under the remaining budget.
        q.try_submit(job(3, Priority::Normal, 5)).unwrap();
        // Draining releases budget.
        assert_eq!(q.pop().unwrap().id, 0);
        q.try_submit(job(2, Priority::Normal, 10)).unwrap();
        assert_eq!(q.depth_high_water(), 3);
    }

    #[test]
    fn an_oversized_job_is_admitted_only_when_the_queue_is_empty() {
        let q = BoundedJobQueue::new(10);
        q.try_submit(job(0, Priority::Normal, 1_000)).unwrap();
        assert_eq!(
            q.try_submit(job(1, Priority::Normal, 1)),
            Err(QueueError::Full)
        );
        assert_eq!(q.pop().unwrap().id, 0);
        q.try_submit(job(1, Priority::Normal, 1)).unwrap();
    }

    #[test]
    fn high_priority_jumps_the_normal_lane() {
        let q = BoundedJobQueue::new(80);
        q.try_submit(job(0, Priority::Normal, 10)).unwrap();
        q.try_submit(job(1, Priority::High, 10)).unwrap();
        q.try_submit(job(2, Priority::Normal, 10)).unwrap();
        q.try_submit(job(3, Priority::High, 10)).unwrap();
        let order: Vec<u64> = (0..4).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, [1, 3, 0, 2], "high lane FIFO, then normal FIFO");
    }

    #[test]
    fn close_rejects_new_work_but_drains_old() {
        let q = BoundedJobQueue::new(40);
        q.try_submit(job(0, Priority::Normal, 10)).unwrap();
        q.close();
        assert_eq!(
            q.try_submit(job(1, Priority::Normal, 10)),
            Err(QueueError::Closed)
        );
        assert_eq!(q.pop().unwrap().id, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_a_producer_arrives() {
        let q = std::sync::Arc::new(BoundedJobQueue::new(40));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop().map(|j| j.id));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_submit(job(7, Priority::Normal, 10)).unwrap();
        assert_eq!(t.join().unwrap(), Some(7));
    }
}
