//! The bounded admission queue: per-tenant FIFO sub-queues (each with a
//! high/normal priority lane) drained by **weighted deficit round-robin**,
//! behind one estimated-cost budget and per-tenant in-flight quotas, with
//! typed shedding — not blocking — when either limit is hit.
//!
//! Admission control happens here, and it is *cost*-aware rather than
//! count-aware: each job carries an estimated work cost (assembly bases ×
//! search variants), and that one number is currency for all three
//! mechanisms:
//!
//! - **Budget.** The summed cost of queued work may not exceed the queue
//!   budget (a job dearer than the whole budget is still admitted when the
//!   queue is empty, so the service stays live).
//! - **Quota.** Each tenant may not hold more than its quota of
//!   *in-flight* cost — admitted but not yet finished, which includes jobs
//!   already popped and running. Quotas default to the tenant's weighted
//!   share of the budget (see [`crate::tenant`]), so under overload the
//!   lowest-weight tenants saturate first and are shed first, and every
//!   shed job belongs to a tenant at or over its quota.
//! - **Quantum.** The pop side serves tenants by deficit round-robin:
//!   each tenant accrues deficit in proportion to its weight, and pays its
//!   head job's cost to serve it, so drained cost per tenant converges to
//!   the weight ratio regardless of submission rates. Priority lanes are
//!   per-tenant: a tenant's high-priority jobs jump its own normal lane,
//!   never another tenant's turn.
//!
//! Shedding is typed: [`QueueError::Shed`] carries `retry_after_cost`, the
//! amount of queued/in-flight cost that must drain before an identical
//! submission can succeed — a backoff hint instead of a blind "full".

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

use crate::job::{Job, Priority};
use crate::tenant::{TenantConfig, TenantId, TenantTable};

/// Why a submission was not enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The job was load-shed: the queue cost budget or the tenant's
    /// in-flight quota is exhausted. `retry_after_cost` is how much cost
    /// must drain (queue-wide for budget sheds, the tenant's own for quota
    /// sheds) before the same submission can be admitted.
    Shed {
        /// Cost units that must drain before retrying.
        retry_after_cost: u64,
    },
    /// The service is shutting down; no further jobs are accepted.
    Closed,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Shed { retry_after_cost } => write!(
                f,
                "load shed: retry after {retry_after_cost} cost units drain"
            ),
            QueueError::Closed => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for QueueError {}

/// One tenant's FIFO sub-queue (two priority lanes) plus its fair-queuing
/// and quota accounting.
#[derive(Default)]
struct TenantQueue {
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
    /// Deficit-round-robin credit, in cost units. Accrues in proportion
    /// to the tenant's weight; serving the head job spends its cost.
    deficit: u64,
    /// Cost queued here but not yet popped.
    queued_cost: u64,
    /// Cost admitted but not yet reported finished (queued + running);
    /// what the tenant's quota bounds.
    inflight_cost: u64,
}

impl TenantQueue {
    fn head_cost(&self) -> Option<u64> {
        self.high
            .front()
            .or_else(|| self.normal.front())
            .map(|j| j.cost)
    }

    fn pop_head(&mut self) -> Option<Job> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }

    fn is_drained(&self) -> bool {
        self.high.is_empty() && self.normal.is_empty()
    }
}

#[derive(Default)]
struct State {
    tenants: HashMap<TenantId, TenantQueue>,
    /// Round-robin ring of tenants with queued jobs, in activation order.
    active: VecDeque<TenantId>,
    /// Summed cost of queued (not yet popped) jobs, all tenants.
    cost_queued: u64,
    /// Summed cost of admitted-but-unfinished jobs, all tenants.
    cost_inflight: u64,
    depth: usize,
    depth_high_water: usize,
    sheds_quota: u64,
    sheds_budget: u64,
    closed: bool,
}

/// A cost-budgeted, tenant-fair job queue: weighted deficit round-robin
/// across per-tenant sub-queues, per-tenant in-flight quotas, and typed
/// load shedding.
pub struct FairJobQueue {
    cost_budget: u64,
    table: TenantTable,
    state: Mutex<State>,
    available: Condvar,
}

impl FairJobQueue {
    /// An empty queue admitting jobs while their summed cost stays within
    /// `cost_budget` and each tenant stays within its quota from
    /// `tenants` (an empty slice means single-tenant semantics: weight 1,
    /// budget-only backpressure).
    pub fn new(cost_budget: u64, tenants: &[TenantConfig]) -> Self {
        assert!(cost_budget > 0, "queue cost budget must be positive");
        FairJobQueue {
            cost_budget,
            table: TenantTable::resolve(tenants, cost_budget),
            state: Mutex::new(State::default()),
            available: Condvar::new(),
        }
    }

    /// Enqueue `job`, shedding instead of blocking when its cost would
    /// push the tenant past its in-flight quota or the queued total past
    /// the budget. A job is always admitted into an empty queue — a
    /// single oversized job must still be servable.
    pub fn try_submit(&self, job: Job) -> Result<(), QueueError> {
        let tenant = job.spec.tenant;
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(QueueError::Closed);
        }
        // Quota first: with derived (weighted-share) quotas summing to the
        // budget, queued ≤ in-flight means the quota always binds before
        // the budget, so sheds are attributable to the over-quota tenant
        // rather than to global pressure. A tenant with nothing in flight
        // bypasses its quota (a job dearer than the whole quota must still
        // be servable), mirroring the empty-queue budget exception below.
        let tenant_inflight = state
            .tenants
            .get(&tenant)
            .map_or(0, |tq| tq.inflight_cost);
        if tenant_inflight > 0 {
            let quota = self.table.quota(tenant);
            let want = tenant_inflight.saturating_add(job.cost);
            if want > quota {
                state.sheds_quota += 1;
                return Err(QueueError::Shed {
                    retry_after_cost: want - quota,
                });
            }
        }
        if state.depth > 0 {
            let queued = state.cost_queued.saturating_add(job.cost);
            if queued > self.cost_budget {
                state.sheds_budget += 1;
                return Err(QueueError::Shed {
                    retry_after_cost: queued - self.cost_budget,
                });
            }
        }
        let tq = state.tenants.entry(tenant).or_default();
        let was_drained = tq.is_drained();
        tq.queued_cost = tq.queued_cost.saturating_add(job.cost);
        tq.inflight_cost = tq.inflight_cost.saturating_add(job.cost);
        match job.spec.priority {
            Priority::High => tq.high.push_back(job.clone()),
            Priority::Normal => tq.normal.push_back(job.clone()),
        }
        if was_drained {
            state.active.push_back(tenant);
        }
        state.cost_queued = state.cost_queued.saturating_add(job.cost);
        state.cost_inflight = state.cost_inflight.saturating_add(job.cost);
        state.depth += 1;
        state.depth_high_water = state.depth_high_water.max(state.depth);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Serve the next job by weighted deficit round-robin. Assumes
    /// `state.depth > 0`.
    ///
    /// Deficits advance in lockstep — when no active tenant can afford its
    /// head job, every deficit jumps by the minimum whole number of quanta
    /// (quantum = weight) that lets some tenant afford, so a pop is
    /// O(active tenants) regardless of job costs, and drained cost per
    /// tenant stays proportional to weight.
    fn pop_locked(&self, state: &mut State) -> Job {
        loop {
            for _ in 0..state.active.len() {
                let tenant = *state.active.front().expect("depth > 0 but no active tenant");
                let tq = state.tenants.get_mut(&tenant).expect("active tenant has a queue");
                let head = tq.head_cost().expect("active tenant has a head job");
                if tq.deficit >= head {
                    let job = tq.pop_head().expect("head exists");
                    tq.deficit -= job.cost;
                    tq.queued_cost = tq.queued_cost.saturating_sub(job.cost);
                    if tq.is_drained() {
                        // An idle tenant must not bank credit for later
                        // bursts: reset and leave the ring.
                        tq.deficit = 0;
                        state.active.pop_front();
                    }
                    state.cost_queued = state.cost_queued.saturating_sub(job.cost);
                    state.depth -= 1;
                    return job;
                }
                state.active.rotate_left(1);
            }
            // No tenant can afford its head: advance virtual time.
            let rounds = state
                .active
                .iter()
                .map(|tenant| {
                    let tq = &state.tenants[tenant];
                    let gap = tq.head_cost().expect("active tenant has a head job") - tq.deficit;
                    gap.div_ceil(u64::from(self.table.weight(*tenant)))
                })
                .min()
                .expect("depth > 0 means some tenant is active");
            for tenant in state.active.clone() {
                let quantum = u64::from(self.table.weight(tenant));
                let tq = state.tenants.get_mut(&tenant).unwrap();
                tq.deficit = tq.deficit.saturating_add(rounds.max(1).saturating_mul(quantum));
            }
        }
    }

    /// Dequeue the next job by fair-queuing order, blocking while the
    /// queue is empty. Returns `None` once the queue is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.depth > 0 {
                return Some(self.pop_locked(&mut state));
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    /// Dequeue without blocking; `None` when currently empty.
    pub fn try_pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap();
        if state.depth > 0 {
            Some(self.pop_locked(&mut state))
        } else {
            None
        }
    }

    /// Release `cost` of `tenant`'s in-flight quota: call exactly once
    /// per popped job when its results are published (or it fails).
    pub fn job_finished(&self, tenant: TenantId, cost: u64) {
        let mut state = self.state.lock().unwrap();
        state.cost_inflight = state.cost_inflight.saturating_sub(cost);
        if let Some(tq) = state.tenants.get_mut(&tenant) {
            tq.inflight_cost = tq.inflight_cost.saturating_sub(cost);
        }
    }

    /// Stop admissions and wake blocked consumers; queued jobs still drain.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Summed cost of queued (not yet popped) jobs.
    pub fn queued_cost(&self) -> u64 {
        self.state.lock().unwrap().cost_queued
    }

    /// Summed cost of admitted-but-unfinished jobs (queued + running).
    pub fn inflight_cost(&self) -> u64 {
        self.state.lock().unwrap().cost_inflight
    }

    /// `tenant`'s admitted-but-unfinished cost.
    pub fn tenant_inflight_cost(&self, tenant: TenantId) -> u64 {
        self.state
            .lock()
            .unwrap()
            .tenants
            .get(&tenant)
            .map_or(0, |tq| tq.inflight_cost)
    }

    /// Sheds so far, split by cause: `(over_quota, over_budget)`.
    pub fn shed_counts(&self) -> (u64, u64) {
        let state = self.state.lock().unwrap();
        (state.sheds_quota, state.sheds_budget)
    }

    /// Jobs queued right now (admitted, not yet popped) — the live
    /// gauge the autoscaler samples, vs the cumulative high water.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().depth
    }

    /// Deepest (in jobs) the queue has ever been.
    pub fn depth_high_water(&self) -> usize {
        self.state.lock().unwrap().depth_high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use std::sync::Arc;

    fn job(id: u64, priority: Priority, cost: u64) -> Job {
        tenant_job(id, TenantId(0), priority, cost)
    }

    fn tenant_job(id: u64, tenant: TenantId, priority: Priority, cost: u64) -> Job {
        let mut spec = JobSpec::new("a", b"NGG".to_vec(), b"ANN".to_vec(), 1);
        spec.priority = priority;
        spec.tenant = tenant;
        Job { id, spec, cost }
    }

    #[test]
    fn admission_sheds_past_the_cost_budget() {
        let q = FairJobQueue::new(25, &[]);
        q.try_submit(job(0, Priority::Normal, 10)).unwrap();
        q.try_submit(job(1, Priority::Normal, 10)).unwrap();
        assert_eq!(
            q.try_submit(job(2, Priority::Normal, 10)),
            Err(QueueError::Shed {
                retry_after_cost: 5
            }),
            "30 > 25: third job is shed even though only 2 are queued"
        );
        // A cheap job still fits under the remaining budget.
        q.try_submit(job(3, Priority::Normal, 5)).unwrap();
        // Draining releases budget.
        assert_eq!(q.pop().unwrap().id, 0);
        q.try_submit(job(2, Priority::Normal, 10)).unwrap();
        assert_eq!(q.depth_high_water(), 3);
        assert_eq!(q.shed_counts(), (0, 1), "single-tenant shed is a budget shed");
    }

    #[test]
    fn an_oversized_job_is_admitted_only_when_the_queue_is_empty() {
        let q = FairJobQueue::new(10, &[]);
        q.try_submit(job(0, Priority::Normal, 1_000)).unwrap();
        assert!(matches!(
            q.try_submit(job(1, Priority::Normal, 1)),
            Err(QueueError::Shed { .. })
        ));
        assert_eq!(q.pop().unwrap().id, 0);
        q.try_submit(job(1, Priority::Normal, 1)).unwrap();
    }

    #[test]
    fn high_priority_jumps_the_tenants_normal_lane() {
        let q = FairJobQueue::new(80, &[]);
        q.try_submit(job(0, Priority::Normal, 10)).unwrap();
        q.try_submit(job(1, Priority::High, 10)).unwrap();
        q.try_submit(job(2, Priority::Normal, 10)).unwrap();
        q.try_submit(job(3, Priority::High, 10)).unwrap();
        let order: Vec<u64> = (0..4).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, [1, 3, 0, 2], "high lane FIFO, then normal FIFO");
    }

    #[test]
    fn close_rejects_new_work_but_drains_old() {
        let q = FairJobQueue::new(40, &[]);
        q.try_submit(job(0, Priority::Normal, 10)).unwrap();
        q.close();
        assert_eq!(
            q.try_submit(job(1, Priority::Normal, 10)),
            Err(QueueError::Closed)
        );
        assert_eq!(q.pop().unwrap().id, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_a_producer_arrives() {
        let q = Arc::new(FairJobQueue::new(40, &[]));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop().map(|j| j.id));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_submit(job(7, Priority::Normal, 10)).unwrap();
        assert_eq!(t.join().unwrap(), Some(7));
    }

    #[test]
    fn drain_order_follows_weights_not_submission_order() {
        // Tenant 1 (weight 3) and tenant 2 (weight 1) each queue 8
        // uniform-cost jobs; the drain must interleave ~3:1 regardless of
        // tenant 2 having submitted everything first.
        let configs = [
            TenantConfig::weighted(TenantId(1), 3),
            TenantConfig::weighted(TenantId(2), 1),
        ];
        let q = FairJobQueue::new(1_000_000, &configs);
        for i in 0..8 {
            q.try_submit(tenant_job(100 + i, TenantId(2), Priority::Normal, 10))
                .unwrap();
        }
        for i in 0..8 {
            q.try_submit(tenant_job(i, TenantId(1), Priority::Normal, 10))
                .unwrap();
        }
        let mut t1_served = 0u32;
        let mut t2_served = 0u32;
        let mut t2_at_half = 0u32;
        for n in 0..16 {
            let job = q.pop().unwrap();
            match job.spec.tenant {
                TenantId(1) => t1_served += 1,
                _ => t2_served += 1,
            }
            if n == 7 {
                t2_at_half = t2_served;
            }
        }
        assert_eq!((t1_served, t2_served), (8, 8));
        assert_eq!(
            t2_at_half, 2,
            "after 8 pops the 3:1 weights should have served 6 of t1, 2 of t2"
        );
    }

    #[test]
    fn weighted_drain_handles_unequal_costs() {
        // Tenant 1's jobs cost 30, tenant 2's cost 10, equal weights: in
        // cost terms each should drain ~alternating one t1 job per three
        // t2 jobs.
        let configs = [
            TenantConfig::weighted(TenantId(1), 1),
            TenantConfig::weighted(TenantId(2), 1),
        ];
        let q = FairJobQueue::new(1_000_000, &configs);
        for i in 0..4 {
            q.try_submit(tenant_job(i, TenantId(1), Priority::Normal, 30))
                .unwrap();
        }
        for i in 0..12 {
            q.try_submit(tenant_job(100 + i, TenantId(2), Priority::Normal, 10))
                .unwrap();
        }
        let mut served_cost = HashMap::new();
        let mut gap_high_water = 0i64;
        for _ in 0..16 {
            let job = q.pop().unwrap();
            *served_cost.entry(job.spec.tenant).or_insert(0i64) += job.cost as i64;
            let t1 = served_cost.get(&TenantId(1)).copied().unwrap_or(0);
            let t2 = served_cost.get(&TenantId(2)).copied().unwrap_or(0);
            gap_high_water = gap_high_water.max((t1 - t2).abs());
        }
        assert_eq!(served_cost[&TenantId(1)], 120);
        assert_eq!(served_cost[&TenantId(2)], 120);
        assert!(
            gap_high_water <= 30,
            "served-cost gap between equal-weight tenants stayed within one \
             max job cost, got {gap_high_water}"
        );
    }

    #[test]
    fn over_quota_tenants_are_shed_with_a_retry_hint() {
        // Budget 100 split 4:1 → quotas 80 and 20.
        let configs = [
            TenantConfig::weighted(TenantId(1), 4),
            TenantConfig::weighted(TenantId(2), 1),
        ];
        let q = FairJobQueue::new(100, &configs);
        q.try_submit(tenant_job(0, TenantId(1), Priority::Normal, 10))
            .unwrap();
        q.try_submit(tenant_job(1, TenantId(2), Priority::Normal, 20))
            .unwrap();
        // Tenant 2 is now at quota: the next job is a quota shed with the
        // tenant's own overshoot as the retry hint.
        assert_eq!(
            q.try_submit(tenant_job(2, TenantId(2), Priority::Normal, 15)),
            Err(QueueError::Shed {
                retry_after_cost: 15
            })
        );
        // Tenant 1 still has 70 of quota headroom.
        q.try_submit(tenant_job(3, TenantId(1), Priority::Normal, 60))
            .unwrap();
        assert_eq!(q.shed_counts(), (1, 0));
        // Popping does NOT release quota — the jobs are still running.
        // Even with the queue fully drained, tenant 2 stays at quota until
        // its running job is reported finished.
        for _ in 0..3 {
            q.pop().unwrap();
        }
        assert_eq!(q.tenant_inflight_cost(TenantId(2)), 20);
        assert!(matches!(
            q.try_submit(tenant_job(4, TenantId(2), Priority::Normal, 15)),
            Err(QueueError::Shed { .. })
        ));
        // Finishing does release it.
        q.job_finished(TenantId(2), 20);
        assert_eq!(q.tenant_inflight_cost(TenantId(2)), 0);
        q.try_submit(tenant_job(4, TenantId(2), Priority::Normal, 15))
            .unwrap();
    }

    #[test]
    fn concurrent_submitters_race_close_without_stranding_anyone() {
        // Regression: closing the queue must wake every blocked popper
        // exactly into the closed-and-drained protocol, and submitters
        // racing close must each see a clean Ok / Closed — never a hang
        // or a lost job. Run several rounds to give the race room.
        for _ in 0..20 {
            let q = Arc::new(FairJobQueue::new(u64::MAX / 2, &[]));
            let poppers: Vec<_> = (0..3)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut drained = 0u64;
                        while q.pop().is_some() {
                            drained += 1;
                        }
                        drained
                    })
                })
                .collect();
            let submitters: Vec<_> = (0..4)
                .map(|s| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut admitted = 0u64;
                        for i in 0..50 {
                            match q.try_submit(job(s * 1000 + i, Priority::Normal, 1)) {
                                Ok(()) => admitted += 1,
                                Err(QueueError::Closed) => break,
                                Err(QueueError::Shed { .. }) => {}
                            }
                        }
                        admitted
                    })
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_micros(200));
            q.close();
            let admitted: u64 = submitters.into_iter().map(|t| t.join().unwrap()).sum();
            let drained: u64 = poppers.into_iter().map(|t| t.join().unwrap()).sum();
            assert_eq!(
                admitted, drained,
                "every admitted job must be drained after close; none invented"
            );
        }
    }

    #[test]
    fn shed_decisions_are_a_pure_function_of_the_submission_sequence() {
        // The same submission/pop/finish script must produce identical
        // admit/shed outcomes and identical drain order on every run.
        let configs = [
            TenantConfig::weighted(TenantId(1), 4),
            TenantConfig::weighted(TenantId(2), 2),
            TenantConfig::weighted(TenantId(3), 1),
        ];
        let run = || {
            let q = FairJobQueue::new(70, &configs);
            let mut outcomes = Vec::new();
            let mut drained = Vec::new();
            for i in 0..30u64 {
                let tenant = TenantId(1 + (i % 3) as u32);
                let ok = q
                    .try_submit(tenant_job(i, tenant, Priority::Normal, 10))
                    .is_ok();
                outcomes.push(ok);
                if i % 5 == 4 {
                    if let Some(job) = q.try_pop() {
                        q.job_finished(job.spec.tenant, job.cost);
                        drained.push(job.id);
                    }
                }
            }
            while let Some(job) = q.try_pop() {
                q.job_finished(job.spec.tenant, job.cost);
                drained.push(job.id);
            }
            (outcomes, drained, q.shed_counts())
        };
        let first = run();
        for _ in 0..3 {
            assert_eq!(run(), first);
        }
        assert!(first.0.iter().any(|ok| !ok), "script must actually shed");
        assert_eq!(first.2 .1, 0, "derived quotas bind before the budget");
    }
}
