//! A content-addressed, single-flight cache of finder candidate lists.
//!
//! The finder stage of every chunk run answers a question that depends
//! only on the chunk's bases and the PAM pattern: *which loci carry the
//! PAM?* A library screen asks it again for every guide block that sweeps
//! the same chunk — under one PAM the answer never changes. This cache
//! stores the answer ([`CandidateSites`], the loci + strand flags the
//! finder compacted) keyed by **content**: a digest of the chunk's bases,
//! a digest of the compiled pattern, and the payload encoding. A repeat
//! sweep skips the finder launch entirely and replays the candidate list
//! through the chunk runners' `run_*_chunk_cached_candidates` entry
//! points.
//!
//! Lookups are **single-flight**: the first worker to miss a key becomes
//! its *lead* and owes the cache a [`publish`](CandidateCache::publish)
//! (or [`abandon`](CandidateCache::abandon) on error); concurrent workers
//! asking for the same key block until the lead resolves instead of all
//! launching the same finder. Entries are evicted least-recently-used
//! under a byte budget; keys with waiters pending are never evicted.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

use cas_offinder::pipeline::chunk::CandidateSites;

use crate::cache::EncodedChunk;
use crate::results::{fnv1a64, FNV_OFFSET};

/// Content address of one candidate list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CandidateKey {
    /// Digest of the chunk's bases (see `EncodedChunk::content_digest`):
    /// two chunks with identical bases share their candidate lists, even
    /// across assemblies.
    pub chunk_digest: u64,
    /// Digest of the compiled PAM pattern the finder matched.
    pub pattern_digest: u64,
    /// Payload-encoding tag (raw / 2-bit / 4-bit), kept in the key so a
    /// list is only replayed through the same finder flavour that
    /// produced it.
    pub encoding: u8,
}

impl CandidateKey {
    /// The key a batch of `pattern` over `chunk` looks up: the chunk's
    /// base-content digest, the pattern bytes' digest, and the payload
    /// encoding tag. Scheduler (peek) and worker (lookup) must agree on
    /// this construction, so it lives here.
    pub(crate) fn of(pattern: &[u8], chunk: &EncodedChunk) -> Self {
        CandidateKey {
            chunk_digest: chunk.content_digest(),
            pattern_digest: fnv1a64(FNV_OFFSET, pattern),
            encoding: chunk.encoding_tag(),
        }
    }
}

/// Outcome of [`CandidateCache::lookup_or_lead`].
pub enum CandidateLookup {
    /// The list is resident: skip the finder and replay it.
    Hit(Arc<CandidateSites>),
    /// The caller is now the key's lead: run the finder with capture
    /// armed, then [`publish`](CandidateCache::publish) or
    /// [`abandon`](CandidateCache::abandon).
    Lead,
}

/// Point-in-time counters of the candidate cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CandidateStats {
    /// Lookups served from a resident list (including those that waited
    /// for an in-flight lead).
    pub hits: u64,
    /// Lookups that made the caller the lead.
    pub misses: u64,
    /// Lists published.
    pub inserts: u64,
    /// Lists evicted under the byte budget.
    pub evictions: u64,
    /// Lists currently resident.
    pub len: usize,
    /// Bytes currently resident.
    pub resident_bytes: usize,
}

impl CandidateStats {
    /// Fraction of lookups that skipped a finder launch (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    sites: Arc<CandidateSites>,
    last_used: u64,
}

struct Inner {
    map: HashMap<CandidateKey, Entry>,
    /// Keys with a lead in flight: misses on them wait instead of racing.
    pending: HashSet<CandidateKey>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    inserts: u64,
    evictions: u64,
}

/// Thread-safe single-flight LRU over [`CandidateSites`], bounded by
/// resident bytes.
pub struct CandidateCache {
    capacity_bytes: usize,
    inner: Mutex<Inner>,
    resolved: Condvar,
}

impl CandidateCache {
    /// An empty cache holding at most `capacity_bytes` of candidate lists.
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "candidate cache capacity must be positive");
        CandidateCache {
            capacity_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                pending: HashSet::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                inserts: 0,
                evictions: 0,
            }),
            resolved: Condvar::new(),
        }
    }

    /// Fetch the list for `key`, or become its lead. Blocks while another
    /// thread leads the same key; if that lead abandons, one waiter is
    /// promoted to lead in its place.
    pub fn lookup_or_lead(&self, key: &CandidateKey) -> CandidateLookup {
        let mut inner = self.inner.lock().unwrap();
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(key) {
                entry.last_used = tick;
                let sites = Arc::clone(&entry.sites);
                inner.hits += 1;
                return CandidateLookup::Hit(sites);
            }
            if inner.pending.contains(key) {
                inner = self.resolved.wait(inner).unwrap();
                // Re-check: the lead published (hit above next loop), or
                // abandoned (pending entry gone: this waiter may lead).
                continue;
            }
            inner.pending.insert(*key);
            inner.misses += 1;
            return CandidateLookup::Lead;
        }
    }

    /// Whether `key` is resident right now, without touching the LRU
    /// clock, the hit/miss counters, or the single-flight registry. The
    /// scheduler uses this to price the finder stage at zero for batches
    /// whose candidate list is already cached — a prediction must not
    /// perturb the statistics it is predicting from.
    pub fn peek(&self, key: &CandidateKey) -> bool {
        self.inner.lock().unwrap().map.contains_key(key)
    }

    /// Publish the lead's list for `key`, waking every waiter. Evicts
    /// least-recently-used entries past the byte budget; an oversized
    /// list is still admitted, alone.
    pub fn publish(&self, key: &CandidateKey, sites: Arc<CandidateSites>) {
        let mut inner = self.inner.lock().unwrap();
        inner.pending.remove(key);
        let incoming = sites.byte_len();
        while !inner.map.is_empty() && inner.bytes + incoming > self.capacity_bytes {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                if let Some(evicted) = inner.map.remove(&lru) {
                    inner.bytes -= evicted.sites.byte_len();
                    inner.evictions += 1;
                }
            }
        }
        inner.bytes += incoming;
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            *key,
            Entry {
                sites,
                last_used: tick,
            },
        );
        inner.inserts += 1;
        drop(inner);
        self.resolved.notify_all();
    }

    /// Give up the lead for `key` without publishing (the finder run
    /// failed); a waiter, if any, is promoted to lead.
    pub fn abandon(&self, key: &CandidateKey) {
        let mut inner = self.inner.lock().unwrap();
        inner.pending.remove(key);
        drop(inner);
        self.resolved.notify_all();
    }

    /// Current accounting.
    pub fn stats(&self) -> CandidateStats {
        let inner = self.inner.lock().unwrap();
        CandidateStats {
            hits: inner.hits,
            misses: inner.misses,
            inserts: inner.inserts,
            evictions: inner.evictions,
            len: inner.map.len(),
            resident_bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(i: u64) -> CandidateKey {
        CandidateKey {
            chunk_digest: i,
            pattern_digest: 7,
            encoding: 0,
        }
    }

    fn sites(n: usize) -> Arc<CandidateSites> {
        Arc::new(CandidateSites {
            loci: (0..n as u32).collect(),
            flags: vec![b'+'; n],
        })
    }

    #[test]
    fn miss_leads_publish_hits() {
        let cache = CandidateCache::new(1 << 10);
        assert!(matches!(cache.lookup_or_lead(&key(1)), CandidateLookup::Lead));
        cache.publish(&key(1), sites(4));
        match cache.lookup_or_lead(&key(1)) {
            CandidateLookup::Hit(s) => assert_eq!(s.len(), 4),
            CandidateLookup::Lead => panic!("published key must hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.resident_bytes, 4 * 5);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn keys_separate_patterns_and_encodings() {
        let cache = CandidateCache::new(1 << 10);
        assert!(matches!(cache.lookup_or_lead(&key(1)), CandidateLookup::Lead));
        cache.publish(&key(1), sites(1));
        let other_pattern = CandidateKey {
            pattern_digest: 8,
            ..key(1)
        };
        let other_encoding = CandidateKey {
            encoding: 2,
            ..key(1)
        };
        assert!(matches!(
            cache.lookup_or_lead(&other_pattern),
            CandidateLookup::Lead
        ));
        assert!(matches!(
            cache.lookup_or_lead(&other_encoding),
            CandidateLookup::Lead
        ));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // Each 4-site list costs 20 bytes; a 40-byte budget holds two.
        let cache = CandidateCache::new(40);
        for i in 0..2 {
            assert!(matches!(cache.lookup_or_lead(&key(i)), CandidateLookup::Lead));
            cache.publish(&key(i), sites(4));
        }
        // Touch 0 so 1 is the LRU entry.
        assert!(matches!(cache.lookup_or_lead(&key(0)), CandidateLookup::Hit(_)));
        assert!(matches!(cache.lookup_or_lead(&key(2)), CandidateLookup::Lead));
        cache.publish(&key(2), sites(4));
        assert!(matches!(cache.lookup_or_lead(&key(0)), CandidateLookup::Hit(_)));
        assert!(
            matches!(cache.lookup_or_lead(&key(1)), CandidateLookup::Lead),
            "1 was evicted as LRU"
        );
        cache.abandon(&key(1));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.resident_bytes, 40);
    }

    #[test]
    fn abandoned_leads_promote_a_waiter() {
        let cache = Arc::new(CandidateCache::new(1 << 10));
        assert!(matches!(cache.lookup_or_lead(&key(1)), CandidateLookup::Lead));
        let leads = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let cache = Arc::clone(&cache);
            let leads = Arc::clone(&leads);
            handles.push(std::thread::spawn(move || {
                match cache.lookup_or_lead(&key(1)) {
                    CandidateLookup::Lead => {
                        // Promoted after the abandon: finish the flight.
                        leads.fetch_add(1, Ordering::SeqCst);
                        cache.publish(&key(1), sites(2));
                        2
                    }
                    CandidateLookup::Hit(s) => s.len(),
                }
            }));
        }
        // Give the threads time to queue up behind the pending key, then
        // abandon: exactly one waiter must take over and publish for the
        // rest.
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.abandon(&key(1));
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
        assert_eq!(leads.load(Ordering::SeqCst), 1, "single-flight after abandon");
    }

    #[test]
    fn concurrent_lookups_single_flight() {
        let cache = Arc::new(CandidateCache::new(1 << 10));
        let leads = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let leads = Arc::clone(&leads);
            handles.push(std::thread::spawn(move || match cache.lookup_or_lead(&key(9)) {
                CandidateLookup::Lead => {
                    leads.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    cache.publish(&key(9), sites(3));
                    3
                }
                CandidateLookup::Hit(s) => s.len(),
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 3);
        }
        assert_eq!(leads.load(Ordering::SeqCst), 1, "one finder run for 8 lookups");
        assert_eq!(cache.stats().inserts, 1);
    }
}
