//! Request coalescing: group admitted jobs that scan the same genome with
//! the same PAM pattern, so each genome chunk is uploaded once and the
//! finder runs once per *batch* instead of once per *job*.
//!
//! The unit of device work downstream is a [`ChunkBatch`]: one cached
//! chunk plus the queries of every job in the group. A batch of `k` jobs
//! costs one chunk upload, one finder launch and `k` comparer launches —
//! the serial pipelines would pay `k` of each.

use std::collections::HashMap;
use std::sync::Arc;

use cas_offinder::Query;

use crate::cache::EncodedChunk;
use crate::job::{Job, JobId};

/// What makes jobs coalescible: same assembly, same PAM pattern (the
/// finder's output depends on both, the comparer adds the per-job query).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Registered assembly name.
    pub assembly: String,
    /// PAM pattern shared by every job in the batch.
    pub pattern: Vec<u8>,
}

/// One job's membership in a batch.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The owning job.
    pub id: JobId,
    /// The job's guide + threshold as a pipeline query.
    pub query: Query,
}

/// One unit of device work: a chunk and the coalesced queries to run on it.
pub struct ChunkBatch {
    /// The coalescing key the batch was formed under.
    pub key: BatchKey,
    /// Chunk ordinal within the assembly.
    pub chunk_index: usize,
    /// The cached chunk bytes.
    pub chunk: Arc<EncodedChunk>,
    /// Jobs coalesced onto this chunk, in admission order.
    pub jobs: Vec<BatchJob>,
}

/// Partition `jobs` into coalescible groups of at most `max_batch`
/// members, preserving admission order within each group.
pub(crate) fn group_jobs(jobs: Vec<Job>, max_batch: usize) -> Vec<(BatchKey, Vec<Job>)> {
    assert!(max_batch > 0, "max_batch must be positive");
    let mut order: Vec<BatchKey> = Vec::new();
    let mut by_key: HashMap<BatchKey, Vec<Vec<Job>>> = HashMap::new();
    for job in jobs {
        let key = BatchKey {
            assembly: job.spec.assembly.clone(),
            pattern: job.spec.pattern.clone(),
        };
        let groups = by_key.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        match groups.last_mut() {
            Some(last) if last.len() < max_batch => last.push(job),
            _ => groups.push(vec![job]),
        }
    }
    order
        .into_iter()
        .flat_map(|key| {
            let groups = by_key.remove(&key).unwrap_or_default();
            groups.into_iter().map(move |g| (key.clone(), g))
        })
        .collect()
}

/// Reorder `batches` so that every planned owner's work arrives spread
/// evenly across the round: bucket every batch by the owner the
/// [`ShardPlan`] assigns its chunk, then merge the buckets by virtual
/// time — item `k` of an `n`-item bucket sits at `(k + 0.5) / n`, so a
/// device owning twice the chunks appears twice as often in the merged
/// stream. Dispatching a round of consecutive chunk indices in plan
/// order would otherwise fill one owner's in-flight window while its
/// siblings idle; a strict round-robin merge would instead starve the
/// heavier owners at the tail. Relative order *within* each owner's
/// bucket is preserved, so the reordering never changes results
/// (batches are independent units of work).
pub(crate) fn interleave_by_owner(
    batches: Vec<ChunkBatch>,
    plan: &crate::shard::ShardPlan,
) -> Vec<ChunkBatch> {
    let mut tagged: Vec<(f64, usize, ChunkBatch)> = Vec::with_capacity(batches.len());
    let mut counts = vec![0usize; plan.device_count()];
    let mut seen = vec![0usize; plan.device_count()];
    for batch in &batches {
        counts[plan.owner_of(&batch.key.assembly, batch.chunk_index)] += 1;
    }
    for batch in batches {
        let owner = plan.owner_of(&batch.key.assembly, batch.chunk_index);
        let vtime = (seen[owner] as f64 + 0.5) / counts[owner] as f64;
        seen[owner] += 1;
        tagged.push((vtime, owner, batch));
    }
    // Stable sort: equal (vtime, owner) keeps bucket order; vtime ties
    // across owners break toward the lower device index.
    tagged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    tagged.into_iter().map(|(_, _, batch)| batch).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn job(id: u64, assembly: &str, pattern: &[u8]) -> Job {
        Job {
            id,
            spec: JobSpec::new(assembly, pattern.to_vec(), vec![b'A'; pattern.len()], 2),
            cost: 1,
        }
    }

    #[test]
    fn groups_split_by_assembly_and_pattern() {
        let groups = group_jobs(
            vec![
                job(0, "a", b"NGG"),
                job(1, "b", b"NGG"),
                job(2, "a", b"NGG"),
                job(3, "a", b"NAG"),
            ],
            8,
        );
        assert_eq!(groups.len(), 3);
        let ids: Vec<Vec<u64>> = groups
            .iter()
            .map(|(_, g)| g.iter().map(|j| j.id).collect())
            .collect();
        assert_eq!(ids, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn bulge_variants_coalesce_with_plain_jobs_under_the_shared_pattern() {
        use cas_offinder::bulge::{enumerate_variants, BulgeLimits};
        use cas_offinder::Query;

        // Expand a bulge job exactly the way the batcher loop does: each
        // variant becomes a plain unit carrying its (possibly widened)
        // pattern. The zero-bulge variant keeps the original pattern, so it
        // must land in the same group as an ordinary plain job — one chunk
        // upload and one finder pass between them.
        let plain = job(0, "a", b"NNNNNGG");
        let query = Query::new(b"ACGTANN".to_vec(), 2);
        let limits = BulgeLimits {
            max_dna: 1,
            max_rna: 1,
        };
        let units: Vec<Job> = enumerate_variants(b"NNNNNGG", &query, limits)
            .into_iter()
            .map(|v| {
                let mut j = job(1, "a", &v.pattern);
                j.spec.guide = v.query;
                j
            })
            .collect();
        assert!(units.len() > 1, "the fixture must actually enumerate bulges");

        let mut jobs = vec![plain];
        jobs.extend(units);
        let groups = group_jobs(jobs, 64);
        let shared = groups
            .iter()
            .find(|(key, _)| key.pattern == b"NNNNNGG")
            .expect("the original pattern's group exists");
        let ids: Vec<u64> = shared.1.iter().map(|j| j.id).collect();
        assert!(
            ids.contains(&0) && ids.contains(&1),
            "plain job and zero-bulge variant share a group: {ids:?}"
        );
        // Widened patterns cannot share finder passes; they form their own
        // groups rather than silently corrupting the shared one.
        for (key, members) in &groups {
            if key.pattern != b"NNNNNGG" {
                assert!(members.iter().all(|j| j.id == 1), "{:?}", key.pattern);
            }
        }
    }

    #[test]
    fn interleaving_alternates_planned_owners_and_keeps_bucket_order() {
        use crate::cache::ChunkEncoding;
        use crate::shard::ShardPlan;

        let chunk = Arc::new(EncodedChunk::encode(
            0,
            "chr1".into(),
            0,
            8,
            &[b'A'; 11],
            ChunkEncoding::Packed,
        ));
        let batch = |index: usize| ChunkBatch {
            key: BatchKey {
                assembly: "a".into(),
                pattern: b"NGG".to_vec(),
            },
            chunk_index: index,
            chunk: Arc::clone(&chunk),
            jobs: Vec::new(),
        };
        // Two equal-weight devices over 6 chunks: device 0 owns 0..3,
        // device 1 owns 3..6. Consecutive indices land on one owner;
        // interleaving alternates them.
        let plan = ShardPlan::build(&[1.0, 1.0], &[("a".into(), 6)]);
        let out = interleave_by_owner((0..6).map(batch).collect(), &plan);
        let indices: Vec<usize> = out.iter().map(|b| b.chunk_index).collect();
        assert_eq!(indices, vec![0, 3, 1, 4, 2, 5]);

        // Unequal weights: device 0 owns 0..4, device 1 owns 4..6. The
        // virtual-time merge keeps the heavy owner flowing at double rate
        // instead of stalling it behind a strict alternation.
        let plan = ShardPlan::build(&[2.0, 1.0], &[("a".into(), 6)]);
        let out = interleave_by_owner((0..6).map(batch).collect(), &plan);
        let indices: Vec<usize> = out.iter().map(|b| b.chunk_index).collect();
        assert_eq!(indices, vec![0, 4, 1, 2, 5, 3]);
    }

    #[test]
    fn groups_respect_the_size_ceiling() {
        let jobs: Vec<Job> = (0..10).map(|i| job(i, "a", b"NGG")).collect();
        let groups = group_jobs(jobs, 4);
        let sizes: Vec<usize> = groups.iter().map(|(_, g)| g.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        // Admission order survives the split.
        let flat: Vec<u64> = groups
            .iter()
            .flat_map(|(_, g)| g.iter().map(|j| j.id))
            .collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }
}
