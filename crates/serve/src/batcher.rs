//! Request coalescing: group admitted jobs that scan the same genome with
//! the same PAM pattern, so each genome chunk is uploaded once and the
//! finder runs once per *batch* instead of once per *job*.
//!
//! The unit of device work downstream is a [`ChunkBatch`]: one cached
//! chunk plus the queries of every job in the group. A batch of `k` jobs
//! costs one chunk upload, one finder launch and `k` comparer launches —
//! the serial pipelines would pay `k` of each.

use std::collections::HashMap;
use std::sync::Arc;

use cas_offinder::Query;

use crate::cache::EncodedChunk;
use crate::job::{Job, JobId};

/// What makes jobs coalescible: same assembly, same PAM pattern (the
/// finder's output depends on both, the comparer adds the per-job query).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Registered assembly name.
    pub assembly: String,
    /// PAM pattern shared by every job in the batch.
    pub pattern: Vec<u8>,
}

/// One job's membership in a batch.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The owning job.
    pub id: JobId,
    /// The job's guide + threshold as a pipeline query.
    pub query: Query,
}

/// One unit of device work: a chunk and the coalesced queries to run on it.
pub struct ChunkBatch {
    /// The coalescing key the batch was formed under.
    pub key: BatchKey,
    /// Chunk ordinal within the assembly.
    pub chunk_index: usize,
    /// The cached chunk bytes.
    pub chunk: Arc<EncodedChunk>,
    /// Jobs coalesced onto this chunk, in admission order.
    pub jobs: Vec<BatchJob>,
}

/// Partition `jobs` into coalescible groups of at most `max_batch`
/// members, preserving admission order within each group.
pub(crate) fn group_jobs(jobs: Vec<Job>, max_batch: usize) -> Vec<(BatchKey, Vec<Job>)> {
    assert!(max_batch > 0, "max_batch must be positive");
    let mut order: Vec<BatchKey> = Vec::new();
    let mut by_key: HashMap<BatchKey, Vec<Vec<Job>>> = HashMap::new();
    for job in jobs {
        let key = BatchKey {
            assembly: job.spec.assembly.clone(),
            pattern: job.spec.pattern.clone(),
        };
        let groups = by_key.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            Vec::new()
        });
        match groups.last_mut() {
            Some(last) if last.len() < max_batch => last.push(job),
            _ => groups.push(vec![job]),
        }
    }
    order
        .into_iter()
        .flat_map(|key| {
            let groups = by_key.remove(&key).unwrap_or_default();
            groups.into_iter().map(move |g| (key.clone(), g))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn job(id: u64, assembly: &str, pattern: &[u8]) -> Job {
        Job {
            id,
            spec: JobSpec::new(assembly, pattern.to_vec(), vec![b'A'; pattern.len()], 2),
            cost: 1,
        }
    }

    #[test]
    fn groups_split_by_assembly_and_pattern() {
        let groups = group_jobs(
            vec![
                job(0, "a", b"NGG"),
                job(1, "b", b"NGG"),
                job(2, "a", b"NGG"),
                job(3, "a", b"NAG"),
            ],
            8,
        );
        assert_eq!(groups.len(), 3);
        let ids: Vec<Vec<u64>> = groups
            .iter()
            .map(|(_, g)| g.iter().map(|j| j.id).collect())
            .collect();
        assert_eq!(ids, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn groups_respect_the_size_ceiling() {
        let jobs: Vec<Job> = (0..10).map(|i| job(i, "a", b"NGG")).collect();
        let groups = group_jobs(jobs, 4);
        let sizes: Vec<usize> = groups.iter().map(|(_, g)| g.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        // Admission order survives the split.
        let flat: Vec<u64> = groups
            .iter()
            .flat_map(|(_, g)| g.iter().map(|j| j.id))
            .collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }
}
