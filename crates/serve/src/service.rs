//! The service itself: admission, the coalescing batcher thread, the
//! device-pool worker threads, and job completion tracking.
//!
//! # Determinism
//!
//! Workers run chunk batches in whatever order scheduling and stealing
//! produce, but every device executes with [`ExecMode::Sequential`], so the
//! entries each `(chunk, query)` pair yields are a pure function of the
//! inputs. Each scan position is owned by exactly one chunk, so a job's
//! records have unique `(chromosome, position, strand)` keys and the final
//! [`sort_canonical`] is a total normalizer: results are byte-identical to
//! the serial pipelines no matter how batches interleave. The cached 2-bit
//! and 4-bit payloads are lossless, and the packed/nibble finders decode
//! them on-device into matching-equivalent bytes of what the char-path
//! finder would have uploaded, so packing changes transfer volume, never
//! results.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cas_offinder::bulge::enumerate_variants;
use cas_offinder::kernels::specialize::global_cache;
use cas_offinder::kernels::VariantCacheStats;
use cas_offinder::pipeline::chunk::{twobit_compare_safe, OclChunkRunner, SyclChunkRunner};
use cas_offinder::pipeline::{entries_to_offtargets, PipelineConfig};
use cas_offinder::{sort_canonical, Api, OffTarget, OptLevel, Query, TimingBreakdown};
use genome::{Assembly, Chunker};
use gpu_sim::{DeviceSpec, ExecMode};

use crate::batcher::{group_jobs, interleave_by_owner, BatchJob, BatchKey, ChunkBatch};
use crate::cache::{ChunkEncoding, ChunkKey, ChunkPayload, EncodedChunk, GenomeCache};
use crate::candidates::{CandidateCache, CandidateKey, CandidateLookup};
use crate::frontend::{Completion, CompletionHub, JobEntry, Poll, Ticket, WaitError};
use crate::job::{Job, JobId, JobSpec};
use crate::metrics::{
    busy_ns_from_s, load_report, LatencyWindows, MetricsReport, ServeMetrics, VariantReport,
    WindowReport,
};
use crate::queue::{FairJobQueue, QueueError};
use crate::results::{Admission, CanonicalSpec, ResultStore};
use crate::scheduler::{
    residency_token, BatchCost, DeviceModel, DevicePool, PayloadClass, Placement,
};
use crate::shard::ShardPlan;
use crate::tenant::{TenantConfig, TenantLedger, TenantTable};

/// One simulated device in the pool: a hardware spec plus the pipeline
/// flavour (OpenCL or SYCL) that drives it.
#[derive(Debug, Clone)]
pub struct DeviceSlot {
    /// Simulated hardware spec.
    pub spec: DeviceSpec,
    /// Which host pipeline runs on the device.
    pub api: Api,
}

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The device pool, one worker thread per slot.
    pub devices: Vec<DeviceSlot>,
    /// Owned scan positions per genome chunk.
    pub chunk_size: usize,
    /// Admission budget in estimated cost units (assembly bases × search
    /// variants, summed over queued jobs); submissions past it are
    /// rejected. Replaces a job-count cap: one whole-genome bulge sweep
    /// draws as much budget as the hundreds of small jobs it costs.
    pub queue_cost_limit: u64,
    /// Maximum jobs coalesced into one chunk batch.
    pub max_batch: usize,
    /// Genome-chunk cache budget, in resident payload bytes.
    pub cache_bytes: usize,
    /// How cached chunks (and uploads) are encoded; packed payloads cut
    /// upload bytes ~4x and fit ~2.7x more chunks in the same budget, and
    /// the adaptive default switches exception-dense chunks to 4-bit
    /// nibbles so none of them falls back to the char comparer.
    pub cache_encoding: ChunkEncoding,
    /// Comparer optimization stage.
    pub opt: OptLevel,
    /// How the dispatcher places batches on device queues.
    pub placement: Placement,
    /// Wall-clock seconds a worker holds each finished batch per simulated
    /// second of device time, so queue drain follows device speed instead
    /// of host speed. `0.0` (the default) disables pacing; measurement
    /// harnesses enable it so placement quality shows up in the makespan.
    pub pacing: f64,
    /// Chunk payloads each device keeps uploaded between batches. A batch
    /// landing on a device that still holds its chunk skips the chunk
    /// upload entirely, and the scheduler prices (and steers) accordingly.
    /// `0` disables residency: every batch uploads its chunk.
    pub resident_chunks: usize,
    /// Byte budget of the content-addressed result cache. A repeat of an
    /// already-served spec is answered at submit time with zero kernel
    /// launches, and concurrent identical specs coalesce into one compute
    /// (single-flight). `0` disables result caching and coalescing.
    pub result_cache_bytes: usize,
    /// Run the chunk runners with JIT-specialized per-(pattern, threshold)
    /// kernel variants instead of the generic kernels. Variants constant-
    /// fold the query into immediates (smaller code, equal-or-better
    /// occupancy) and are cached process-wide, so a warm serving loop pays
    /// the specializing compile once per distinct (pattern, threshold,
    /// encoding). Results are byte-identical either way; the scheduler's
    /// cost model calibrates against whichever flavour runs.
    pub specialize: bool,
    /// Per-tenant QoS parameters: fair-queuing weights and in-flight cost
    /// quotas. Empty (the default) means single-tenant semantics — every
    /// tenant gets weight 1 and the queue cost budget is the only
    /// backpressure, exactly the pre-tenancy behaviour.
    pub tenants: Vec<TenantConfig>,
    /// Byte budget of the content-addressed candidate-site cache, keyed by
    /// (chunk content, compiled pattern, encoding). A chunk swept under a
    /// pattern it has already been swept under replays the cached finder
    /// output and skips the finder launch entirely — the fast path library
    /// screens lean on, since every per-guide unit search shares the same
    /// PAM pattern. `0` disables candidate caching.
    pub candidate_cache_bytes: usize,
    /// Fuse the per-query comparer launches of a coalesced batch into one
    /// multi-guide launch per guide block (up to
    /// [`cas_offinder::kernels::GUIDE_BLOCK`] guides each). Results are
    /// byte-identical to per-guide launches; the scheduler prices fused
    /// batches through the separately calibrated multi-guide rates.
    pub multi_guide: bool,
    /// Bucket width of the windowed latency/queue-depth ring
    /// ([`Service::latency_windows`]) — the cadence tail percentiles and
    /// admitted/shed counts are reported at, and the natural sampling
    /// period for an autoscaling controller watching them.
    pub metrics_window: Duration,
}

impl ServiceConfig {
    /// The paper's heterogeneous pool: Radeon VII and MI60 under OpenCL,
    /// MI60 and MI100 under SYCL — four devices mixing both pipelines.
    pub fn paper_pool() -> Self {
        ServiceConfig {
            devices: vec![
                DeviceSlot {
                    spec: DeviceSpec::radeon_vii(),
                    api: Api::OpenCl,
                },
                DeviceSlot {
                    spec: DeviceSpec::mi60(),
                    api: Api::OpenCl,
                },
                DeviceSlot {
                    spec: DeviceSpec::mi60(),
                    api: Api::Sycl,
                },
                DeviceSlot {
                    spec: DeviceSpec::mi100(),
                    api: Api::Sycl,
                },
            ],
            chunk_size: 1 << 13,
            queue_cost_limit: 10_000_000,
            max_batch: 8,
            cache_bytes: 1 << 19,
            cache_encoding: ChunkEncoding::Adaptive,
            opt: OptLevel::Base,
            placement: Placement::EarliestCompletion,
            pacing: 0.0,
            resident_chunks: 8,
            result_cache_bytes: 1 << 20,
            specialize: true,
            tenants: Vec::new(),
            candidate_cache_bytes: 1 << 20,
            multi_guide: true,
            metrics_window: Duration::from_millis(250),
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The job was load-shed: the queue cost budget or the submitting
    /// tenant's in-flight quota is exhausted. `retry_after_cost` is how
    /// much cost must drain before an identical submission can succeed —
    /// a typed backoff hint instead of a blind "full".
    Shed {
        /// Cost units that must drain (the tenant's own for quota sheds,
        /// queue-wide for budget sheds) before retrying.
        retry_after_cost: u64,
    },
    /// The spec carried a deadline the calibrated device model predicts
    /// cannot be met given the work already in flight; the job is rejected
    /// up front instead of being admitted only to time out late.
    DeadlineInfeasible {
        /// The model's predicted completion latency for this job now.
        predicted: Duration,
    },
    /// The spec names an assembly the service does not serve.
    UnknownAssembly(String),
    /// The spec is malformed (empty pattern, guide/pattern length skew,
    /// unsupported bulge limits).
    BadJob(String),
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Shed { retry_after_cost } => write!(
                f,
                "load shed: retry after {retry_after_cost} cost units drain"
            ),
            SubmitError::DeadlineInfeasible { predicted } => write!(
                f,
                "deadline infeasible: predicted completion in {predicted:?}"
            ),
            SubmitError::UnknownAssembly(name) => write!(f, "unknown assembly `{name}`"),
            SubmitError::BadJob(why) => write!(f, "bad job: {why}"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Shared {
    config: ServiceConfig,
    assemblies: HashMap<String, Arc<Assembly>>,
    queue: FairJobQueue,
    pool: DevicePool,
    /// The pool's calibrated device models, kept service-side too: plan
    /// builds weight devices by them and pre-run makespan predictions
    /// price chunks through them.
    models: Vec<DeviceModel>,
    cache: GenomeCache,
    results: ResultStore,
    /// Content-addressed candidate-site cache shared by all workers;
    /// `None` when `candidate_cache_bytes` is 0.
    candidates: Option<Arc<CandidateCache>>,
    metrics: ServeMetrics,
    /// Snapshot of the process-wide variant cache's counters at service
    /// start; [`Service::metrics`] reports this service's deltas.
    variant_baseline: VariantCacheStats,
    /// Completion tracking: the job-entry map, the waiters' condvar, and
    /// the collected-id tombstones.
    hub: CompletionHub,
    /// Per-tenant admit/shed/goodput/latency accounting.
    ledger: TenantLedger,
    /// Resolved weights and quotas, for the per-tenant metrics rows.
    tenant_table: TenantTable,
    /// Pool-wide sustained throughput in cost units per simulated second;
    /// what deadline admission divides queued cost by.
    admission_rate: f64,
    /// Per-device sustained throughput in cost units per simulated
    /// second — [`Shared::admission_rate`]'s addends, kept apart so
    /// predictions can re-sum over whichever devices are active when the
    /// fleet scales.
    device_rates: Vec<f64>,
    /// When the service started; every windowed-metrics timestamp is
    /// nanoseconds since this instant.
    started: Instant,
    /// Time-bucketed latency/queue-depth ring behind
    /// [`Service::latency_windows`].
    windows: LatencyWindows,
}

impl Shared {
    /// Nanoseconds since the service started — the windowed ring's clock.
    fn now_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Pool throughput summed over the devices currently in the fleet —
    /// what predicted queue delay divides in-flight cost by. Falls back
    /// to the full-fleet rate if a racing scale event momentarily shows
    /// no active device.
    fn active_admission_rate(&self) -> f64 {
        let active = self.pool.active_snapshot();
        let rate: f64 = self
            .device_rates
            .iter()
            .zip(&active)
            .filter(|&(_, &a)| a)
            .map(|(r, _)| r)
            .sum();
        if rate > 0.0 {
            rate
        } else {
            self.admission_rate
        }
    }

    /// Simulated seconds mapped to wall clock through the pacing factor
    /// (without pacing the simulated devices complete at host speed, so
    /// simulated seconds are the honest unit either way).
    fn sim_to_wall(&self, sim_s: f64) -> f64 {
        if self.config.pacing > 0.0 {
            sim_s * self.config.pacing
        } else {
            sim_s
        }
    }

    /// Mark `entry` done and count the completion. Must be called with the
    /// hub's jobs lock held: a waiter can collect the records the moment
    /// the lock drops, so the completed-jobs counter has to be current by
    /// then — bumping it later (in [`Shared::settle`]) would let a caller
    /// observe its own finished job missing from the metrics.
    fn finish_entry(&self, entry: &mut JobEntry, id: JobId) -> Completion {
        self.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
        entry.finish(id)
    }

    /// Settle finished jobs' out-of-lock side effects, in order: release
    /// tenant quota (so admission unblocks first), account per-tenant
    /// goodput and deadline misses, fire registered completion callbacks,
    /// and finally wake blocking waiters. Must be called *without* the
    /// hub's jobs lock held.
    fn settle(&self, completions: Vec<Completion>) {
        if completions.is_empty() {
            return;
        }
        let now_ns = self.now_ns();
        for c in completions {
            if c.charged {
                self.queue.job_finished(c.tenant, c.cost);
            }
            if c.deadline_missed {
                self.metrics.deadline_misses.fetch_add(1, Ordering::Relaxed);
            }
            self.windows
                .note_completion(now_ns, u64::try_from(c.latency.as_nanos()).unwrap_or(u64::MAX));
            self.ledger.completed(c.tenant, c.cost, c.latency, c.deadline_missed);
            if let Some(callback) = c.callback {
                callback(c.id);
            }
        }
        self.hub.done.notify_all();
    }

    /// Publish finished leaders' result sets to the result store and mark
    /// their merged followers done. `published` pairs each leader's
    /// `publish` key with its final (sorted) records; the jobs lock must
    /// NOT be held — the store lock is taken here and the jobs lock is
    /// re-taken per follower batch, never both orderings.
    fn fulfill_followers(&self, published: Vec<((u64, CanonicalSpec), Vec<OffTarget>)>) {
        for ((digest, canon), records) in published {
            let followers = self.results.complete(digest, &canon, &records);
            if followers.is_empty() {
                continue;
            }
            let mut completions = Vec::new();
            let mut entries = self.hub.jobs.lock().unwrap();
            for id in followers {
                if let Some(entry) = entries.get_mut(&id) {
                    entry.offtargets = records.clone();
                    completions.push(self.finish_entry(entry, id));
                }
            }
            drop(entries);
            self.settle(completions);
        }
    }
}

/// A running batch-search service over a fixed set of assemblies and a
/// fixed device pool.
pub struct Service {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Start the service: spawns the batcher thread and one worker thread
    /// per device slot. Assemblies are keyed by their names.
    ///
    /// # Panics
    ///
    /// Panics if the config has no devices.
    pub fn start(config: ServiceConfig, assemblies: Vec<Assembly>) -> Service {
        assert!(!config.devices.is_empty(), "the pool needs at least one device");
        let devices = config.devices.len();
        let models: Vec<DeviceModel> = config
            .devices
            .iter()
            .map(|slot| {
                DeviceModel::calibrated(
                    &slot.spec,
                    config.chunk_size,
                    config.opt,
                    config.specialize,
                    slot.api,
                )
            })
            .collect();
        // Pool-wide sustained throughput at this chunk size, for deadline
        // admission. Summed over devices: the pool really does serve
        // batches concurrently across all of them.
        let device_rates: Vec<f64> = models
            .iter()
            .map(|m| m.admission_units_per_s(config.chunk_size))
            .collect();
        let admission_rate: f64 = device_rates.iter().sum();
        let candidates = (config.candidate_cache_bytes > 0)
            .then(|| Arc::new(CandidateCache::new(config.candidate_cache_bytes)));
        let mut pool = DevicePool::new(models.clone(), config.placement, config.resident_chunks)
            .with_multi_guide(config.multi_guide);
        if let Some(cache) = &candidates {
            pool = pool.with_candidate_cache(Arc::clone(cache));
        }
        let shared = Arc::new(Shared {
            queue: FairJobQueue::new(config.queue_cost_limit, &config.tenants),
            pool,
            models,
            cache: GenomeCache::new(config.cache_bytes),
            results: ResultStore::new(config.result_cache_bytes),
            candidates,
            metrics: ServeMetrics::new(devices),
            variant_baseline: global_cache().stats(),
            assemblies: assemblies
                .into_iter()
                .map(|a| (a.name().to_string(), Arc::new(a)))
                .collect(),
            hub: CompletionHub::new(),
            ledger: TenantLedger::default(),
            tenant_table: TenantTable::resolve(&config.tenants, config.queue_cost_limit),
            admission_rate,
            device_rates,
            started: Instant::now(),
            // 4096 windows at the default 250ms cover a 17-minute run —
            // far past any harness — in a few hundred KB worst case.
            windows: LatencyWindows::new(config.metrics_window, 4096),
            config,
        });
        // Planned placement partitions every registered assembly's chunk
        // space across the fleet up front, before any batch is formed.
        if shared.config.placement == Placement::Planned {
            shared.pool.install_plan(Arc::new(build_plan(
                &shared.models,
                &vec![true; devices],
                shared.config.chunk_size,
                &shared.assemblies,
            )));
        }

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared))
        };
        let workers = (0..devices)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();

        Service {
            shared,
            next_id: AtomicU64::new(0),
            batcher: Some(batcher),
            workers,
        }
    }

    /// Submit a job; on success the returned id can be passed to
    /// [`Service::wait`], [`Service::poll`], or [`Service::on_complete`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.submit_ticket(spec).map(|ticket| ticket.id)
    }

    /// Submit a job and get the full admission receipt: the job id plus
    /// the tenant, admitted cost, and deadline the QoS layer charged it
    /// under — everything a front end needs to poll for completion and to
    /// back off intelligently when a later submission sheds.
    pub fn submit_ticket(&self, spec: JobSpec) -> Result<Ticket, SubmitError> {
        if let Err(why) = validate(&spec) {
            self.shared
                .metrics
                .jobs_rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(why);
        }
        let Some(assembly) = self.shared.assemblies.get(&spec.assembly) else {
            self.shared
                .metrics
                .jobs_rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::UnknownAssembly(spec.assembly));
        };

        // Estimated work: assembly bases × search variants. This is what
        // the admission queue's cost budget charges. Library screens pay
        // the full per-guide cost up front — the fused fast path makes
        // them cheaper to *run*, not cheaper to *admit*, so one tenant's
        // screen cannot crowd out others by under-billing.
        let variants = match (&spec.bulge, &spec.library) {
            (Some(limits), _) => {
                let query = Query::new(spec.guide.clone(), spec.max_mismatches);
                enumerate_variants(&spec.pattern, &query, *limits).len() as u64
            }
            (None, Some(guides)) => guides.len() as u64,
            (None, None) => 1,
        };
        let cost = assembly.total_len() as u64 * variants;
        let tenant = spec.tenant;
        let deadline = spec.deadline;

        // Deadline-aware admission: translate the work already in flight
        // plus this job into a predicted completion time through the
        // calibrated device models, and reject infeasible deadlines up
        // front instead of admitting work that can only time out late.
        if let Some(slo) = deadline {
            let predicted = self.predicted_completion(cost);
            if predicted > slo {
                self.shared
                    .metrics
                    .jobs_rejected_deadline
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::DeadlineInfeasible { predicted });
            }
        }

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Content-addressed admission: a spec already served is answered
        // from the result cache without touching the queue, a spec already
        // computing merges onto its in-flight leader, and only a novel
        // spec enters the admission queue (inside the store lock, so a
        // racing duplicate either sees this leader or becomes one itself).
        let cached = (self.shared.config.result_cache_bytes > 0)
            .then(|| CanonicalSpec::digest(&spec, self.shared.config.chunk_size));
        // The publish key is set optimistically before the job can reach
        // the queue: once `admit` enqueues it, a worker may finish the
        // whole batch before this thread runs again, and the completion
        // path must find the key in place. Hit/Merged admissions never
        // enqueue, so they clear it below.
        let entry = JobEntry::new(
            tenant,
            cost,
            deadline,
            spec.bulge.is_some() || spec.library.is_some(),
            cached.clone(),
        );
        self.shared.hub.register(id, entry);
        let admission = match &cached {
            Some((digest, canon)) => {
                let job = Job { id, spec, cost };
                self.shared
                    .results
                    .admit(*digest, canon, id, || self.shared.queue.try_submit(job))
            }
            None => self
                .shared
                .queue
                .try_submit(Job { id, spec, cost })
                .map(|()| Admission::Admitted),
        };
        let ticket = Ticket {
            id,
            tenant,
            cost,
            deadline,
        };
        match admission {
            Ok(Admission::Hit(records)) => {
                self.shared
                    .metrics
                    .jobs_admitted
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.ledger.admitted(tenant);
                self.shared.windows.note_admitted(self.shared.now_ns());
                let completion = {
                    let mut jobs = self.shared.hub.jobs.lock().unwrap();
                    let entry = jobs.get_mut(&id).expect("entry inserted above");
                    entry.offtargets = records;
                    entry.publish = None;
                    // A hit never entered the fair queue, so it holds no
                    // tenant quota to release.
                    entry.charged = false;
                    self.shared.finish_entry(entry, id)
                };
                self.shared.settle(vec![completion]);
                Ok(ticket)
            }
            Ok(Admission::Merged) => {
                let mut jobs = self.shared.hub.jobs.lock().unwrap();
                let entry = jobs.get_mut(&id).expect("entry inserted above");
                entry.publish = None;
                // Merged followers ride the leader's compute; they never
                // entered the queue and hold no quota.
                entry.charged = false;
                drop(jobs);
                self.shared
                    .metrics
                    .jobs_admitted
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.ledger.admitted(tenant);
                self.shared.windows.note_admitted(self.shared.now_ns());
                Ok(ticket)
            }
            Ok(Admission::Admitted) => {
                self.shared
                    .metrics
                    .jobs_admitted
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.ledger.admitted(tenant);
                let now_ns = self.shared.now_ns();
                self.shared.windows.note_admitted(now_ns);
                // Only genuinely enqueued jobs move the depth gauge.
                self.shared.windows.note_depth(now_ns, self.shared.queue.depth());
                Ok(ticket)
            }
            Err(err) => {
                self.shared.hub.discard(id);
                match err {
                    QueueError::Shed { retry_after_cost } => {
                        self.shared.metrics.jobs_shed.fetch_add(1, Ordering::Relaxed);
                        self.shared.ledger.shed(tenant);
                        self.shared.windows.note_shed(self.shared.now_ns());
                        Err(SubmitError::Shed { retry_after_cost })
                    }
                    QueueError::Closed => Err(SubmitError::ShuttingDown),
                }
            }
        }
    }

    /// Predicted completion latency of a `cost`-unit job admitted now:
    /// everything in flight plus the job itself, drained at the
    /// calibrated aggregate rate of the *currently active* devices (a
    /// scaled-down pool honestly predicts longer waits), mapped to wall
    /// clock through the pacing factor.
    fn predicted_completion(&self, cost: u64) -> Duration {
        let pending = self.shared.queue.inflight_cost().saturating_add(cost);
        let sim_s = pending as f64 / self.shared.active_admission_rate().max(1e-12);
        Duration::from_secs_f64(self.shared.sim_to_wall(sim_s).min(1e9))
    }

    /// Predicted queue delay if a zero-cost probe were admitted now: the
    /// in-flight backlog drained at the active fleet's calibrated rate.
    /// This is the signal the autoscaling controller windows into a
    /// predicted p99 and compares against its SLO — it moves *before*
    /// completion latencies do, which is what makes scale-up reactive
    /// rather than post-hoc.
    pub fn predicted_queue_delay(&self) -> Duration {
        let sim_s =
            self.shared.queue.inflight_cost() as f64 / self.shared.active_admission_rate().max(1e-12);
        Duration::from_secs_f64(self.shared.sim_to_wall(sim_s).min(1e9))
    }

    /// Block until job `id` completes and take its records (canonically
    /// sorted, byte-identical to a serial run of the same query; for bulge
    /// jobs, the sorted deduplicated union over all variants). A thin
    /// wrapper over the non-blocking front end: the first successful
    /// collect takes the records, after which the id reports
    /// [`WaitError::Collected`]; ids never admitted report
    /// [`WaitError::UnknownJob`].
    pub fn wait(&self, id: JobId) -> Result<Vec<OffTarget>, WaitError> {
        self.shared.hub.wait(id, || {
            self.shared
                .metrics
                .blocking_waits
                .fetch_add(1, Ordering::Relaxed);
        })
    }

    /// Non-blocking completion check: [`Poll::Ready`] hands the records
    /// over exactly once, [`Poll::Pending`] means the job is still
    /// computing. Never parks the calling thread.
    pub fn poll(&self, id: JobId) -> Result<Poll, WaitError> {
        self.shared.hub.poll(id)
    }

    /// `Option`-shaped [`Service::poll`]: `Some(records)` exactly once
    /// when the job is done, `None` while it is still computing.
    pub fn try_wait(&self, id: JobId) -> Result<Option<Vec<OffTarget>>, WaitError> {
        match self.shared.hub.poll(id)? {
            Poll::Ready(records) => Ok(Some(records)),
            Poll::Pending => Ok(None),
        }
    }

    /// Register a completion waker for job `id`, invoked exactly once from
    /// the completion path, outside every service lock. Runs immediately
    /// if the job already finished (but was not yet collected); a later
    /// registration replaces an earlier one. Std-only and runtime-
    /// agnostic: an async executor wakes its task here, a reactor writes
    /// its response, a test counts completions.
    pub fn on_complete(
        &self,
        id: JobId,
        callback: impl FnOnce(JobId) + Send + 'static,
    ) -> Result<(), WaitError> {
        self.shared.hub.on_complete(id, Box::new(callback))
    }

    /// A point-in-time snapshot of the service's counters.
    pub fn metrics(&self) -> MetricsReport {
        let names: Vec<(String, String)> = self
            .shared
            .config
            .devices
            .iter()
            .map(|slot| (slot.spec.name.to_string(), slot.api.to_string()))
            .collect();
        let (sheds_quota, sheds_budget) = self.shared.queue.shed_counts();
        load_report(
            &self.shared.metrics,
            &names,
            crate::metrics::QueueView {
                depth: self.shared.queue.depth(),
                depth_high_water: self.shared.queue.depth_high_water(),
                sheds_quota,
                sheds_budget,
                tenants: self.shared.ledger.report(&self.shared.tenant_table),
            },
            {
                let (planned_hits, spill_fallbacks) = self.shared.pool.plan_counters();
                crate::metrics::PlanView {
                    planned_hits,
                    spill_fallbacks,
                }
            },
            VariantReport::delta(&self.shared.variant_baseline, &global_cache().stats()),
            self.shared.cache.stats(),
            self.shared.results.stats(),
            self.shared
                .candidates
                .as_ref()
                .map(|c| c.stats())
                .unwrap_or_default(),
        )
    }

    /// The installed chunk→device placement plan, if the service runs
    /// under [`Placement::Planned`].
    pub fn plan(&self) -> Option<Arc<ShardPlan>> {
        self.shared.pool.plan_snapshot()
    }

    /// Jobs sitting in the admission queue right now.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Snapshot of the windowed latency/queue-depth ring, oldest window
    /// first: per-window admitted/shed/completed counts, max observed
    /// queue depth, and completion-latency percentiles.
    pub fn latency_windows(&self) -> Vec<WindowReport> {
        self.shared.windows.reports()
    }

    /// Nearest-rank completion-latency quantile over every window the
    /// ring retains.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.shared.windows.latency_quantile_ns(q))
    }

    /// Fraction of retained completions that finished slower than `slo`.
    pub fn slo_violation_rate(&self, slo: Duration) -> f64 {
        self.shared
            .windows
            .violation_rate(u64::try_from(slo.as_nanos()).unwrap_or(u64::MAX))
    }

    /// Each device's calibrated sustained throughput in admission cost
    /// units per simulated second — what an external controller needs to
    /// predict the queue delay of hypothetical fleets before committing
    /// to a scale event.
    pub fn device_admission_rates(&self) -> Vec<f64> {
        self.shared.device_rates.clone()
    }

    /// Per-device fleet membership right now.
    pub fn active_devices(&self) -> Vec<bool> {
        self.shared.pool.active_snapshot()
    }

    /// Batches queued per device right now (running batches excluded).
    pub fn device_queue_depths(&self) -> Vec<usize> {
        self.shared.pool.queue_depths()
    }

    /// Predicted seconds of queued work per device; a retiring device's
    /// entry draining to zero is the drain-before-retire signal.
    pub fn device_pending_s(&self) -> Vec<f64> {
        self.shared.pool.pending_snapshot()
    }

    /// Summed admission cost of admitted-but-unfinished jobs.
    pub fn inflight_cost(&self) -> u64 {
        self.shared.queue.inflight_cost()
    }

    /// The configured wall-seconds-per-simulated-second pacing factor
    /// (`0.0` when pacing is off and simulated seconds pass at host
    /// speed).
    pub fn pacing(&self) -> f64 {
        self.shared.config.pacing
    }

    /// Mark a device in or out of the fleet. Out-of-fleet devices take no
    /// new placements (their queued batches still drain), and under
    /// [`Placement::Planned`] the plan is recomputed with the departed
    /// device's weight zeroed — range cuts shift only at partition edges
    /// and unregistered assemblies re-hash per chunk, so only chunks whose
    /// owner actually changed migrate. Returns that migration count (0
    /// without an installed plan).
    ///
    /// # Panics
    ///
    /// Panics if the call would deactivate the last active device.
    pub fn set_device_active(&self, device: usize, active: bool) -> usize {
        self.shared.pool.set_active(device, active);
        let Some(old) = self.shared.pool.plan_snapshot() else {
            return 0;
        };
        let fleet = self.shared.pool.active_snapshot();
        let new = Arc::new(build_plan(
            &self.shared.models,
            &fleet,
            self.shared.config.chunk_size,
            &self.shared.assemblies,
        ));
        let migrated = new.migrated_from(&old);
        self.shared.pool.install_plan(new);
        self.shared
            .metrics
            .migrated_chunks
            .fetch_add(migrated as u64, Ordering::Relaxed);
        migrated
    }

    /// Predicted per-device busy seconds for `passes` single-job scans of
    /// `assembly` under `pattern`, with every chunk running on the device
    /// the installed plan assigns it — the pre-run makespan estimate the
    /// sharding harness holds dispatch accountable to. `resident` prices
    /// chunks as already uploaded to their owners (the post-warmup steady
    /// state). Chunks are costed from their cached encoding where present,
    /// else from a throwaway encode of the same bytes. `None` without a
    /// plan or for an unknown assembly.
    pub fn plan_scan_prediction(
        &self,
        assembly: &str,
        pattern: &[u8],
        passes: usize,
        resident: bool,
    ) -> Option<Vec<f64>> {
        let plan = self.shared.pool.plan_snapshot()?;
        let asm = self.shared.assemblies.get(assembly)?;
        let bias = self.shared.pool.bias_snapshot();
        let plen = pattern.len();
        let key = BatchKey {
            assembly: assembly.to_string(),
            pattern: pattern.to_vec(),
        };
        let mut busy = vec![0.0; self.shared.models.len()];
        for (index, chunk) in Chunker::new(asm, self.shared.config.chunk_size, plen).enumerate() {
            if chunk.seq.len() < plen {
                continue;
            }
            let owner = plan.owner_of(assembly, index);
            let cache_key = ChunkKey {
                assembly: assembly.to_string(),
                plen,
                index,
            };
            let encoded = self.shared.cache.peek(&cache_key).unwrap_or_else(|| {
                Arc::new(EncodedChunk::encode(
                    chunk.chrom_index,
                    chunk.chrom_name.to_string(),
                    chunk.start,
                    chunk.scan_len,
                    chunk.seq,
                    self.shared.config.cache_encoding,
                ))
            });
            let cost =
                BatchCost::from_parts(pattern, &encoded, 1, residency_token(&key, index));
            busy[owner] += passes as f64
                * bias[owner][cost.class.index()]
                * self.shared.models[owner].predict_s(&cost, resident);
        }
        Some(busy)
    }

    /// The scheduler's current bias corrections, per device (outer) and
    /// payload class (inner: raw, packed 2-bit, packed char, nibble,
    /// multi-guide): the dimensionless measured/predicted EWMA each
    /// completion folds into the calibrated model. Surfaced so harnesses
    /// can report how far the operational correction has drifted from the
    /// calibrated prior.
    pub fn bias_corrections(&self) -> Vec<[f64; PayloadClass::COUNT]> {
        self.shared.pool.bias_snapshot()
    }

    /// Predicted per-device busy seconds of the one-pass partition warmup
    /// for a scan of `assembly` under `pattern`: each owned chunk's
    /// payload bytes at the owner's measured interconnect slope plus the
    /// fixed per-transfer charges — the cost the warmup moves out of the
    /// batch windows. `None` without a plan or for an unknown assembly.
    pub fn plan_warmup_prediction(&self, assembly: &str, pattern: &[u8]) -> Option<Vec<f64>> {
        let plan = self.shared.pool.plan_snapshot()?;
        let asm = self.shared.assemblies.get(assembly)?;
        let plen = pattern.len();
        let key = BatchKey {
            assembly: assembly.to_string(),
            pattern: pattern.to_vec(),
        };
        let mut busy = vec![0.0; self.shared.models.len()];
        for (index, chunk) in Chunker::new(asm, self.shared.config.chunk_size, plen).enumerate() {
            if chunk.seq.len() < plen {
                continue;
            }
            let owner = plan.owner_of(assembly, index);
            let cache_key = ChunkKey {
                assembly: assembly.to_string(),
                plen,
                index,
            };
            let encoded = self.shared.cache.peek(&cache_key).unwrap_or_else(|| {
                Arc::new(EncodedChunk::encode(
                    chunk.chrom_index,
                    chunk.chrom_name.to_string(),
                    chunk.start,
                    chunk.scan_len,
                    chunk.seq,
                    self.shared.config.cache_encoding,
                ))
            });
            let cost =
                BatchCost::from_parts(pattern, &encoded, 1, residency_token(&key, index));
            busy[owner] += self.shared.models[owner].predict_prefetch_s(&cost);
        }
        Some(busy)
    }

    /// Stop admissions, drain queued work, and join all service threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.queue.close();
        if let Some(batcher) = self.batcher.take() {
            batcher.join().expect("batcher thread panicked");
        }
        self.shared.pool.close();
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Build a placement plan over the registered assemblies: each device is
/// weighted by its calibrated sustained admission throughput at the
/// service chunk size (zeroed while out of the fleet), each assembly
/// contributes its chunk count at that size. Assemblies are registered in
/// sorted name order so the plan is a deterministic function of the fleet
/// and the genome set, not of hash-map iteration order.
fn build_plan(
    models: &[DeviceModel],
    active: &[bool],
    chunk_size: usize,
    assemblies: &HashMap<String, Arc<Assembly>>,
) -> ShardPlan {
    let weights: Vec<f64> = models
        .iter()
        .zip(active)
        .map(|(m, &a)| {
            if a {
                m.admission_units_per_s(chunk_size)
            } else {
                0.0
            }
        })
        .collect();
    let mut counts: Vec<(String, usize)> = assemblies
        .iter()
        .map(|(name, asm)| (name.clone(), Chunker::new(asm, chunk_size, 0).count_chunks()))
        .collect();
    counts.sort();
    ShardPlan::build(&weights, &counts)
}

/// Structural spec validation (everything except assembly lookup).
fn validate(spec: &JobSpec) -> Result<(), SubmitError> {
    if spec.pattern.is_empty() {
        return Err(SubmitError::BadJob("empty pattern".into()));
    }
    if let Some(guides) = &spec.library {
        if guides.is_empty() {
            return Err(SubmitError::BadJob("empty guide library".into()));
        }
        if spec.bulge.is_some() {
            return Err(SubmitError::BadJob(
                "library screens cannot combine with bulge search".into(),
            ));
        }
        for (i, guide) in guides.iter().enumerate() {
            if guide.len() != spec.pattern.len() {
                return Err(SubmitError::BadJob(format!(
                    "library guide {i} length {} != pattern length {}",
                    guide.len(),
                    spec.pattern.len()
                )));
            }
        }
    } else if spec.guide.len() != spec.pattern.len() {
        return Err(SubmitError::BadJob(format!(
            "guide length {} != pattern length {}",
            spec.guide.len(),
            spec.pattern.len()
        )));
    }
    if let Some(limits) = spec.bulge {
        let spacer = spec.guide.iter().take_while(|&&c| c != b'N').count();
        if spacer < 2 {
            return Err(SubmitError::BadJob(format!(
                "bulge search needs a spacer of at least 2 non-N guide bases, got {spacer}"
            )));
        }
        if limits.max_rna as usize >= spacer {
            return Err(SubmitError::BadJob(format!(
                "max_rna bulge size {} must be smaller than the {spacer}-base spacer",
                limits.max_rna
            )));
        }
    }
    Ok(())
}

/// The batcher thread: drain admitted jobs, expand bulge jobs into
/// per-variant unit searches, coalesce, plan chunk tasks through the
/// cache, and dispatch to the pool (blocking on in-flight limits, which is
/// what propagates backpressure to the admission queue).
fn batcher_loop(shared: &Shared) {
    // How many queued jobs to drain opportunistically per round; bounds the
    // latency a queued job can sit waiting for co-batchable company.
    const DRAIN: usize = 64;
    while let Some(first) = shared.queue.pop() {
        let mut round = vec![first];
        while round.len() < DRAIN {
            match shared.queue.try_pop() {
                Some(job) => round.push(job),
                None => break,
            }
        }
        // Sample the depth on the drain side too, so windows see troughs
        // even when nothing is being submitted.
        shared
            .windows
            .note_depth(shared.now_ns(), shared.queue.depth());

        // Bulge and library expansion: each variant (or library guide) is
        // an independent plain search under its own (pattern, guide);
        // workers fold every unit's records into the owning job's entry.
        // Library units all share the screen's PAM pattern, so they group
        // into the same (assembly, pattern) batches as each other — and as
        // any concurrent plain or bulge units under that pattern — sharing
        // one chunk upload, one finder pass, and fused comparer launches.
        let mut units: Vec<Job> = Vec::new();
        for job in round {
            if let Some(limits) = job.spec.bulge {
                let query = Query::new(job.spec.guide.clone(), job.spec.max_mismatches);
                for v in enumerate_variants(&job.spec.pattern, &query, limits) {
                    let mut spec = job.spec.clone();
                    spec.pattern = v.pattern;
                    spec.guide = v.query;
                    spec.bulge = None;
                    units.push(Job {
                        id: job.id,
                        spec,
                        cost: 0,
                    });
                }
            } else if let Some(guides) = job.spec.library.clone() {
                for guide in guides {
                    let mut spec = job.spec.clone();
                    spec.guide = guide;
                    spec.library = None;
                    units.push(Job {
                        id: job.id,
                        spec,
                        cost: 0,
                    });
                }
            } else {
                units.push(job);
            }
        }

        // Plan every group in the round before publishing any `remaining`
        // count: a bulge job's variants land in several groups (bulged
        // patterns differ in length), and its count must cover all of them
        // before the first batch can complete on a worker. `remaining`
        // counts memberships — a job appearing twice in one batch (two
        // variants sharing a pattern) is decremented twice by it.
        let mut per_job_memberships: HashMap<JobId, usize> =
            units.iter().map(|j| (j.id, 0)).collect();
        let mut round_batches: Vec<ChunkBatch> = Vec::new();
        for (key, jobs) in group_jobs(units, shared.config.max_batch) {
            let assembly = Arc::clone(&shared.assemblies[&key.assembly]);
            let plen = key.pattern.len();
            let members: Vec<BatchJob> = jobs
                .iter()
                .map(|job| BatchJob {
                    id: job.id,
                    query: Query::new(job.spec.guide.clone(), job.spec.max_mismatches),
                })
                .collect();

            let mut batches = Vec::new();
            for (index, chunk) in
                Chunker::new(&assembly, shared.config.chunk_size, plen).enumerate()
            {
                if chunk.seq.len() < plen {
                    continue;
                }
                let cache_key = ChunkKey {
                    assembly: key.assembly.clone(),
                    plen,
                    index,
                };
                let encoded = shared.cache.get_or_insert_with(&cache_key, || {
                    EncodedChunk::encode(
                        chunk.chrom_index,
                        chunk.chrom_name.to_string(),
                        chunk.start,
                        chunk.scan_len,
                        chunk.seq,
                        shared.config.cache_encoding,
                    )
                });
                batches.push(ChunkBatch {
                    key: key.clone(),
                    chunk_index: index,
                    chunk: encoded,
                    jobs: members.clone(),
                });
            }
            for job in &jobs {
                *per_job_memberships
                    .get_mut(&job.id)
                    .expect("every unit was registered") += batches.len();
            }
            round_batches.extend(batches);
        }

        let mut published: Vec<((u64, CanonicalSpec), Vec<OffTarget>)> = Vec::new();
        let mut completions = Vec::new();
        {
            let mut entries = shared.hub.jobs.lock().unwrap();
            for (&id, &count) in &per_job_memberships {
                if let Some(entry) = entries.get_mut(&id) {
                    entry.remaining = Some(count);
                    if count == 0 {
                        if let Some(key) = entry.publish.take() {
                            published.push((key, entry.offtargets.clone()));
                        }
                        completions.push(shared.finish_entry(entry, id));
                    }
                }
            }
        }
        shared.settle(completions);
        // An empty plan (pattern longer than every chromosome) is still a
        // result set: cache it and complete any merged duplicates.
        shared.fulfill_followers(published);

        // Planned placement: spread each owner's batches evenly across the
        // round so no device's in-flight window fills while siblings idle.
        let round_batches = match (shared.config.placement, shared.pool.plan_snapshot()) {
            (Placement::Planned, Some(plan)) => interleave_by_owner(round_batches, &plan),
            _ => round_batches,
        };

        for batch in round_batches {
            shared
                .metrics
                .batches_formed
                .fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .coalesced_jobs
                .fetch_add(batch.jobs.len() as u64, Ordering::Relaxed);
            shared.pool.dispatch(batch);
        }
    }
}

/// A worker's per-pattern pipeline runner. Runners are built inside the
/// worker thread (device contexts are not `Send`) and cached per PAM
/// pattern so repeat batches skip steps 1-8.
enum Runner {
    Ocl(Box<OclChunkRunner>),
    Sycl(Box<SyclChunkRunner>),
}

impl Runner {
    fn elapsed_s(&self) -> f64 {
        match self {
            Runner::Ocl(r) => {
                r.finish();
                r.elapsed_s()
            }
            Runner::Sycl(r) => {
                r.wait();
                r.elapsed_s()
            }
        }
    }
}

fn worker_loop(shared: &Shared, w: usize) {
    let slot = &shared.config.devices[w];
    let pipeline_config = PipelineConfig::new(slot.spec.clone())
        .chunk_size(shared.config.chunk_size)
        .opt(shared.config.opt)
        .exec_mode(ExecMode::Sequential)
        .resident_slots(shared.config.resident_chunks.max(1))
        .specialize(shared.config.specialize)
        .multi_guide(shared.config.multi_guide);
    let mut runners: HashMap<Vec<u8>, Runner> = HashMap::new();
    // (pattern, assembly) pairs whose planned partition this worker has
    // already warmed — the one-pass prefetch runs on first touch only.
    let mut prefetched: HashSet<(Vec<u8>, String)> = HashSet::new();
    let mut timing = TimingBreakdown::default();
    let mut profile = gpu_sim::profile::Profile::new();
    let device = &shared.metrics.devices[w];

    while let Some(assignment) = shared.pool.next(w) {
        let started = std::time::Instant::now();
        let batch = assignment.batch;
        device.batches.fetch_add(1, Ordering::Relaxed);
        if assignment.stolen {
            device.steals.fetch_add(1, Ordering::Relaxed);
        }

        let runner = runners
            .entry(batch.key.pattern.clone())
            .or_insert_with(|| match slot.api {
                Api::OpenCl => Runner::Ocl(Box::new(
                    OclChunkRunner::new(&pipeline_config, &batch.key.pattern)
                        .expect("simulated OpenCL setup cannot fail on valid patterns"),
                )),
                Api::Sycl => Runner::Sycl(Box::new(
                    SyclChunkRunner::new(&pipeline_config, &batch.key.pattern)
                        .expect("simulated SYCL setup cannot fail on valid patterns"),
                )),
            });
        // One-pass warmup: on this worker's first batch of an (assembly,
        // pattern), upload its whole planned partition into the runner's
        // resident slots up front instead of demand-missing chunk by
        // chunk. The uploads bill the device's busy time (they are real
        // transfers) but sit outside the per-batch prediction window —
        // dispatch prices warmed batches as resident, not as paying them.
        if shared.config.resident_chunks > 0
            && shared.config.placement == Placement::Planned
            && prefetched.insert((batch.key.pattern.clone(), batch.key.assembly.clone()))
        {
            if let Some(plan) = shared.pool.plan_snapshot() {
                let before = runner.elapsed_s();
                prefetch_partition(shared, w, runner, &plan, &batch.key);
                device.busy_ns.fetch_add(
                    busy_ns_from_s((runner.elapsed_s() - before).max(0.0)),
                    Ordering::Relaxed,
                );
            }
        }
        let queries: Vec<Query> = batch.jobs.iter().map(|job| job.query.clone()).collect();
        let plen = batch.key.pattern.len();
        let busy_before = runner.elapsed_s();
        // With residency enabled, batches run through the runners' resident
        // entry points: the runner checks the chunk's token against its
        // resident slots and skips the chunk upload on a match. `reused` is
        // the runner's verdict (ground truth), not the scheduler's guess.
        let token = (shared.config.resident_chunks > 0)
            .then(|| residency_token(&batch.key, batch.chunk_index));
        let scan_len = batch.chunk.scan_len;
        // Candidate-cache flow: a chunk already swept under this pattern
        // replays its cached finder output (`Hit`) instead of launching
        // the finder; a first sweep (`Lead`) runs with capture armed and
        // publishes the list for every later sweep. Packed chunks that are
        // not 2-bit-safe are excluded — the cached packed entry point has
        // no char fallback, and their finder run decodes on-device for the
        // char comparer anyway.
        let cacheable = match &batch.chunk.payload {
            ChunkPayload::Packed(p) => twobit_compare_safe(p),
            _ => true,
        };
        let candidate_cache = shared
            .candidates
            .as_ref()
            .filter(|_| cacheable)
            .map(|cache| (cache, CandidateKey::of(&batch.key.pattern, &batch.chunk)));
        let mut cached_sites = None;
        let mut lead = false;
        if let Some((cache, key)) = &candidate_cache {
            match cache.lookup_or_lead(key) {
                // Only replay a list the dispatcher *priced*: a lead that
                // published between the dispatch peek and this lookup is
                // declined (the finder re-runs at the cost the batch was
                // predicted at) so measured time tracks predicted time.
                CandidateLookup::Hit(sites) if assignment.finder_cached => {
                    cached_sites = Some(sites);
                }
                CandidateLookup::Hit(_) => {}
                CandidateLookup::Lead => lead = true,
            }
        }
        // The cached entry points are resident-shaped (they track the
        // chunk by token); hand them the real token so repeat sweeps also
        // skip the chunk upload when the payload is still on-device.
        let token_value = residency_token(&batch.key, batch.chunk_index);
        let launches_before = (
            timing.finder_launches,
            timing.finder_launches_skipped,
            timing.comparer_launches,
            timing.fused_launches,
        );
        let (per_query, reused) = match runner {
            Runner::Ocl(r) => {
                let tables = r
                    .prepare_queries(&queries)
                    .expect("simulated buffer upload cannot fail");
                if lead {
                    r.set_capture_candidates(true);
                }
                let out = if let Some(sites) = &cached_sites {
                    match &batch.chunk.payload {
                        ChunkPayload::Packed(packed) => r.run_packed_chunk_cached_candidates(
                            token_value, packed, sites, &tables, &mut timing, &mut profile,
                        ),
                        ChunkPayload::Nibble(nibble) => r.run_nibble_chunk_cached_candidates(
                            token_value, nibble, sites, &tables, &mut timing, &mut profile,
                        ),
                        ChunkPayload::Raw(seq) => r.run_chunk_cached_candidates(
                            token_value, seq, sites, &tables, &mut timing, &mut profile,
                        ),
                    }
                    .map(|(q, chunk_reused)| (q, token.map(|_| chunk_reused)))
                } else {
                    match (&batch.chunk.payload, token) {
                    (ChunkPayload::Packed(packed), Some(t)) => r
                        .run_packed_chunk_resident(
                            t, packed, scan_len, &tables, &mut timing, &mut profile,
                        )
                        .map(|(q, reused)| (q, Some(reused))),
                    (ChunkPayload::Packed(packed), None) => r
                        .run_packed_chunk(packed, scan_len, &tables, &mut timing, &mut profile)
                        .map(|q| (q, None)),
                    (ChunkPayload::Nibble(nibble), Some(t)) => r
                        .run_nibble_chunk_resident(
                            t, nibble, scan_len, &tables, &mut timing, &mut profile,
                        )
                        .map(|(q, reused)| (q, Some(reused))),
                    (ChunkPayload::Nibble(nibble), None) => r
                        .run_nibble_chunk(nibble, scan_len, &tables, &mut timing, &mut profile)
                        .map(|q| (q, None)),
                    (ChunkPayload::Raw(seq), Some(t)) => r
                        .run_chunk_resident(t, seq, scan_len, &tables, &mut timing, &mut profile)
                        .map(|(q, reused)| (q, Some(reused))),
                    (ChunkPayload::Raw(seq), None) => r
                        .run_chunk(seq, scan_len, &tables, &mut timing, &mut profile)
                        .map(|q| (q, None)),
                    }
                }
                .expect("simulated OpenCL launch cannot fail");
                if lead {
                    let (cache, key) = candidate_cache.as_ref().expect("lead implies a cache");
                    match r.take_captured_candidates() {
                        Some(sites) => cache.publish(key, Arc::new(sites)),
                        None => cache.abandon(key),
                    }
                    r.set_capture_candidates(false);
                }
                tables.release();
                out
            }
            Runner::Sycl(r) => {
                let tables = r.prepare_queries(&queries);
                if lead {
                    r.set_capture_candidates(true);
                }
                let out = if let Some(sites) = &cached_sites {
                    match &batch.chunk.payload {
                        ChunkPayload::Packed(packed) => r.run_packed_chunk_cached_candidates(
                            token_value, packed, sites, &tables, &mut timing, &mut profile,
                        ),
                        ChunkPayload::Nibble(nibble) => r.run_nibble_chunk_cached_candidates(
                            token_value, nibble, sites, &tables, &mut timing, &mut profile,
                        ),
                        ChunkPayload::Raw(seq) => r.run_chunk_cached_candidates(
                            token_value, seq, sites, &tables, &mut timing, &mut profile,
                        ),
                    }
                    .map(|(q, chunk_reused)| (q, token.map(|_| chunk_reused)))
                } else {
                    match (&batch.chunk.payload, token) {
                    (ChunkPayload::Packed(packed), Some(t)) => r
                        .run_packed_chunk_resident(
                            t, packed, scan_len, &tables, &mut timing, &mut profile,
                        )
                        .map(|(q, reused)| (q, Some(reused))),
                    (ChunkPayload::Packed(packed), None) => r
                        .run_packed_chunk(packed, scan_len, &tables, &mut timing, &mut profile)
                        .map(|q| (q, None)),
                    (ChunkPayload::Nibble(nibble), Some(t)) => r
                        .run_nibble_chunk_resident(
                            t, nibble, scan_len, &tables, &mut timing, &mut profile,
                        )
                        .map(|(q, reused)| (q, Some(reused))),
                    (ChunkPayload::Nibble(nibble), None) => r
                        .run_nibble_chunk(nibble, scan_len, &tables, &mut timing, &mut profile)
                        .map(|q| (q, None)),
                    (ChunkPayload::Raw(seq), Some(t)) => r
                        .run_chunk_resident(t, seq, scan_len, &tables, &mut timing, &mut profile)
                        .map(|(q, reused)| (q, Some(reused))),
                    (ChunkPayload::Raw(seq), None) => r
                        .run_chunk(seq, scan_len, &tables, &mut timing, &mut profile)
                        .map(|q| (q, None)),
                    }
                }
                .expect("simulated SYCL launch cannot fail");
                if lead {
                    let (cache, key) = candidate_cache.as_ref().expect("lead implies a cache");
                    match r.take_captured_candidates() {
                        Some(sites) => cache.publish(key, Arc::new(sites)),
                        None => cache.abandon(key),
                    }
                    r.set_capture_candidates(false);
                }
                out
            }
        };
        shared
            .metrics
            .finder_launches
            .fetch_add((timing.finder_launches - launches_before.0) as u64, Ordering::Relaxed);
        shared.metrics.finder_launches_skipped.fetch_add(
            (timing.finder_launches_skipped - launches_before.1) as u64,
            Ordering::Relaxed,
        );
        shared.metrics.comparer_launches.fetch_add(
            (timing.comparer_launches - launches_before.2) as u64,
            Ordering::Relaxed,
        );
        shared
            .metrics
            .fused_launches
            .fetch_add((timing.fused_launches - launches_before.3) as u64, Ordering::Relaxed);
        // Which comparer the payload selected — the serving-level view of
        // the fallback the adaptive encoding exists to avoid.
        let comparer_counter = match &batch.chunk.payload {
            ChunkPayload::Nibble(_) => &shared.metrics.comparer_4bit_batches,
            ChunkPayload::Packed(p) if twobit_compare_safe(p) => {
                &shared.metrics.comparer_2bit_batches
            }
            ChunkPayload::Packed(_) | ChunkPayload::Raw(_) => {
                &shared.metrics.comparer_char_batches
            }
        };
        comparer_counter.fetch_add(1, Ordering::Relaxed);
        if let Some(reused) = reused {
            let counter = if reused {
                &device.resident_hits
            } else {
                &device.resident_misses
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        let busy_delta = (runner.elapsed_s() - busy_before).max(0.0);
        device
            .busy_ns
            .fetch_add(busy_ns_from_s(busy_delta), Ordering::Relaxed);
        device
            .predicted_ns
            .fetch_add(busy_ns_from_s(assignment.predicted_s), Ordering::Relaxed);
        device.prediction_abs_err_ns.fetch_add(
            busy_ns_from_s((assignment.predicted_s - busy_delta).abs()),
            Ordering::Relaxed,
        );
        if shared.config.pacing > 0.0 {
            let hold = std::time::Duration::from_secs_f64(busy_delta * shared.config.pacing);
            let elapsed = started.elapsed();
            if hold > elapsed {
                std::thread::sleep(hold - elapsed);
            }
        }
        shared.pool.complete(
            w,
            assignment.class,
            assignment.predicted_s,
            assignment.model_s,
            busy_delta,
        );

        // Traffic is a per-device gauge: sum over this worker's runners.
        let mut launches = 0;
        let mut h2d = 0;
        let mut d2h = 0;
        let mut h2d_skipped = 0;
        for r in runners.values() {
            let t = match r {
                Runner::Ocl(r) => r.traffic(),
                Runner::Sycl(r) => r.traffic(),
            };
            launches += t.kernel_launches;
            h2d += t.h2d_bytes;
            d2h += t.d2h_bytes;
            h2d_skipped += t.h2d_skipped_bytes;
        }
        device.kernel_launches.store(launches, Ordering::Relaxed);
        device.h2d_bytes.store(h2d, Ordering::Relaxed);
        device.d2h_bytes.store(d2h, Ordering::Relaxed);
        device
            .h2d_skipped_bytes
            .store(h2d_skipped, Ordering::Relaxed);

        // Fold each job's entries into its record set; the last chunk of a
        // job sorts and publishes. Packed payloads decode losslessly, so
        // the host-side record extraction sees the original bytes.
        let decoded = batch.chunk.decode();
        let genome_chunk = genome::Chunk {
            chrom_index: batch.chunk.chrom_index,
            chrom_name: &batch.chunk.chrom,
            start: batch.chunk.start,
            seq: decoded.as_ref(),
            scan_len: batch.chunk.scan_len,
        };
        let mut published: Vec<((u64, CanonicalSpec), Vec<OffTarget>)> = Vec::new();
        let mut completions = Vec::new();
        let mut entries = shared.hub.jobs.lock().unwrap();
        for (member, member_entries) in batch.jobs.iter().zip(&per_query) {
            let Some(entry) = entries.get_mut(&member.id) else {
                continue;
            };
            entries_to_offtargets(
                &genome_chunk,
                &member.query.seq,
                plen,
                member_entries,
                &mut entry.offtargets,
            );
            let remaining = entry
                .remaining
                .as_mut()
                .expect("batcher planned the job before dispatch");
            *remaining -= 1;
            if *remaining == 0 {
                sort_canonical(&mut entry.offtargets);
                if entry.dedup {
                    entry.offtargets.dedup();
                }
                if let Some(key) = entry.publish.take() {
                    published.push((key, entry.offtargets.clone()));
                }
                completions.push(shared.finish_entry(entry, member.id));
            }
        }
        drop(entries);
        // Outside the jobs lock: release quotas, account the tenants, fire
        // callbacks, then cache the finished leaders' records and complete
        // any duplicates that merged onto them while computing.
        shared.settle(completions);
        shared.fulfill_followers(published);
    }
}

/// Upload every chunk of `key`'s assembly that `plan` assigns to worker
/// `w` into `runner`'s resident slots — one sequential pass over the
/// partition — and mirror each token into the scheduler's residency
/// prediction so planned batches get priced with the discount the runner
/// will deliver. Chunks already resident (a warm runner, or a re-warm
/// after plan recompute) are skipped without re-uploading; only real
/// transfers count toward the prefetch metric.
fn prefetch_partition(shared: &Shared, w: usize, runner: &Runner, plan: &ShardPlan, key: &BatchKey) {
    let Some(assembly) = shared.assemblies.get(&key.assembly) else {
        return;
    };
    let plen = key.pattern.len();
    let mut uploads = 0u64;
    for (index, chunk) in Chunker::new(assembly, shared.config.chunk_size, plen).enumerate() {
        if chunk.seq.len() < plen || plan.owner_of(&key.assembly, index) != w {
            continue;
        }
        let cache_key = ChunkKey {
            assembly: key.assembly.clone(),
            plen,
            index,
        };
        let encoded = shared.cache.get_or_insert_with(&cache_key, || {
            EncodedChunk::encode(
                chunk.chrom_index,
                chunk.chrom_name.to_string(),
                chunk.start,
                chunk.scan_len,
                chunk.seq,
                shared.config.cache_encoding,
            )
        });
        let token = residency_token(key, index);
        const INFALLIBLE: &str = "simulated prefetch cannot fail";
        let uploaded = match (runner, &encoded.payload) {
            (Runner::Ocl(r), ChunkPayload::Packed(p)) => {
                r.prefetch_packed_chunk(token, p).expect(INFALLIBLE)
            }
            (Runner::Ocl(r), ChunkPayload::Nibble(nb)) => {
                r.prefetch_nibble_chunk(token, nb).expect(INFALLIBLE)
            }
            (Runner::Ocl(r), ChunkPayload::Raw(seq)) => {
                r.prefetch_chunk(token, seq).expect(INFALLIBLE)
            }
            (Runner::Sycl(r), ChunkPayload::Packed(p)) => {
                r.prefetch_packed_chunk(token, p).expect(INFALLIBLE)
            }
            (Runner::Sycl(r), ChunkPayload::Nibble(nb)) => {
                r.prefetch_nibble_chunk(token, nb).expect(INFALLIBLE)
            }
            (Runner::Sycl(r), ChunkPayload::Raw(seq)) => {
                r.prefetch_chunk(token, seq).expect(INFALLIBLE)
            }
        };
        if uploaded {
            uploads += 1;
        }
        shared.pool.note_resident(w, token);
    }
    shared
        .metrics
        .prefetch_uploads
        .fetch_add(uploads, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cas_offinder::bulge::BulgeLimits;
    use genome::Chromosome;

    fn toy_assembly() -> Assembly {
        let mut asm = Assembly::new("toy");
        asm.push(Chromosome::new(
            "chr1",
            b"ACGTACGTAGGTTTACGTACGAAGCCCCCACGTACGTCGGACGTTAGGTACCGGTTAACCGG".to_vec(),
        ));
        asm.push(Chromosome::new(
            "chr2",
            b"TTTACGTACGAAGCCCCCACGTACGTCGGACGTACGTAGG".to_vec(),
        ));
        asm
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            chunk_size: 16,
            queue_cost_limit: 1_000_000,
            cache_bytes: 4096,
            ..ServiceConfig::paper_pool()
        }
    }

    fn plain_oracle(
        assembly: &Assembly,
        pattern: &[u8],
        guide: &[u8],
        max_mismatches: u16,
    ) -> Vec<OffTarget> {
        let mut text = String::new();
        text.push_str("toy\n");
        text.push_str(std::str::from_utf8(pattern).unwrap());
        text.push('\n');
        text.push_str(std::str::from_utf8(guide).unwrap());
        text.push(' ');
        text.push_str(&max_mismatches.to_string());
        text.push('\n');
        let input = cas_offinder::SearchInput::parse(&text).unwrap();
        cas_offinder::cpu::search_sequential(assembly, &input)
    }

    fn serial_oracle(assembly: &Assembly, spec: &JobSpec) -> Vec<OffTarget> {
        plain_oracle(assembly, &spec.pattern, &spec.guide, spec.max_mismatches)
    }

    /// Twelve *distinct* guides — with result-level dedup on by default, a
    /// repeated spec would be served from the cache instead of coalescing
    /// into batches, which is exercised separately below.
    fn distinct_specs(n: usize) -> Vec<JobSpec> {
        let bases = [b'A', b'C', b'G', b'T'];
        (0..n)
            .map(|i| {
                let mut guide = b"ACGTACGTNNN".to_vec();
                guide[0] = bases[i % 4];
                guide[1] = bases[(i / 4) % 4];
                JobSpec::new("toy", b"NNNNNNNNNRG".to_vec(), guide, 3)
            })
            .collect()
    }

    #[test]
    fn served_results_match_the_serial_oracle() {
        let service = Service::start(small_config(), vec![toy_assembly()]);
        let assembly = toy_assembly();
        let specs = distinct_specs(12);
        let ids: Vec<JobId> = specs
            .iter()
            .map(|s| service.submit(s.clone()).unwrap())
            .collect();
        for (id, spec) in ids.iter().zip(&specs) {
            let got = service.wait(*id).unwrap();
            assert_eq!(got, serial_oracle(&assembly, spec));
        }
        let report = service.metrics();
        assert_eq!(report.jobs_completed, 12);
        assert!(report.coalescing_ratio() > 1.0, "{report}");
        assert!(report.cache_hit_rate() > 0.0, "{report}");
        assert!(report.cache.bytes_resident > 0, "{report}");
        service.shutdown();
    }

    #[test]
    fn raw_encoding_serves_identical_results_with_more_upload_bytes() {
        // One device, so both services run the same batches on the same
        // runner and the traffic totals differ only by chunk encoding.
        let mut config = small_config();
        config.devices.truncate(1);
        let packed = Service::start(config.clone(), vec![toy_assembly()]);
        let raw = Service::start(
            ServiceConfig {
                cache_encoding: ChunkEncoding::Raw,
                ..config
            },
            vec![toy_assembly()],
        );
        let spec = JobSpec::new(
            "toy",
            b"NNNNNNNNNRG".to_vec(),
            b"ACGTACGTNNN".to_vec(),
            3,
        );
        let a = packed.submit(spec.clone()).unwrap();
        let b = raw.submit(spec).unwrap();
        let from_packed = packed.wait(a).unwrap();
        let from_raw = raw.wait(b).unwrap();
        assert_eq!(from_packed, from_raw, "encoding never changes results");
        let up_packed: u64 = packed.metrics().devices.iter().map(|d| d.h2d_bytes).sum();
        let up_raw: u64 = raw.metrics().devices.iter().map(|d| d.h2d_bytes).sum();
        assert!(
            up_packed < up_raw,
            "packed uploads must be smaller: {up_packed} vs {up_raw}"
        );
    }

    #[test]
    fn repeat_chunks_reuse_resident_payloads_and_skip_uploads() {
        // One device and a residency budget covering the whole toy genome;
        // the result cache is off so the repeat spec really recomputes.
        let mut config = small_config();
        config.devices.truncate(1);
        config.resident_chunks = 16;
        config.result_cache_bytes = 0;
        let service = Service::start(config, vec![toy_assembly()]);
        let spec = JobSpec::new(
            "toy",
            b"NNNNNNNNNRG".to_vec(),
            b"ACGTACGTNNN".to_vec(),
            3,
        );
        let first = service.wait(service.submit(spec.clone()).unwrap()).unwrap();
        let second = service.wait(service.submit(spec.clone()).unwrap()).unwrap();
        assert_eq!(first, second, "residency never changes results");
        assert_eq!(first, serial_oracle(&toy_assembly(), &spec));
        let report = service.metrics();
        assert_eq!(report.results.misses, 0, "result cache is disabled");
        assert!(
            report.resident_hit_rate() > 0.0,
            "the repeat pass must find chunks resident: {report}"
        );
        assert!(
            report.h2d_skipped_bytes() > 0,
            "resident reuse must skip real upload bytes: {report}"
        );
    }

    #[test]
    fn duplicate_specs_coalesce_into_one_compute() {
        let service = Service::start(small_config(), vec![toy_assembly()]);
        let spec = JobSpec::new(
            "toy",
            b"NNNNNNNNNRG".to_vec(),
            b"ACGTACGTNNN".to_vec(),
            3,
        );
        let expect = serial_oracle(&toy_assembly(), &spec);
        let ids: Vec<JobId> = (0..6)
            .map(|_| service.submit(spec.clone()).unwrap())
            .collect();
        for id in ids {
            assert_eq!(service.wait(id).unwrap(), expect);
        }
        let report = service.metrics();
        assert_eq!(report.jobs_completed, 6);
        assert_eq!(
            report.results.misses, 1,
            "exactly one compute leader: {report}"
        );
        assert_eq!(
            report.results.hits + report.results.merges,
            5,
            "every duplicate was served from the store: {report}"
        );
    }

    #[test]
    fn calibrated_predictions_beat_the_hand_tuned_packed_baseline() {
        // PR 3's hand-tuned constants left the packed path at 0.52 mean
        // |predicted − measured| / busy while the raw path sat at 0.19.
        // With measured per-kernel rates the packed path must at least
        // drop below that raw baseline.
        let mut config = ServiceConfig::paper_pool();
        config.chunk_size = 1 << 10;
        config.result_cache_bytes = 0; // every job must really execute
        let service = Service::start(config, vec![genome::synth::hg38_mini(0.002)]);
        let ids: Vec<JobId> = (0..8)
            .map(|i| {
                let bases = [b'A', b'C', b'G', b'T'];
                let mut guide = b"ACGTACGTNNN".to_vec();
                guide[0] = bases[i % 4];
                guide[1] = bases[(i / 4) % 4];
                service
                    .submit(JobSpec::new(
                        "hg38-mini",
                        b"NNNNNNNNNRG".to_vec(),
                        guide,
                        3,
                    ))
                    .unwrap()
            })
            .collect();
        for id in ids {
            service.wait(id).unwrap();
        }
        let report = service.metrics();
        assert!(
            report.mean_prediction_error() < 0.19,
            "packed-path error must beat the raw baseline: {report}"
        );
    }

    #[test]
    fn masked_assemblies_serve_on_the_nibble_path_without_char_fallback() {
        // An exception-dense assembly under the adaptive default: every
        // dense chunk must select the 4-bit comparer (zero char-fallback
        // batches), and the results must still match the serial oracle.
        let mut config = small_config();
        config.chunk_size = 256;
        let assembly = genome::synth::hg38_masked_mini(0.001);
        let service = Service::start(config, vec![assembly.clone()]);
        let specs: Vec<JobSpec> = distinct_specs(4)
            .into_iter()
            .map(|mut s| {
                s.assembly = "hg38-masked".into();
                s
            })
            .collect();
        for spec in &specs {
            let got = service.wait(service.submit(spec.clone()).unwrap()).unwrap();
            assert_eq!(
                got,
                plain_oracle(&assembly, &spec.pattern, &spec.guide, spec.max_mismatches),
                "nibble-path serving must be byte-identical"
            );
        }
        let report = service.metrics();
        assert_eq!(
            report.comparer_char_batches, 0,
            "no batch may fall back to the char comparer: {report}"
        );
        assert!(
            report.comparer_4bit_batches > 0,
            "dense chunks must select the nibble comparer: {report}"
        );
    }

    #[test]
    fn specialized_serving_is_identical_and_hits_the_variant_cache() {
        // The paper pool serves with JIT-specialized kernels by default;
        // results must be byte-identical to a generic-kernel service, and a
        // warm serving loop must find its variants already compiled.
        let mut config = small_config();
        config.devices.truncate(2);
        let generic = Service::start(
            ServiceConfig {
                specialize: false,
                ..config.clone()
            },
            vec![toy_assembly()],
        );
        let specialized = Service::start(config, vec![toy_assembly()]);
        for spec in distinct_specs(8) {
            let a = generic
                .wait(generic.submit(spec.clone()).unwrap())
                .unwrap();
            let b = specialized
                .wait(specialized.submit(spec.clone()).unwrap())
                .unwrap();
            assert_eq!(a, b, "specialization never changes results");
            assert_eq!(a, serial_oracle(&toy_assembly(), &spec));
        }
        let report = specialized.metrics();
        assert!(
            report.variants.hits + report.variants.misses > 0,
            "specialized serving must consult the variant cache: {report}"
        );
        assert!(
            report.variants.hit_rate() > 0.5,
            "repeat batches must reuse compiled variants: {report}"
        );
        let text = report.to_string();
        assert!(text.contains("variants:"), "{text}");
    }

    #[test]
    fn bulge_jobs_serve_the_union_of_variant_searches() {
        let service = Service::start(small_config(), vec![toy_assembly()]);
        let assembly = toy_assembly();
        let limits = BulgeLimits {
            max_dna: 1,
            max_rna: 1,
        };
        let spec = JobSpec::new(
            "toy",
            b"NNNNNNNNNRG".to_vec(),
            b"ACGTACGTNNN".to_vec(),
            3,
        )
        .with_bulges(limits);
        let id = service.submit(spec.clone()).unwrap();
        let got = service.wait(id).unwrap();

        let query = Query::new(spec.guide.clone(), spec.max_mismatches);
        let mut expect = Vec::new();
        for v in enumerate_variants(&spec.pattern, &query, limits) {
            expect.extend(plain_oracle(
                &assembly,
                &v.pattern,
                &v.query,
                spec.max_mismatches,
            ));
        }
        sort_canonical(&mut expect);
        expect.dedup();
        assert!(!expect.is_empty(), "the toy genome has bulge-variant hits");
        assert_eq!(got, expect, "sorted deduplicated union over all variants");
    }

    #[test]
    fn unsupported_bulge_specs_are_rejected_with_clear_errors() {
        let service = Service::start(small_config(), vec![toy_assembly()]);
        let limits = BulgeLimits {
            max_dna: 1,
            max_rna: 1,
        };
        // No spacer at all: the guide starts with N.
        let err = service
            .submit(
                JobSpec::new(
                    "toy",
                    b"NNNNNNNNNRG".to_vec(),
                    b"NNNNNNNNNNN".to_vec(),
                    1,
                )
                .with_bulges(limits),
            )
            .unwrap_err();
        match err {
            SubmitError::BadJob(why) => assert!(why.contains("spacer"), "{why}"),
            other => panic!("expected BadJob, got {other:?}"),
        }
        // RNA bulge as large as the spacer.
        let err = service
            .submit(
                JobSpec::new(
                    "toy",
                    b"NNNNNNNNNRG".to_vec(),
                    b"ACNNNNNNNNN".to_vec(),
                    1,
                )
                .with_bulges(BulgeLimits {
                    max_dna: 0,
                    max_rna: 2,
                }),
            )
            .unwrap_err();
        match err {
            SubmitError::BadJob(why) => assert!(why.contains("max_rna"), "{why}"),
            other => panic!("expected BadJob, got {other:?}"),
        }
        assert_eq!(service.metrics().jobs_rejected_invalid, 2);
    }

    #[test]
    fn invalid_jobs_are_rejected_at_admission() {
        let service = Service::start(small_config(), vec![toy_assembly()]);
        assert_eq!(
            service.submit(JobSpec::new("nope", b"NGG".to_vec(), b"ANN".to_vec(), 1)),
            Err(SubmitError::UnknownAssembly("nope".into()))
        );
        assert!(matches!(
            service.submit(JobSpec::new("toy", b"NGG".to_vec(), b"AN".to_vec(), 1)),
            Err(SubmitError::BadJob(_))
        ));
        assert!(matches!(
            service.submit(JobSpec::new("toy", Vec::new(), Vec::new(), 1)),
            Err(SubmitError::BadJob(_))
        ));
        let report = service.metrics();
        assert_eq!(report.jobs_rejected_invalid, 3);
        assert_eq!(report.jobs_admitted, 0);
    }

    #[test]
    fn wait_distinguishes_unknown_ids_from_already_collected_ones() {
        // Regression: both cases used to collapse into `None`, so a client
        // could not tell a typo'd id from a double collect.
        let service = Service::start(small_config(), vec![toy_assembly()]);
        assert_eq!(service.wait(999).unwrap_err(), WaitError::UnknownJob);
        assert_eq!(service.poll(999).unwrap_err(), WaitError::UnknownJob);
        let id = service
            .submit(JobSpec::new(
                "toy",
                b"NNNNNNNNNRG".to_vec(),
                b"ACGTACGTNNN".to_vec(),
                3,
            ))
            .unwrap();
        let got = service.wait(id).unwrap();
        assert!(!got.is_empty());
        assert_eq!(service.wait(id).unwrap_err(), WaitError::Collected);
        assert_eq!(service.poll(id).unwrap_err(), WaitError::Collected);
        assert_eq!(service.try_wait(id).unwrap_err(), WaitError::Collected);
    }

    #[test]
    fn polling_and_callbacks_complete_jobs_without_blocking() {
        use std::sync::atomic::AtomicUsize;

        let service = Service::start(small_config(), vec![toy_assembly()]);
        let assembly = toy_assembly();
        let specs = distinct_specs(8);
        let fired = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<Ticket> = specs
            .iter()
            .map(|s| service.submit_ticket(s.clone()).unwrap())
            .collect();
        for t in &tickets {
            let fired = Arc::clone(&fired);
            service
                .on_complete(t.id, move |_| {
                    fired.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        // Pure polling: no thread ever parks in `wait`.
        let mut pending: Vec<usize> = (0..tickets.len()).collect();
        let mut results: Vec<Option<Vec<OffTarget>>> = vec![None; tickets.len()];
        while !pending.is_empty() {
            pending.retain(|&i| match service.poll(tickets[i].id).unwrap() {
                Poll::Ready(records) => {
                    results[i] = Some(records);
                    false
                }
                Poll::Pending => true,
            });
            std::thread::yield_now();
        }
        for (spec, got) in specs.iter().zip(&results) {
            assert_eq!(
                got.as_deref().unwrap(),
                serial_oracle(&assembly, spec),
                "polled results are byte-identical to the serial oracle"
            );
        }
        assert_eq!(fired.load(Ordering::SeqCst), specs.len());
        let report = service.metrics();
        assert_eq!(report.blocking_waits, 0, "no wait ever parked: {report}");
    }

    #[test]
    fn feasible_deadlines_are_admitted_and_met() {
        let service = Service::start(small_config(), vec![toy_assembly()]);
        let spec = JobSpec::new(
            "toy",
            b"NNNNNNNNNRG".to_vec(),
            b"ACGTACGTNNN".to_vec(),
            3,
        )
        .with_deadline(Duration::from_secs(60));
        let ticket = service.submit_ticket(spec).unwrap();
        assert_eq!(ticket.deadline, Some(Duration::from_secs(60)));
        assert!(!service.wait(ticket.id).unwrap().is_empty());
        let report = service.metrics();
        assert_eq!(report.deadline_misses, 0, "{report}");
        assert_eq!(report.jobs_rejected_deadline, 0, "{report}");
    }

    #[test]
    fn infeasible_deadlines_are_rejected_at_admission() {
        // An enormous pacing factor maps even the tiny toy workload to
        // centuries of predicted wall clock, so any finite deadline is
        // infeasible; rejected jobs never execute, so the pacing sleep is
        // never taken.
        let mut config = small_config();
        config.pacing = 1e12;
        let service = Service::start(config, vec![toy_assembly()]);
        let spec = JobSpec::new(
            "toy",
            b"NNNNNNNNNRG".to_vec(),
            b"ACGTACGTNNN".to_vec(),
            3,
        )
        .with_deadline(Duration::from_millis(1));
        match service.submit_ticket(spec).unwrap_err() {
            SubmitError::DeadlineInfeasible { predicted } => {
                assert!(predicted > Duration::from_millis(1), "{predicted:?}");
            }
            other => panic!("expected DeadlineInfeasible, got {other:?}"),
        }
        let report = service.metrics();
        assert_eq!(report.jobs_rejected_deadline, 1, "{report}");
        assert_eq!(report.jobs_admitted, 0, "{report}");
    }

    #[test]
    fn shed_submissions_report_typed_retry_hints_and_tenant_rows() {
        // Two tenants on a budget sized so tenant 2's quota is one toy
        // job: its second concurrent submission must shed with the typed
        // hint while tenant 1 keeps being admitted.
        let assembly = toy_assembly();
        let cost = assembly.total_len() as u64;
        let mut config = small_config();
        config.result_cache_bytes = 0; // duplicates must hit the queue
        config.queue_cost_limit = cost * 4;
        config.tenants = vec![
            TenantConfig::weighted(crate::TenantId(1), 3),
            TenantConfig::weighted(crate::TenantId(2), 1),
        ];
        let service = Service::start(config, vec![assembly]);
        let specs = distinct_specs(8);
        // Tenant 2 fills its quota (one cost unit of jobs), then sheds.
        let first = service
            .submit_ticket(specs[0].clone().for_tenant(crate::TenantId(2)))
            .unwrap();
        assert_eq!(first.cost, cost);
        let mut sheds = 0;
        for spec in specs.iter().skip(1).take(4) {
            match service.submit_ticket(spec.clone().for_tenant(crate::TenantId(2))) {
                Ok(_) => {}
                Err(SubmitError::Shed { retry_after_cost }) => {
                    assert!(retry_after_cost > 0);
                    sheds += 1;
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(sheds > 0, "tenant 2 must shed past its quota");
        // Tenant 1 still gets in on its larger quota.
        service
            .submit_ticket(specs[5].clone().for_tenant(crate::TenantId(1)))
            .unwrap();
        let report = service.metrics();
        assert_eq!(report.jobs_shed, sheds, "{report}");
        assert_eq!(report.sheds_quota, sheds, "{report}");
        assert_eq!(report.sheds_budget, 0, "{report}");
        let t2 = report
            .tenants
            .iter()
            .find(|t| t.id == crate::TenantId(2))
            .expect("tenant 2 has a row");
        assert_eq!(t2.shed, sheds, "{report}");
        assert!(t2.admitted >= 1, "{report}");
    }

    #[test]
    fn planned_placement_serves_identically_and_prefetches_partitions() {
        let mut config = small_config();
        config.placement = Placement::Planned;
        config.resident_chunks = 16;
        config.result_cache_bytes = 0; // every spec really executes
        let service = Service::start(config, vec![toy_assembly()]);
        let plan = service.plan().expect("planned placement installs a plan");
        assert_eq!(plan.chunk_count("toy"), Some(7), "ceil(62/16) + ceil(40/16)");
        let assembly = toy_assembly();
        for spec in distinct_specs(8) {
            let got = service.wait(service.submit(spec.clone()).unwrap()).unwrap();
            assert_eq!(
                got,
                serial_oracle(&assembly, &spec),
                "planned placement never changes results"
            );
        }
        let report = service.metrics();
        assert!(report.planned_hits > 0, "{report}");
        assert!(
            report.prefetch_uploads > 0,
            "first touch warms each partition: {report}"
        );
        assert_eq!(report.migrated_chunks, 0, "{report}");
        assert!(
            report.resident_hit_rate() > 0.9,
            "prefetched partitions serve resident: {report}"
        );
        let text = report.to_string();
        assert!(text.contains("placement:"), "{text}");
    }

    #[test]
    fn fleet_changes_migrate_only_reassigned_chunks() {
        let mut config = small_config();
        config.placement = Placement::Planned;
        let service = Service::start(config, vec![toy_assembly()]);
        let before = service.plan().unwrap();
        let migrated = service.set_device_active(3, false);
        let after = service.plan().unwrap();
        assert_eq!(migrated, after.migrated_from(&before));
        // Device 3's partition moved; the others' chunks stayed put except
        // where the new cuts shifted a boundary.
        assert!(migrated > 0, "device 3 owned at least one chunk");
        let n = after.chunk_count("toy").unwrap();
        let by_hand = (0..n)
            .filter(|&c| before.owner_of("toy", c) != after.owner_of("toy", c))
            .count();
        assert_eq!(migrated, by_hand);
        assert_eq!(service.metrics().migrated_chunks, migrated as u64);
        // Reactivation restores a plan identical to the original.
        service.set_device_active(3, true);
        let restored = service.plan().unwrap();
        assert_eq!(restored.migrated_from(&before), 0);
    }

    /// The sorted, deduplicated union a library screen must reproduce.
    fn union_oracle(assembly: &Assembly, guides: &[Vec<u8>], max_mismatches: u16) -> Vec<OffTarget> {
        let mut expect = Vec::new();
        for guide in guides {
            expect.extend(plain_oracle(assembly, b"NNNNNNNNNRG", guide, max_mismatches));
        }
        sort_canonical(&mut expect);
        expect.dedup();
        expect
    }

    #[test]
    fn library_screens_match_the_per_guide_union_and_skip_repeat_finders() {
        let mut config = small_config();
        config.result_cache_bytes = 0; // the repeat screen really executes
        let service = Service::start(config, vec![toy_assembly()]);
        let assembly = toy_assembly();
        let guides: Vec<Vec<u8>> = distinct_specs(12).into_iter().map(|s| s.guide).collect();
        let spec = JobSpec::library("toy", b"NNNNNNNNNRG".to_vec(), guides.clone(), 3);
        let expect = union_oracle(&assembly, &guides, 3);
        assert!(!expect.is_empty(), "fixture must produce hits");

        let first = service.wait(service.submit(spec.clone()).unwrap()).unwrap();
        assert_eq!(first, expect, "a screen is the sorted deduplicated union");
        let second = service.wait(service.submit(spec).unwrap()).unwrap();
        assert_eq!(second, expect, "repeat screens are byte-identical");

        let report = service.metrics();
        assert!(
            report.fused_launches > 0,
            "screens ride fused comparer launches: {report}"
        );
        assert!(
            report.comparer_launch_ratio() < 1.0,
            "fused launches must undercut one-per-guide: {report}"
        );
        assert!(
            report.finder_launches_skipped > 0,
            "the repeat screen replays cached candidate lists: {report}"
        );
        assert!(report.candidates.hits > 0, "{report}");
        assert!(report.candidates.inserts > 0, "{report}");
        service.shutdown();
    }

    #[test]
    fn shuffled_guide_orders_dedup_through_the_result_store() {
        let service = Service::start(small_config(), vec![toy_assembly()]);
        let guides: Vec<Vec<u8>> = distinct_specs(6).into_iter().map(|s| s.guide).collect();
        let mut reversed = guides.clone();
        reversed.reverse();
        let a = service
            .submit(JobSpec::library("toy", b"NNNNNNNNNRG".to_vec(), guides, 3))
            .unwrap();
        let forward = service.wait(a).unwrap();
        let b = service
            .submit(JobSpec::library("toy", b"NNNNNNNNNRG".to_vec(), reversed, 3))
            .unwrap();
        let reverse = service.wait(b).unwrap();
        assert_eq!(forward, reverse, "guide order never changes a screen");
        let report = service.metrics();
        assert_eq!(
            report.results.misses, 1,
            "shuffled orders canonicalize to one digest: {report}"
        );
        assert_eq!(report.results.hits + report.results.merges, 1, "{report}");
        service.shutdown();
    }

    #[test]
    fn tiny_candidate_caches_evict_but_never_change_results() {
        let mut config = small_config();
        // A handful of loci's worth of budget: every sweep evicts.
        config.candidate_cache_bytes = 64;
        config.result_cache_bytes = 0;
        let service = Service::start(config, vec![toy_assembly()]);
        let assembly = toy_assembly();
        let guides: Vec<Vec<u8>> = distinct_specs(8).into_iter().map(|s| s.guide).collect();
        let spec = JobSpec::library("toy", b"NNNNNNNNNRG".to_vec(), guides.clone(), 3);
        let expect = union_oracle(&assembly, &guides, 3);
        for _ in 0..2 {
            let got = service.wait(service.submit(spec.clone()).unwrap()).unwrap();
            assert_eq!(got, expect, "evictions must never leak into results");
        }
        let report = service.metrics();
        assert!(
            report.candidates.evictions > 0,
            "64 bytes cannot hold every chunk's list: {report}"
        );
        service.shutdown();
    }

    #[test]
    fn malformed_library_specs_are_rejected() {
        let service = Service::start(small_config(), vec![toy_assembly()]);
        let empty = JobSpec::library("toy", b"NNNRG".to_vec(), Vec::new(), 3);
        assert!(matches!(service.submit(empty), Err(SubmitError::BadJob(_))));
        let skewed = JobSpec::library("toy", b"NNNRG".to_vec(), vec![b"ACG".to_vec()], 3);
        assert!(matches!(service.submit(skewed), Err(SubmitError::BadJob(_))));
        let mut both = JobSpec::library("toy", b"NNNRG".to_vec(), vec![b"ACGTG".to_vec()], 3);
        both.bulge = Some(BulgeLimits {
            max_dna: 1,
            max_rna: 1,
        });
        assert!(matches!(service.submit(both), Err(SubmitError::BadJob(_))));
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let service = Service::start(small_config(), vec![toy_assembly()]);
        let id = service
            .submit(JobSpec::new(
                "toy",
                b"NNNNNNNNNRG".to_vec(),
                b"ACGTACGTNNN".to_vec(),
                3,
            ))
            .unwrap();
        let got = service.wait(id).unwrap();
        assert!(!got.is_empty());
        service.shutdown();
    }
}
