//! Cost-model calibration: measure batch service costs instead of
//! hand-tuning them.
//!
//! The scheduler's earlier cost model priced work in "cycles per unit"
//! and weighted the 2-bit comparer with a hand-set constant; the packed
//! path's prediction error (0.52 mean |predicted − measured| / busy) was
//! nearly three times the raw path's because those constants were fit to
//! the raw kernels. This module replaces them with measurements taken
//! through the real chunk runner of the device's own API at first use of
//! a `(device, chunk size, opt, specialize, api)` key:
//!
//! * per-kernel seconds-per-work-unit for the finder and comparer of each
//!   payload class, read from the simulator's per-kernel [`Profile`];
//! * fixed per-batch and marginal per-job overheads (query-table uploads,
//!   counter fills, result readbacks, launch costs), obtained by running
//!   the same probe batch with one and with two coalesced queries and
//!   differencing whole-batch device time — the same quantity the serving
//!   workers later compare predictions against;
//! * the fixed cost a resident chunk payload avoids, measured directly as
//!   the gap between a resident miss and a resident hit of the same run;
//! * a per-byte upload slope from two timed buffer writes.
//!
//! The probe deliberately mirrors the serving regime rather than a
//! synthetic extreme: it scans a chunk of the *serving* chunk size (kernel
//! time per work unit is not scale-free — small grids leave wave slots
//! idle and amortize launch latency worse), uses a realistic PAM pattern
//! over pseudo-random bases (so the comparer runs over a typical candidate
//! population, not all positions), and realistic mismatch thresholds (so
//! result readbacks are as rare as in production). The result is memoized
//! for the process lifetime, so the cost is paid once per device model.
//!
//! That memoization is load-bearing for [autoscaling](crate::autoscale):
//! the controller prices hypothetical fleets — "would adding the MI100
//! bring predicted queue delay under the SLO?" — from the per-device
//! admission rates derived here, and re-activating a drained device must
//! not stall admissions behind a fresh probe. Because every device model
//! in the pool is calibrated once at [`Service::start`](crate::Service),
//! scale-up decisions and post-scale replans read cached rates and take
//! effect within one controller window.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use cas_offinder::pipeline::chunk::{OclChunkRunner, SyclChunkRunner};
use cas_offinder::pipeline::PipelineConfig;
use cas_offinder::{Api, OptLevel, Query, TimingBreakdown};
use genome::fourbit::NibbleSeq;
use genome::rng::Xoshiro256;
use genome::twobit::PackedSeq;
use gpu_sim::profile::Profile;
use gpu_sim::{DeviceSpec, ExecMode};
use opencl_rt::{ClBuffer, ClDeviceId, CommandQueue, Context, MemFlags};

/// Probe pattern: nine `N`s and an `RG` PAM, the workload the paper
/// searches for. The PAM admits roughly a quarter of positions across
/// both strands, so the comparer is timed over a candidate population of
/// serving-like size (the measured count from the probe run is what the
/// rate divides by, not an assumption).
const PROBE_PATTERN: &[u8] = b"NNNNNNNNNRG";

/// Residency token for the probe chunk — any value works; the probe
/// runner holds exactly one chunk.
const PROBE_TOKEN: u64 = 0x5EED;

/// Measured service costs for one payload class (raw chars, 2-bit packed,
/// or 4-bit nibbles) on one device.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClassRates {
    /// Finder kernel seconds per pattern base per scan position.
    pub finder_s_per_unit: f64,
    /// Comparer kernel seconds per pattern base per candidate locus.
    pub comparer_s_per_unit: f64,
    /// Fixed whole-batch cost outside the kernels and the chunk payload
    /// bytes: counter fills and reads, launch costs, the chunk's fixed
    /// per-transfer charges.
    pub batch_overhead_s: f64,
    /// Marginal cost of one more coalesced job beyond its comparer kernel
    /// time: its query-table upload, counter round-trips and readbacks.
    pub per_job_overhead_s: f64,
    /// Fixed cost a resident chunk avoids (the payload's per-transfer
    /// charges; the avoided bytes are priced by the upload slope).
    pub resident_discount_s: f64,
}

impl ClassRates {
    /// Price of an upload-only prefetch of a `bytes`-byte payload of this
    /// class: the bytes at the interconnect slope plus the class's fixed
    /// per-transfer charges. This is exactly the cost a later resident
    /// batch of the chunk avoids — warming a partition moves the measured
    /// upload cost out of the batch window, it does not create new cost.
    pub fn prefetch_upload_s(&self, bytes: usize, upload_s_per_byte: f64) -> f64 {
        bytes as f64 * upload_s_per_byte + self.resident_discount_s
    }
}

/// Measured device service rates: one [`ClassRates`] per payload class —
/// serial and fused-multi-guide flavours — plus the marginal upload cost
/// per byte on the interconnect.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KernelRates {
    /// Raw one-byte-per-base chunks (`finder` + `comparer`).
    pub raw: ClassRates,
    /// 2-bit packed chunks (`finder_packed` + `comparer-2bit`).
    pub packed: ClassRates,
    /// 4-bit nibble chunks (`finder_nibble` + `comparer-4bit`).
    pub nibble: ClassRates,
    /// Raw chunks through the fused multi-guide comparer
    /// (`comparer_multi`): the per-job marginal is a query table and a
    /// slice of one block launch, not a launch of its own.
    pub multi_raw: ClassRates,
    /// 2-bit packed chunks through `comparer_multi-2bit`.
    pub multi_packed: ClassRates,
    /// 4-bit nibble chunks through `comparer_multi-4bit`.
    pub multi_nibble: ClassRates,
    /// Marginal upload cost per byte.
    pub upload_s_per_byte: f64,
}

/// Rates for `spec`'s device serving `chunk_size`-position batches with
/// the comparer compiled at `opt`, measuring on first use and memoized
/// thereafter. Probes run through the chunk runner of the device's own
/// `api`: the OpenCL and SYCL hosts pay different fixed costs per batch
/// (explicit `clEnqueueWriteBuffer` query-table uploads versus implicit
/// first-access accessor transfers, different launch sequences), and a
/// single multiplicative bias cannot fit both across varying coalescing
/// widths — so each API gets rates measured through its own host path.
/// With `specialize` the probe runner prefers the JIT-specialized
/// per-(pattern, threshold) kernel variants, so the measured rates price
/// the specialized code the serving workers actually launch — a separate
/// memo entry from the generic rates.
pub(crate) fn kernel_rates(
    spec: &DeviceSpec,
    chunk_size: usize,
    opt: OptLevel,
    specialize: bool,
    api: Api,
) -> KernelRates {
    type Key = (&'static str, usize, OptLevel, bool, Api);
    static CACHE: OnceLock<Mutex<HashMap<Key, KernelRates>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().unwrap();
    *cache
        .entry((spec.name, chunk_size, opt, specialize, api))
        .or_insert_with(|| measure(spec, chunk_size, opt, specialize, api))
}

/// One probe batch, measured the way the serving workers measure: device
/// time elapsed across query preparation and the chunk run.
struct ProbeRun {
    elapsed_s: f64,
    finder_s: f64,
    comparer_s: f64,
    candidates: usize,
}

/// Which chunk representation a probe drives through the runner.
enum ProbePayload<'a> {
    Raw(&'a [u8]),
    Packed(&'a PackedSeq),
    Nibble(&'a NibbleSeq),
}

/// The chunk runner a probe drives: the same host path the serving
/// worker for that API uses, so the measured costs include each flavour's
/// own fixed overheads.
enum ProbeRunner {
    Ocl(Box<OclChunkRunner>),
    Sycl(Box<SyclChunkRunner>),
}

fn probe(
    runner: &ProbeRunner,
    scan: usize,
    payload: &ProbePayload<'_>,
    queries: &[Query],
    resident_token: Option<u64>,
) -> ProbeRun {
    let mut timing = TimingBreakdown::default();
    let mut profile = Profile::new();
    let elapsed_s = match runner {
        ProbeRunner::Ocl(runner) => {
            let before = runner.elapsed_s();
            let tables = runner
                .prepare_queries(queries)
                .expect("simulated buffer upload cannot fail");
            match (payload, resident_token) {
                (ProbePayload::Packed(p), Some(t)) => {
                    runner
                        .run_packed_chunk_resident(t, p, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Packed(p), None) => {
                    runner
                        .run_packed_chunk(p, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Nibble(n), Some(t)) => {
                    runner
                        .run_nibble_chunk_resident(t, n, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Nibble(n), None) => {
                    runner
                        .run_nibble_chunk(n, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Raw(seq), Some(t)) => {
                    runner
                        .run_chunk_resident(t, seq, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Raw(seq), None) => {
                    runner
                        .run_chunk(seq, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
            }
            let elapsed = runner.elapsed_s() - before;
            tables.release();
            elapsed
        }
        ProbeRunner::Sycl(runner) => {
            let before = runner.elapsed_s();
            let tables = runner.prepare_queries(queries);
            match (payload, resident_token) {
                (ProbePayload::Packed(p), Some(t)) => {
                    runner
                        .run_packed_chunk_resident(t, p, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Packed(p), None) => {
                    runner
                        .run_packed_chunk(p, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Nibble(n), Some(t)) => {
                    runner
                        .run_nibble_chunk_resident(t, n, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Nibble(n), None) => {
                    runner
                        .run_nibble_chunk(n, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Raw(seq), Some(t)) => {
                    runner
                        .run_chunk_resident(t, seq, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
                (ProbePayload::Raw(seq), None) => {
                    runner
                        .run_chunk(seq, scan, &tables, &mut timing, &mut profile)
                        .expect("simulated probe launch cannot fail");
                }
            }
            runner.wait();
            runner.elapsed_s() - before
        }
    };
    let kernel_s = |names: &[&str]| {
        names
            .iter()
            .filter_map(|n| profile.kernel(n))
            .map(|s| s.total_s)
            .sum::<f64>()
    };
    // Generic and specialized kernel names are disjoint per run, so the
    // sums stay correct whichever flavour the runner launched.
    ProbeRun {
        elapsed_s,
        finder_s: kernel_s(&[
            "finder",
            "finder_packed",
            "finder_nibble",
            "finder_nibble-spec",
        ]),
        comparer_s: kernel_s(&[
            "comparer",
            "comparer-2bit",
            "comparer-4bit",
            "comparer-spec",
            "comparer-2bit-spec",
            "comparer-4bit-spec",
            "comparer_multi",
            "comparer_multi-2bit",
            "comparer_multi-4bit",
            "comparer_multi-spec",
            "comparer_multi-2bit-spec",
            "comparer_multi-4bit-spec",
        ]),
        candidates: timing.candidates as usize,
    }
}

/// Decompose two-query/four-query/resident-hit probes through the fused
/// multi-guide runner into [`ClassRates`]. The fused path only engages
/// past one query, so the base probe is the two-query run and the per-job
/// marginal is half the two→four gap — both fused, both one guide block.
/// The comparer rate is per guide per candidate unit, exactly the
/// quantity `predict_s` multiplies back by `jobs`.
fn fused_class_rates(
    scan: usize,
    two: &ProbeRun,
    four: &ProbeRun,
    hit: &ProbeRun,
    chunk_bytes: usize,
    upload_s_per_byte: f64,
) -> ClassRates {
    let plen = PROBE_PATTERN.len();
    let finder = (two.finder_s / (scan * plen) as f64).max(f64::MIN_POSITIVE);
    let comparer =
        (two.comparer_s / (two.candidates * plen * 2).max(1) as f64).max(f64::MIN_POSITIVE);
    let per_job = (((four.elapsed_s - two.elapsed_s)
        - (four.comparer_s - two.comparer_s)
        - (four.finder_s - two.finder_s))
        / 2.0)
        .max(0.0);
    let chunk_byte_s = chunk_bytes as f64 * upload_s_per_byte;
    let batch_overhead =
        (two.elapsed_s - two.finder_s - two.comparer_s - 2.0 * per_job - chunk_byte_s).max(0.0);
    let resident_discount = ((two.elapsed_s - hit.elapsed_s) - chunk_byte_s).max(0.0);
    ClassRates {
        finder_s_per_unit: finder,
        comparer_s_per_unit: comparer,
        batch_overhead_s: batch_overhead,
        per_job_overhead_s: per_job,
        resident_discount_s: resident_discount,
    }
}

/// Decompose one-query/two-query/resident-hit probes into [`ClassRates`].
fn class_rates(
    scan: usize,
    one: &ProbeRun,
    two: &ProbeRun,
    hit: &ProbeRun,
    chunk_bytes: usize,
    upload_s_per_byte: f64,
) -> ClassRates {
    let plen = PROBE_PATTERN.len();
    let finder = (one.finder_s / (scan * plen) as f64).max(f64::MIN_POSITIVE);
    let comparer =
        (one.comparer_s / (one.candidates * plen).max(1) as f64).max(f64::MIN_POSITIVE);
    // The second query's marginal cost beyond its own kernel time.
    let per_job = ((two.elapsed_s - one.elapsed_s)
        - (two.comparer_s - one.comparer_s)
        - (two.finder_s - one.finder_s))
        .max(0.0);
    let chunk_byte_s = chunk_bytes as f64 * upload_s_per_byte;
    let batch_overhead =
        (one.elapsed_s - one.finder_s - one.comparer_s - per_job - chunk_byte_s).max(0.0);
    // What the resident hit skipped, minus the skipped bytes themselves.
    let resident_discount = ((one.elapsed_s - hit.elapsed_s) - chunk_byte_s).max(0.0);
    ClassRates {
        finder_s_per_unit: finder,
        comparer_s_per_unit: comparer,
        batch_overhead_s: batch_overhead,
        per_job_overhead_s: per_job,
        resident_discount_s: resident_discount,
    }
}

fn measure(spec: &DeviceSpec, scan: usize, opt: OptLevel, specialize: bool, api: Api) -> KernelRates {
    let plen = PROBE_PATTERN.len();
    let config = PipelineConfig::new(spec.clone())
        .chunk_size(scan)
        .opt(opt)
        .exec_mode(ExecMode::Sequential)
        .specialize(specialize);
    let runner = match api {
        Api::OpenCl => ProbeRunner::Ocl(Box::new(
            OclChunkRunner::new(&config, PROBE_PATTERN)
                .expect("simulated OpenCL setup cannot fail on the probe pattern"),
        )),
        Api::Sycl => ProbeRunner::Sycl(Box::new(
            SyclChunkRunner::new(&config, PROBE_PATTERN)
                .expect("simulated SYCL setup cannot fail on the probe pattern"),
        )),
    };
    let upload_s_per_byte = upload_slope(spec);

    // Pseudo-random concrete bases and guides, the same statistics as the
    // synthetic serving fixtures: the PAM admits a typical candidate
    // population and full-site matches (result readbacks) stay rare at
    // these thresholds, so both probe costs match serving costs. Concrete
    // bases also mean the packed probe has no exception loci.
    let mut rng = Xoshiro256::seed_from_u64(0xCA11_B8A7E);
    let seq: Vec<u8> = (0..scan + plen)
        .map(|_| *rng.choose(b"ACGT").unwrap())
        .collect();
    let mut guide = || {
        let mut g: Vec<u8> = (0..8).map(|_| *rng.choose(b"ACGT").unwrap()).collect();
        g.extend_from_slice(b"NNN");
        g
    };
    let one = [Query::new(guide(), 3)];
    let two = [one[0].clone(), Query::new(guide(), 3)];
    let four = [
        two[0].clone(),
        two[1].clone(),
        Query::new(guide(), 3),
        Query::new(guide(), 3),
    ];

    let raw_payload = ProbePayload::Raw(&seq);
    let raw1 = probe(&runner, scan, &raw_payload, &one, None);
    let raw2 = probe(&runner, scan, &raw_payload, &two, None);
    // First resident run misses and uploads; the second hits and skips.
    probe(&runner, scan, &raw_payload, &one, Some(PROBE_TOKEN));
    let raw_hit = probe(&runner, scan, &raw_payload, &one, Some(PROBE_TOKEN));
    let raw = class_rates(scan, &raw1, &raw2, &raw_hit, seq.len(), upload_s_per_byte);

    let packed = PackedSeq::encode(&seq);
    debug_assert!(packed.exceptions().is_empty(), "probe bases are concrete");
    let packed_bytes = packed.packed_bytes().len() + packed.mask_bytes().len();
    let pk_payload = ProbePayload::Packed(&packed);
    let pk1 = probe(&runner, scan, &pk_payload, &one, None);
    let pk2 = probe(&runner, scan, &pk_payload, &two, None);
    probe(&runner, scan, &pk_payload, &one, Some(PROBE_TOKEN));
    let pk_hit = probe(&runner, scan, &pk_payload, &one, Some(PROBE_TOKEN));
    let packed_rates = class_rates(scan, &pk1, &pk2, &pk_hit, packed_bytes, upload_s_per_byte);

    // The nibble probe reuses the same concrete bases: the kernels' cost
    // does not depend on how degenerate the masks are, only the encoding
    // selection does — so a concrete-base probe prices exception-dense
    // serving chunks correctly.
    let nibble = NibbleSeq::encode(&seq);
    let nb_payload = ProbePayload::Nibble(&nibble);
    let nb1 = probe(&runner, scan, &nb_payload, &one, None);
    let nb2 = probe(&runner, scan, &nb_payload, &two, None);
    probe(&runner, scan, &nb_payload, &one, Some(PROBE_TOKEN));
    let nb_hit = probe(&runner, scan, &nb_payload, &one, Some(PROBE_TOKEN));
    let nibble_rates = class_rates(
        scan,
        &nb1,
        &nb2,
        &nb_hit,
        nibble.device_byte_len(),
        upload_s_per_byte,
    );

    // The SYCL runner's resources release implicitly when dropped; the
    // OpenCL runner follows the 13-step contract and releases explicitly.
    if let ProbeRunner::Ocl(runner) = runner {
        runner.release();
    }

    // The fused flavour, through a multi-guide runner of the same API: the
    // two- and four-query probes both launch one `comparer_multi` block,
    // so their gap isolates the fused per-job marginal (a query table and
    // readback, no launch of its own).
    let multi_config = config.multi_guide(true);
    let multi_runner = match api {
        Api::OpenCl => ProbeRunner::Ocl(Box::new(
            OclChunkRunner::new(&multi_config, PROBE_PATTERN)
                .expect("simulated OpenCL setup cannot fail on the probe pattern"),
        )),
        Api::Sycl => ProbeRunner::Sycl(Box::new(
            SyclChunkRunner::new(&multi_config, PROBE_PATTERN)
                .expect("simulated SYCL setup cannot fail on the probe pattern"),
        )),
    };
    let fused = |payload: &ProbePayload<'_>, chunk_bytes: usize| {
        let two_run = probe(&multi_runner, scan, payload, &two, None);
        let four_run = probe(&multi_runner, scan, payload, &four, None);
        probe(&multi_runner, scan, payload, &two, Some(PROBE_TOKEN));
        let hit = probe(&multi_runner, scan, payload, &two, Some(PROBE_TOKEN));
        fused_class_rates(scan, &two_run, &four_run, &hit, chunk_bytes, upload_s_per_byte)
    };
    let multi_raw = fused(&raw_payload, seq.len());
    let multi_packed = fused(&pk_payload, packed_bytes);
    let multi_nibble = fused(&nb_payload, nibble.device_byte_len());
    if let ProbeRunner::Ocl(runner) = multi_runner {
        runner.release();
    }

    KernelRates {
        raw,
        packed: packed_rates,
        nibble: nibble_rates,
        multi_raw,
        multi_packed,
        multi_nibble,
        upload_s_per_byte,
    }
}

/// Fit the marginal per-byte upload cost from two timed writes of
/// different sizes; the subtraction cancels the fixed per-transfer
/// overhead, which the batch and residency measurements carry instead.
fn upload_slope(spec: &DeviceSpec) -> f64 {
    const SMALL: usize = 1024;
    const LARGE: usize = 65536;
    let device = ClDeviceId::from_spec(spec.clone());
    let ctx = Context::with_mode(&[device], ExecMode::Sequential)
        .expect("one probe device is always found");
    let queue = CommandQueue::new(&ctx, 0).expect("probe context has a device");
    let buf: ClBuffer<u8> =
        ClBuffer::create(&ctx, MemFlags::ReadWrite, LARGE).expect("probe buffer fits");
    let small = queue
        .enqueue_write_buffer(&buf, true, 0, &vec![0u8; SMALL])
        .expect("in-bounds write cannot fail");
    let large = queue
        .enqueue_write_buffer(&buf, true, 0, &vec![0u8; LARGE])
        .expect("in-bounds write cannot fail");
    let slope = (large.duration_s() - small.duration_s()) / (LARGE - SMALL) as f64;
    buf.release();
    slope.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROBE_CHUNK: usize = 1 << 13;

    #[test]
    fn measured_rates_are_positive_and_finite() {
        let r = kernel_rates(&DeviceSpec::mi60(), PROBE_CHUNK, OptLevel::Base, false, Api::OpenCl);
        for class in [&r.raw, &r.packed, &r.nibble] {
            assert!(class.finder_s_per_unit.is_finite() && class.finder_s_per_unit > 0.0);
            assert!(class.comparer_s_per_unit.is_finite() && class.comparer_s_per_unit > 0.0);
            assert!(class.batch_overhead_s.is_finite() && class.batch_overhead_s >= 0.0);
            assert!(class.per_job_overhead_s.is_finite() && class.per_job_overhead_s >= 0.0);
            assert!(class.resident_discount_s.is_finite() && class.resident_discount_s >= 0.0);
        }
        assert!(r.upload_s_per_byte.is_finite() && r.upload_s_per_byte > 0.0);
    }

    #[test]
    fn fused_rates_are_measured_per_encoding_and_sane() {
        let r = kernel_rates(&DeviceSpec::mi60(), PROBE_CHUNK, OptLevel::Base, false, Api::OpenCl);
        for class in [&r.multi_raw, &r.multi_packed, &r.multi_nibble] {
            assert!(class.finder_s_per_unit.is_finite() && class.finder_s_per_unit > 0.0);
            assert!(class.comparer_s_per_unit.is_finite() && class.comparer_s_per_unit > 0.0);
            assert!(class.batch_overhead_s.is_finite() && class.batch_overhead_s >= 0.0);
            assert!(class.per_job_overhead_s.is_finite() && class.per_job_overhead_s >= 0.0);
            assert!(class.resident_discount_s.is_finite() && class.resident_discount_s >= 0.0);
        }
        // One fused launch covers the whole guide block, so the fused
        // comparer can never cost more per work unit than one-launch-per-guide
        // (small slack for probe measurement noise).
        for (multi, serial) in [
            (&r.multi_raw, &r.raw),
            (&r.multi_packed, &r.packed),
            (&r.multi_nibble, &r.nibble),
        ] {
            assert!(
                multi.comparer_s_per_unit <= serial.comparer_s_per_unit * 1.05,
                "fused {} vs serial {}",
                multi.comparer_s_per_unit,
                serial.comparer_s_per_unit
            );
        }
    }

    #[test]
    fn resident_chunks_earn_a_real_discount() {
        // Skipping the payload transfers must be worth something, and the
        // discount can never exceed the whole fixed batch cost it is
        // subtracted from.
        let r = kernel_rates(&DeviceSpec::radeon_vii(), PROBE_CHUNK, OptLevel::Base, false, Api::OpenCl);
        for class in [&r.raw, &r.packed, &r.nibble] {
            assert!(class.resident_discount_s > 0.0, "{class:?}");
            assert!(
                class.resident_discount_s <= class.batch_overhead_s,
                "{class:?}"
            );
        }
    }

    #[test]
    fn repeat_lookups_are_memoized() {
        let a = kernel_rates(&DeviceSpec::mi100(), PROBE_CHUNK, OptLevel::Opt3, false, Api::OpenCl);
        let b = kernel_rates(&DeviceSpec::mi100(), PROBE_CHUNK, OptLevel::Opt3, false, Api::OpenCl);
        assert_eq!(
            a.raw.finder_s_per_unit.to_bits(),
            b.raw.finder_s_per_unit.to_bits()
        );
        assert_eq!(
            a.packed.comparer_s_per_unit.to_bits(),
            b.packed.comparer_s_per_unit.to_bits()
        );
    }

    #[test]
    fn faster_interconnects_upload_cheaper_per_byte() {
        let mi100 = kernel_rates(&DeviceSpec::mi100(), PROBE_CHUNK, OptLevel::Base, false, Api::OpenCl);
        let rvii = kernel_rates(&DeviceSpec::radeon_vii(), PROBE_CHUNK, OptLevel::Base, false, Api::OpenCl);
        let ratio = rvii.upload_s_per_byte / mi100.upload_s_per_byte;
        // MI100 (PCIe 4) moves bytes at twice Radeon VII's PCIe 3 rate.
        let expect = DeviceSpec::mi100().interconnect_bytes_per_s()
            / DeviceSpec::radeon_vii().interconnect_bytes_per_s();
        assert!((ratio / expect - 1.0).abs() < 0.05, "{ratio} vs {expect}");
    }

    #[test]
    fn nibble_rates_are_measured_from_the_nibble_kernels() {
        // The nibble finder decodes on-device like the packed finder, so
        // its measured per-unit rate must land in the same regime as the
        // other finders — a zero (kernel never profiled, name list stale)
        // or a wild outlier would poison every Nibble4Bit prediction.
        let r = kernel_rates(&DeviceSpec::mi60(), PROBE_CHUNK, OptLevel::Base, false, Api::OpenCl);
        let ratio = r.nibble.finder_s_per_unit / r.packed.finder_s_per_unit;
        assert!((0.25..=4.0).contains(&ratio), "finder rate ratio {ratio}");
        let ratio = r.nibble.comparer_s_per_unit / r.packed.comparer_s_per_unit;
        assert!((0.25..=4.0).contains(&ratio), "comparer rate ratio {ratio}");
    }

    #[test]
    fn specialized_rates_are_measured_and_never_slower_comparers() {
        // Specialization is a separate memo entry measured through the
        // specialized runner: the rates must be sane, and the specialized
        // comparer — pattern folded into immediates — must not price worse
        // per work unit than the generic comparer it replaces.
        let g = kernel_rates(&DeviceSpec::mi60(), PROBE_CHUNK, OptLevel::Base, false, Api::OpenCl);
        let s = kernel_rates(&DeviceSpec::mi60(), PROBE_CHUNK, OptLevel::Base, true, Api::OpenCl);
        for class in [&s.raw, &s.packed, &s.nibble] {
            assert!(class.finder_s_per_unit.is_finite() && class.finder_s_per_unit > 0.0);
            assert!(class.comparer_s_per_unit.is_finite() && class.comparer_s_per_unit > 0.0);
        }
        for (spec, gen) in [(&s.raw, &g.raw), (&s.packed, &g.packed), (&s.nibble, &g.nibble)] {
            assert!(
                spec.comparer_s_per_unit <= gen.comparer_s_per_unit * 1.01,
                "specialized comparer must not be slower: {} vs {}",
                spec.comparer_s_per_unit,
                gen.comparer_s_per_unit
            );
        }
    }

    #[test]
    fn rates_are_per_unit_not_per_launch() {
        // Chunk sizes are probed independently (each is its own memo
        // entry), but the finder rate they measure prices the same kernel
        // per work unit — a 16x larger probe grid must land on a
        // comparable rate, not a 16x larger one.
        let small = kernel_rates(&DeviceSpec::mi100(), 512, OptLevel::Base, false, Api::OpenCl);
        let large = kernel_rates(&DeviceSpec::mi100(), PROBE_CHUNK, OptLevel::Base, false, Api::OpenCl);
        let ratio = small.raw.finder_s_per_unit / large.raw.finder_s_per_unit;
        assert!((0.5..=2.0).contains(&ratio), "rate ratio {ratio}");
    }
}
