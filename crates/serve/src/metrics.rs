//! Service counters: admission, coalescing, scheduling and per-device
//! utilization, all lock-free so the hot paths never serialize on a
//! metrics mutex.

use std::sync::atomic::{AtomicU64, Ordering};

use cas_offinder::kernels::VariantCacheStats;

use crate::cache::CacheStats;
use crate::candidates::CandidateStats;
use crate::results::ResultCacheStats;
use crate::tenant::TenantId;

/// One tenant's slice of a [`MetricsReport`]: admission outcomes, goodput
/// in calibrated cost units, and completion-latency quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// Which tenant the row describes.
    pub id: TenantId,
    /// The tenant's configured fair-queuing weight.
    pub weight: u32,
    /// Jobs admitted (including result-cache hits and merges).
    pub admitted: u64,
    /// Jobs load-shed at admission (over quota or over budget).
    pub shed: u64,
    /// Jobs fully completed.
    pub completed: u64,
    /// Summed admission cost of completed jobs — the currency weighted
    /// fairness is measured in.
    pub goodput_cost: u64,
    /// Completed jobs that finished after their declared deadline.
    pub deadline_misses: u64,
    /// Median submit-to-completion latency, nanoseconds.
    pub latency_p50_ns: u64,
    /// 95th-percentile submit-to-completion latency, nanoseconds.
    pub latency_p95_ns: u64,
    /// 99th-percentile submit-to-completion latency, nanoseconds.
    pub latency_p99_ns: u64,
}

impl TenantReport {
    /// Shed rate over the tenant's admission attempts (0 when none).
    pub fn shed_rate(&self) -> f64 {
        let total = self.admitted + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

/// Kernel-variant cache accounting over the service's lifetime: counter
/// deltas against the process-wide [`cas_offinder::kernels::VariantCache`]
/// snapshot taken when the service started (the cache is shared by every
/// service in the process), plus compile-time quantiles over the cache's
/// recent-compile ring.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VariantReport {
    /// Variant lookups served from the cache (including single-flight
    /// followers that waited on an in-flight compile).
    pub hits: u64,
    /// Variant lookups that had to compile.
    pub misses: u64,
    /// Variants evicted by the cache's capacity bound.
    pub evictions: u64,
    /// Compiles performed (≤ misses under single-flight races).
    pub compiles: u64,
    /// Median compile time of recent compiles, nanoseconds (0 when none).
    pub compile_p50_ns: u64,
    /// 95th-percentile compile time of recent compiles, nanoseconds.
    pub compile_p95_ns: u64,
}

impl VariantReport {
    /// The delta between a service-start snapshot of the variant cache and
    /// its current stats; quantiles come from the current recent-compile
    /// ring (the service's own compiles dominate it once warm).
    pub fn delta(baseline: &VariantCacheStats, now: &VariantCacheStats) -> Self {
        VariantReport {
            hits: now.hits.saturating_sub(baseline.hits),
            misses: now.misses.saturating_sub(baseline.misses),
            evictions: now.evictions.saturating_sub(baseline.evictions),
            compiles: now.compiles.saturating_sub(baseline.compiles),
            compile_p50_ns: now.compile_ns_quantile(0.5).unwrap_or(0),
            compile_p95_ns: now.compile_ns_quantile(0.95).unwrap_or(0),
        }
    }

    /// Hit rate over the service's own lookups, 0 when none happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Counters for one simulated device in the pool.
#[derive(Default)]
pub struct DeviceMetrics {
    /// Simulated busy time, nanoseconds.
    pub busy_ns: AtomicU64,
    /// Chunk batches executed on this device.
    pub batches: AtomicU64,
    /// Batches this device stole from a sibling's queue.
    pub steals: AtomicU64,
    /// Kernel launches on the device (gauge from the simulator).
    pub kernel_launches: AtomicU64,
    /// Host-to-device bytes moved (gauge from the simulator).
    pub h2d_bytes: AtomicU64,
    /// Device-to-host bytes moved (gauge from the simulator).
    pub d2h_bytes: AtomicU64,
    /// Host-to-device bytes *not* moved because the chunk payload was
    /// already resident on the device (gauge from the simulator).
    pub h2d_skipped_bytes: AtomicU64,
    /// Batches whose chunk payload was resident — the upload was skipped.
    pub resident_hits: AtomicU64,
    /// Batches whose chunk payload had to be uploaded.
    pub resident_misses: AtomicU64,
    /// Sum of the scheduler's predicted service times, nanoseconds.
    pub predicted_ns: AtomicU64,
    /// Sum of |predicted - measured| service time, nanoseconds.
    pub prediction_abs_err_ns: AtomicU64,
}

/// Shared, lock-free service counters.
pub struct ServeMetrics {
    /// Jobs accepted into the admission queue.
    pub jobs_admitted: AtomicU64,
    /// Jobs load-shed at admission (tenant over quota, or queue cost
    /// budget exhausted).
    pub jobs_shed: AtomicU64,
    /// Jobs rejected for malformed specs (unknown assembly, bad lengths).
    pub jobs_rejected_invalid: AtomicU64,
    /// Jobs rejected up front because the predicted completion could not
    /// meet the declared deadline.
    pub jobs_rejected_deadline: AtomicU64,
    /// Completed jobs that finished after their declared deadline.
    pub deadline_misses: AtomicU64,
    /// `wait` calls that actually parked a thread (a non-blocking
    /// poll/callback harness asserts this stays 0).
    pub blocking_waits: AtomicU64,
    /// Jobs fully completed.
    pub jobs_completed: AtomicU64,
    /// Chunk batches formed by the coalescer.
    pub batches_formed: AtomicU64,
    /// Total job memberships across formed batches (for the coalescing
    /// ratio: memberships ÷ batches = average jobs per chunk launch).
    pub coalesced_jobs: AtomicU64,
    /// Batches whose payload selected the char comparer — raw chunks, or
    /// packed chunks whose degenerate exceptions forced the fallback.
    pub comparer_char_batches: AtomicU64,
    /// Batches compared in 2-bit packed form.
    pub comparer_2bit_batches: AtomicU64,
    /// Batches compared in 4-bit nibble form.
    pub comparer_4bit_batches: AtomicU64,
    /// Finder launches executed across all workers.
    pub finder_launches: AtomicU64,
    /// Finder launches skipped because the chunk's candidate list replayed
    /// from the candidate-site cache.
    pub finder_launches_skipped: AtomicU64,
    /// Comparer launches executed (one per query, or one per guide block
    /// on the fused multi-guide path).
    pub comparer_launches: AtomicU64,
    /// How many of `comparer_launches` were fused multi-guide launches.
    pub fused_launches: AtomicU64,
    /// Chunk payloads workers uploaded ahead of demand while warming their
    /// planned partition (no kernels launched — upload only).
    pub prefetch_uploads: AtomicU64,
    /// Chunks whose planned owner changed across fleet-change plan
    /// recomputations (the exact set a migration moves).
    pub migrated_chunks: AtomicU64,
    /// Per-device counters, index-aligned with the pool.
    pub devices: Vec<DeviceMetrics>,
}

impl ServeMetrics {
    /// Zeroed counters for a pool of `devices` devices.
    pub fn new(devices: usize) -> Self {
        ServeMetrics {
            jobs_admitted: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            jobs_rejected_invalid: AtomicU64::new(0),
            jobs_rejected_deadline: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            blocking_waits: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            batches_formed: AtomicU64::new(0),
            coalesced_jobs: AtomicU64::new(0),
            comparer_char_batches: AtomicU64::new(0),
            comparer_2bit_batches: AtomicU64::new(0),
            comparer_4bit_batches: AtomicU64::new(0),
            finder_launches: AtomicU64::new(0),
            finder_launches_skipped: AtomicU64::new(0),
            comparer_launches: AtomicU64::new(0),
            fused_launches: AtomicU64::new(0),
            prefetch_uploads: AtomicU64::new(0),
            migrated_chunks: AtomicU64::new(0),
            devices: (0..devices).map(|_| DeviceMetrics::default()).collect(),
        }
    }
}

/// Per-device slice of a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device name (e.g. `MI100`).
    pub name: String,
    /// Pipeline flavour the device runs (`OpenCL` or `SYCL`).
    pub api: String,
    /// Simulated busy time, seconds.
    pub busy_s: f64,
    /// Chunk batches executed.
    pub batches: u64,
    /// Batches stolen from siblings.
    pub steals: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Host-to-device bytes.
    pub h2d_bytes: u64,
    /// Device-to-host bytes.
    pub d2h_bytes: u64,
    /// Host-to-device bytes skipped thanks to chunk residency.
    pub h2d_skipped_bytes: u64,
    /// Batches served from a resident chunk payload (upload skipped).
    pub resident_hits: u64,
    /// Batches that uploaded their chunk payload.
    pub resident_misses: u64,
    /// Scheduler-predicted service time, seconds.
    pub predicted_s: f64,
    /// Mean absolute prediction error as a fraction of busy time.
    pub prediction_error: f64,
}

/// A complete point-in-time snapshot of the service's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Jobs accepted into the admission queue.
    pub jobs_admitted: u64,
    /// Jobs load-shed at admission (over quota or over budget).
    pub jobs_shed: u64,
    /// Sheds caused by a tenant exceeding its in-flight quota.
    pub sheds_quota: u64,
    /// Sheds caused by the queue-wide cost budget.
    pub sheds_budget: u64,
    /// Jobs rejected at admission (malformed spec).
    pub jobs_rejected_invalid: u64,
    /// Jobs rejected up front as deadline-infeasible.
    pub jobs_rejected_deadline: u64,
    /// Completed jobs that finished after their declared deadline.
    pub deadline_misses: u64,
    /// `wait` calls that actually parked a thread.
    pub blocking_waits: u64,
    /// Jobs fully completed.
    pub jobs_completed: u64,
    /// Chunk batches formed by the coalescer.
    pub batches_formed: u64,
    /// Total job memberships across batches.
    pub coalesced_jobs: u64,
    /// Executed batches that ran the char comparer (raw payloads, or
    /// packed payloads degraded by degenerate exceptions).
    pub comparer_char_batches: u64,
    /// Executed batches compared in 2-bit packed form.
    pub comparer_2bit_batches: u64,
    /// Executed batches compared in 4-bit nibble form.
    pub comparer_4bit_batches: u64,
    /// Finder launches executed across all workers.
    pub finder_launches: u64,
    /// Finder launches skipped by replaying cached candidate lists.
    pub finder_launches_skipped: u64,
    /// Comparer launches executed (per query, or per guide block fused).
    pub comparer_launches: u64,
    /// How many of `comparer_launches` fused multiple guides.
    pub fused_launches: u64,
    /// Batches the dispatcher placed on their chunk's planned owner
    /// (0 unless the pool runs `Placement::Planned` with a plan installed).
    pub planned_hits: u64,
    /// Batches a saturated planned owner spilled to earliest-completion
    /// placement, priced with their real (non-resident) upload cost there.
    pub spill_fallbacks: u64,
    /// Chunk payloads uploaded ahead of demand by partition warmup.
    pub prefetch_uploads: u64,
    /// Chunks reassigned by fleet-change plan recomputations.
    pub migrated_chunks: u64,
    /// Jobs sitting in the admission queue at snapshot time — the live
    /// gauge autoscaling decisions read, distinct from the high water.
    pub queue_depth: usize,
    /// Deepest the admission queue has been.
    pub queue_depth_high_water: usize,
    /// Kernel-variant cache accounting (all zeros when specialization is
    /// off — the service then never touches the variant cache).
    pub variants: VariantReport,
    /// Genome-chunk cache accounting.
    pub cache: CacheStats,
    /// Content-addressed result cache accounting.
    pub results: ResultCacheStats,
    /// Candidate-site cache accounting (all zeros when disabled).
    pub candidates: CandidateStats,
    /// Per-tenant admission/goodput/latency rows, sorted by tenant id.
    /// Empty until some tenant has an admission outcome.
    pub tenants: Vec<TenantReport>,
    /// Per-device utilization.
    pub devices: Vec<DeviceReport>,
}

impl MetricsReport {
    /// Average jobs per chunk launch: >1 means the coalescer saved finder
    /// launches and chunk uploads versus running each job alone.
    pub fn coalescing_ratio(&self) -> f64 {
        if self.batches_formed == 0 {
            1.0
        } else {
            self.coalesced_jobs as f64 / self.batches_formed as f64
        }
    }

    /// Fraction of chunk lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Fraction of executed batches that found their chunk payload already
    /// resident on the device (0 when nothing ran).
    pub fn resident_hit_rate(&self) -> f64 {
        let hits: u64 = self.devices.iter().map(|d| d.resident_hits).sum();
        let total: u64 = hits + self.devices.iter().map(|d| d.resident_misses).sum::<u64>();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Host-to-device bytes residency avoided moving, across all devices.
    pub fn h2d_skipped_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.h2d_skipped_bytes).sum()
    }

    /// Fraction of submissions answered without computing: cache hits plus
    /// single-flight merges over all result-store admissions (0 when the
    /// result cache is disabled or nothing was submitted).
    pub fn result_cache_hit_rate(&self) -> f64 {
        let served = self.results.hits + self.results.merges;
        let total = served + self.results.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }

    /// How far per-tenant goodput strayed from the configured weights:
    /// the maximum over tenants of `|share/target − 1|`, where `share` is
    /// the tenant's fraction of total completed cost and `target` its
    /// fraction of total weight. 0 means goodput matched the weights
    /// exactly; the tier-1 gate requires ≤ 0.15 under the demo's 3-tenant
    /// overload. Returns 0 when fewer than two tenants completed work.
    pub fn fairness_max_deviation(&self) -> f64 {
        let rows: Vec<&TenantReport> =
            self.tenants.iter().filter(|t| t.goodput_cost > 0).collect();
        if rows.len() < 2 {
            return 0.0;
        }
        let total_cost: u64 = rows.iter().map(|t| t.goodput_cost).sum();
        let total_weight: u64 = rows.iter().map(|t| u64::from(t.weight)).sum();
        rows.iter()
            .map(|t| {
                let share = t.goodput_cost as f64 / total_cost as f64;
                let target = t.weight as f64 / total_weight as f64;
                (share / target - 1.0).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Fraction of candidate-cache lookups that skipped a finder launch
    /// (0 when the cache is disabled or nothing ran).
    pub fn candidate_hit_rate(&self) -> f64 {
        self.candidates.hit_rate()
    }

    /// Comparer launches per job-chunk unit: 1.0 means one launch per
    /// guide per chunk (the unfused baseline); the fused multi-guide path
    /// drives it toward `1 / GUIDE_BLOCK` on well-coalesced screens.
    pub fn comparer_launch_ratio(&self) -> f64 {
        if self.coalesced_jobs == 0 {
            1.0
        } else {
            self.comparer_launches as f64 / self.coalesced_jobs as f64
        }
    }

    /// Mean absolute predicted-vs-measured service-time error across all
    /// devices, as a fraction of total busy time (0 when nothing ran).
    pub fn mean_prediction_error(&self) -> f64 {
        let busy: f64 = self.devices.iter().map(|d| d.busy_s).sum();
        if busy == 0.0 {
            return 0.0;
        }
        let err: f64 = self
            .devices
            .iter()
            .map(|d| d.prediction_error * d.busy_s)
            .sum();
        err / busy
    }
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} admitted, {} completed, {} shed ({} quota / {} budget), \
             {} rejected (invalid), {} rejected (deadline)",
            self.jobs_admitted,
            self.jobs_completed,
            self.jobs_shed,
            self.sheds_quota,
            self.sheds_budget,
            self.jobs_rejected_invalid,
            self.jobs_rejected_deadline
        )?;
        writeln!(
            f,
            "qos: {} deadline misses, {} blocking waits, fairness deviation {:.1}%",
            self.deadline_misses,
            self.blocking_waits,
            100.0 * self.fairness_max_deviation()
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "{} (w{}): {} admitted, {} shed ({:.1}%), {} done, {} goodput, \
                 {} deadline misses, latency p50/p95/p99 {}/{}/{} ns",
                t.id,
                t.weight,
                t.admitted,
                t.shed,
                100.0 * t.shed_rate(),
                t.completed,
                t.goodput_cost,
                t.deadline_misses,
                t.latency_p50_ns,
                t.latency_p95_ns,
                t.latency_p99_ns
            )?;
        }
        writeln!(
            f,
            "coalescing: {} batches, {} job-chunk units, ratio {:.2}x",
            self.batches_formed,
            self.coalesced_jobs,
            self.coalescing_ratio()
        )?;
        writeln!(
            f,
            "cache: {:.1}% hit rate ({} hits / {} misses, {} evictions, {} resident, {} B)",
            100.0 * self.cache_hit_rate(),
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.len,
            self.cache.bytes_resident
        )?;
        writeln!(
            f,
            "results: {:.1}% served without compute ({} hits, {} merged, {} misses, \
             {} cached, {} B)",
            100.0 * self.result_cache_hit_rate(),
            self.results.hits,
            self.results.merges,
            self.results.misses,
            self.results.len,
            self.results.bytes_resident
        )?;
        writeln!(
            f,
            "residency: {:.1}% of batches reused a resident chunk, {} B uploads skipped",
            100.0 * self.resident_hit_rate(),
            self.h2d_skipped_bytes()
        )?;
        writeln!(
            f,
            "comparers: {} char batches, {} 2-bit, {} 4-bit",
            self.comparer_char_batches, self.comparer_2bit_batches, self.comparer_4bit_batches
        )?;
        writeln!(
            f,
            "launches: {} finder ({} skipped), {} comparer ({} fused, {:.2} per job-chunk)",
            self.finder_launches,
            self.finder_launches_skipped,
            self.comparer_launches,
            self.fused_launches,
            self.comparer_launch_ratio()
        )?;
        writeln!(
            f,
            "candidates: {:.1}% hit rate ({} hits / {} misses, {} inserts, {} evicted, \
             {} resident, {} B)",
            100.0 * self.candidate_hit_rate(),
            self.candidates.hits,
            self.candidates.misses,
            self.candidates.inserts,
            self.candidates.evictions,
            self.candidates.len,
            self.candidates.resident_bytes
        )?;
        writeln!(
            f,
            "placement: {} batches on planned owner, {} spills, {} prefetch uploads, \
             {} chunks migrated",
            self.planned_hits, self.spill_fallbacks, self.prefetch_uploads, self.migrated_chunks
        )?;
        writeln!(
            f,
            "variants: {:.1}% cache hit rate ({} hits / {} misses, {} compiles, \
             {} evicted, compile p50 {} ns / p95 {} ns)",
            100.0 * self.variants.hit_rate(),
            self.variants.hits,
            self.variants.misses,
            self.variants.compiles,
            self.variants.evictions,
            self.variants.compile_p50_ns,
            self.variants.compile_p95_ns
        )?;
        writeln!(
            f,
            "scheduler: {:.1}% mean |predicted - measured| service time",
            100.0 * self.mean_prediction_error()
        )?;
        writeln!(
            f,
            "queue depth: {} (high-water {})",
            self.queue_depth, self.queue_depth_high_water
        )?;
        for d in &self.devices {
            writeln!(
                f,
                "device {:>10} [{:>6}]: {:>8.3}s busy, {:>5} batches ({} stolen), \
                 {} launches, {} B up, {} B down, pred err {:.1}%",
                d.name,
                d.api,
                d.busy_s,
                d.batches,
                d.steals,
                d.kernel_launches,
                d.h2d_bytes,
                d.d2h_bytes,
                100.0 * d.prediction_error
            )?;
        }
        Ok(())
    }
}

pub(crate) fn busy_ns_from_s(seconds: f64) -> u64 {
    (seconds * 1e9).round() as u64
}

/// Point-in-time state read off the fair queue and tenant ledger when a
/// report is assembled.
pub(crate) struct QueueView {
    /// Jobs queued at snapshot time.
    pub depth: usize,
    /// High-water mark of queued jobs.
    pub depth_high_water: usize,
    /// Sheds attributed to a tenant exceeding its derived quota.
    pub sheds_quota: u64,
    /// Sheds attributed to global cost-budget pressure.
    pub sheds_budget: u64,
    /// Per-tenant admission/latency rows.
    pub tenants: Vec<TenantReport>,
}

/// Plan-placement counters read off the device pool when a report is
/// assembled (zeros when the pool never ran planned placement).
#[derive(Default)]
pub(crate) struct PlanView {
    /// Batches placed on their chunk's planned owner.
    pub planned_hits: u64,
    /// Batches a saturated owner spilled to earliest-completion placement.
    pub spill_fallbacks: u64,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn load_report(
    metrics: &ServeMetrics,
    names: &[(String, String)],
    queue: QueueView,
    plan: PlanView,
    variants: VariantReport,
    cache: CacheStats,
    results: ResultCacheStats,
    candidates: CandidateStats,
) -> MetricsReport {
    MetricsReport {
        jobs_admitted: metrics.jobs_admitted.load(Ordering::Relaxed),
        jobs_shed: metrics.jobs_shed.load(Ordering::Relaxed),
        sheds_quota: queue.sheds_quota,
        sheds_budget: queue.sheds_budget,
        jobs_rejected_invalid: metrics.jobs_rejected_invalid.load(Ordering::Relaxed),
        jobs_rejected_deadline: metrics.jobs_rejected_deadline.load(Ordering::Relaxed),
        deadline_misses: metrics.deadline_misses.load(Ordering::Relaxed),
        blocking_waits: metrics.blocking_waits.load(Ordering::Relaxed),
        jobs_completed: metrics.jobs_completed.load(Ordering::Relaxed),
        batches_formed: metrics.batches_formed.load(Ordering::Relaxed),
        coalesced_jobs: metrics.coalesced_jobs.load(Ordering::Relaxed),
        comparer_char_batches: metrics.comparer_char_batches.load(Ordering::Relaxed),
        comparer_2bit_batches: metrics.comparer_2bit_batches.load(Ordering::Relaxed),
        comparer_4bit_batches: metrics.comparer_4bit_batches.load(Ordering::Relaxed),
        finder_launches: metrics.finder_launches.load(Ordering::Relaxed),
        finder_launches_skipped: metrics.finder_launches_skipped.load(Ordering::Relaxed),
        comparer_launches: metrics.comparer_launches.load(Ordering::Relaxed),
        fused_launches: metrics.fused_launches.load(Ordering::Relaxed),
        planned_hits: plan.planned_hits,
        spill_fallbacks: plan.spill_fallbacks,
        prefetch_uploads: metrics.prefetch_uploads.load(Ordering::Relaxed),
        migrated_chunks: metrics.migrated_chunks.load(Ordering::Relaxed),
        queue_depth: queue.depth,
        queue_depth_high_water: queue.depth_high_water,
        variants,
        cache,
        results,
        candidates,
        tenants: queue.tenants,
        devices: metrics
            .devices
            .iter()
            .zip(names)
            .map(|(d, (name, api))| DeviceReport {
                name: name.clone(),
                api: api.clone(),
                busy_s: d.busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
                batches: d.batches.load(Ordering::Relaxed),
                steals: d.steals.load(Ordering::Relaxed),
                kernel_launches: d.kernel_launches.load(Ordering::Relaxed),
                h2d_bytes: d.h2d_bytes.load(Ordering::Relaxed),
                d2h_bytes: d.d2h_bytes.load(Ordering::Relaxed),
                h2d_skipped_bytes: d.h2d_skipped_bytes.load(Ordering::Relaxed),
                resident_hits: d.resident_hits.load(Ordering::Relaxed),
                resident_misses: d.resident_misses.load(Ordering::Relaxed),
                predicted_s: d.predicted_ns.load(Ordering::Relaxed) as f64 / 1e9,
                prediction_error: {
                    let busy = d.busy_ns.load(Ordering::Relaxed);
                    if busy == 0 {
                        0.0
                    } else {
                        d.prediction_abs_err_ns.load(Ordering::Relaxed) as f64 / busy as f64
                    }
                },
            })
            .collect(),
    }
}

/// One closed (or still-filling) time bucket of the windowed latency
/// ring, summarized: admission outcomes, the deepest the queue got,
/// and completion-latency percentiles over the window's samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowReport {
    /// Window ordinal: `floor(now / window)` since the service started.
    /// Gaps mean nothing happened for a whole window.
    pub index: u64,
    /// Jobs admitted during the window (including cache hits/merges).
    pub admitted: u64,
    /// Jobs shed during the window.
    pub shed: u64,
    /// Jobs whose results were published during the window.
    pub completed: u64,
    /// Deepest the admission queue was observed during the window.
    pub queue_depth_max: usize,
    /// Median completion latency over the window, nanoseconds.
    pub latency_p50_ns: u64,
    /// 95th-percentile completion latency, nanoseconds.
    pub latency_p95_ns: u64,
    /// 99th-percentile completion latency, nanoseconds.
    pub latency_p99_ns: u64,
}

/// A still-open bucket: raw samples, summarized on snapshot.
struct WindowData {
    index: u64,
    admitted: u64,
    shed: u64,
    completed: u64,
    depth_max: usize,
    latencies_ns: Vec<u64>,
}

impl WindowData {
    fn new(index: u64) -> Self {
        WindowData {
            index,
            admitted: 0,
            shed: 0,
            completed: 0,
            depth_max: 0,
            latencies_ns: Vec::new(),
        }
    }
}

/// Ring of time-bucketed latency/queue-depth windows. Every note call
/// carries its own `now_ns` (nanoseconds since the service started) so
/// the ring itself never reads a clock — which keeps it trivially
/// testable and means replayed timestamps bucket identically. Buckets
/// roll over when a note lands past the newest bucket's window; the
/// ring keeps the most recent `cap` buckets and drops the oldest.
///
/// Latencies are kept as raw samples per bucket and summarized to
/// nearest-rank percentiles at snapshot time: serving windows hold at
/// most a few thousand completions, so exact quantiles cost less than
/// maintaining mergeable sketches and never mis-rank a tail.
pub struct LatencyWindows {
    window_ns: u64,
    cap: usize,
    inner: std::sync::Mutex<std::collections::VecDeque<WindowData>>,
}

impl LatencyWindows {
    /// A ring bucketing by `window` and retaining `cap` buckets.
    ///
    /// # Panics
    /// Panics if `window` is zero or `cap` is zero.
    pub fn new(window: std::time::Duration, cap: usize) -> Self {
        let window_ns = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX);
        assert!(window_ns > 0, "window must be non-zero");
        assert!(cap > 0, "ring must hold at least one window");
        LatencyWindows {
            window_ns,
            cap,
            inner: std::sync::Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// The configured bucket width.
    pub fn window(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.window_ns)
    }

    fn with_bucket<R>(&self, now_ns: u64, f: impl FnOnce(&mut WindowData) -> R) -> R {
        let index = now_ns / self.window_ns;
        let mut ring = self.inner.lock().unwrap();
        // Notes arrive slightly out of order (submitters and workers
        // race to the clock); anything older than the newest bucket is
        // folded into the newest rather than resurrecting a closed one.
        let needs_push = match ring.back() {
            Some(back) => index > back.index,
            None => true,
        };
        if needs_push {
            ring.push_back(WindowData::new(index));
            while ring.len() > self.cap {
                ring.pop_front();
            }
        }
        f(ring.back_mut().expect("ring is non-empty after push"))
    }

    /// Count an admission at `now_ns`.
    pub fn note_admitted(&self, now_ns: u64) {
        self.with_bucket(now_ns, |w| w.admitted += 1);
    }

    /// Count a shed at `now_ns`.
    pub fn note_shed(&self, now_ns: u64) {
        self.with_bucket(now_ns, |w| w.shed += 1);
    }

    /// Record an observed queue depth at `now_ns`.
    pub fn note_depth(&self, now_ns: u64, depth: usize) {
        self.with_bucket(now_ns, |w| w.depth_max = w.depth_max.max(depth));
    }

    /// Record a completion at `now_ns` with its end-to-end latency.
    pub fn note_completion(&self, now_ns: u64, latency_ns: u64) {
        self.with_bucket(now_ns, |w| {
            w.completed += 1;
            w.latencies_ns.push(latency_ns);
        });
    }

    /// Snapshot every retained window, oldest first.
    pub fn reports(&self) -> Vec<WindowReport> {
        let ring = self.inner.lock().unwrap();
        ring.iter()
            .map(|w| {
                let mut sorted = w.latencies_ns.clone();
                sorted.sort_unstable();
                WindowReport {
                    index: w.index,
                    admitted: w.admitted,
                    shed: w.shed,
                    completed: w.completed,
                    queue_depth_max: w.depth_max,
                    latency_p50_ns: crate::tenant::quantile(&sorted, 0.50),
                    latency_p95_ns: crate::tenant::quantile(&sorted, 0.95),
                    latency_p99_ns: crate::tenant::quantile(&sorted, 0.99),
                }
            })
            .collect()
    }

    /// Nearest-rank quantile over every retained completion latency.
    pub fn latency_quantile_ns(&self, q: f64) -> u64 {
        let ring = self.inner.lock().unwrap();
        let mut all: Vec<u64> = ring.iter().flat_map(|w| w.latencies_ns.iter().copied()).collect();
        all.sort_unstable();
        crate::tenant::quantile(&all, q)
    }

    /// Fraction of retained completions that finished slower than
    /// `slo_ns` (0 when no completions have been recorded).
    pub fn violation_rate(&self, slo_ns: u64) -> f64 {
        let ring = self.inner.lock().unwrap();
        let (mut total, mut late) = (0u64, 0u64);
        for w in ring.iter() {
            for &l in &w.latencies_ns {
                total += 1;
                if l > slo_ns {
                    late += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            late as f64 / total as f64
        }
    }

    /// Total completions retained across the ring.
    pub fn completions(&self) -> u64 {
        self.inner.lock().unwrap().iter().map(|w| w.completed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_ratio_is_jobs_per_batch() {
        let m = ServeMetrics::new(1);
        m.batches_formed.store(4, Ordering::Relaxed);
        m.coalesced_jobs.store(10, Ordering::Relaxed);
        let report = load_report(
            &m,
            &[("MI100".into(), "OpenCL".into())],
            queue_view(7, (0, 0), Vec::new()),
            PlanView::default(),
            VariantReport::default(),
            CacheStats::default(),
            ResultCacheStats::default(),
            CandidateStats::default(),
        );
        assert!((report.coalescing_ratio() - 2.5).abs() < 1e-12);
        assert_eq!(report.queue_depth_high_water, 7);
        let text = report.to_string();
        assert!(text.contains("ratio 2.50x"), "{text}");
        assert!(text.contains("MI100"), "{text}");
    }

    #[test]
    fn residency_and_result_rates_aggregate_across_devices() {
        let m = ServeMetrics::new(2);
        m.devices[0].resident_hits.store(3, Ordering::Relaxed);
        m.devices[0].resident_misses.store(1, Ordering::Relaxed);
        m.devices[1].resident_misses.store(4, Ordering::Relaxed);
        m.devices[0].h2d_skipped_bytes.store(1000, Ordering::Relaxed);
        m.devices[1].h2d_skipped_bytes.store(24, Ordering::Relaxed);
        let results = ResultCacheStats {
            hits: 5,
            misses: 10,
            merges: 5,
            ..ResultCacheStats::default()
        };
        let names = [
            ("MI60".into(), "OpenCL".into()),
            ("MI60".into(), "SYCL".into()),
        ];
        let report = load_report(
            &m,
            &names,
            queue_view(0, (0, 0), Vec::new()),
            PlanView::default(),
            VariantReport::default(),
            CacheStats::default(),
            results,
            CandidateStats::default(),
        );
        assert!((report.resident_hit_rate() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(report.h2d_skipped_bytes(), 1024);
        assert!((report.result_cache_hit_rate() - 0.5).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("1024 B uploads skipped"), "{text}");
        assert!(text.contains("5 merged"), "{text}");
    }

    #[test]
    fn launch_counters_and_candidate_stats_reach_the_report() {
        let m = ServeMetrics::new(1);
        m.coalesced_jobs.store(32, Ordering::Relaxed);
        m.finder_launches.store(10, Ordering::Relaxed);
        m.finder_launches_skipped.store(6, Ordering::Relaxed);
        m.comparer_launches.store(4, Ordering::Relaxed);
        m.fused_launches.store(4, Ordering::Relaxed);
        let candidates = CandidateStats {
            hits: 9,
            misses: 1,
            inserts: 1,
            evictions: 2,
            len: 1,
            resident_bytes: 40,
        };
        let report = load_report(
            &m,
            &[("MI60".into(), "OpenCL".into())],
            queue_view(0, (0, 0), Vec::new()),
            PlanView::default(),
            VariantReport::default(),
            CacheStats::default(),
            ResultCacheStats::default(),
            candidates,
        );
        // 4 comparer launches covered 32 coalesced jobs: 1/8th of the
        // one-launch-per-guide baseline.
        assert!((report.comparer_launch_ratio() - 0.125).abs() < 1e-12);
        assert!((report.candidate_hit_rate() - 0.9).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("10 finder (6 skipped)"), "{text}");
        assert!(text.contains("4 comparer (4 fused, 0.12 per job-chunk)"), "{text}");
        assert!(text.contains("90.0% hit rate"), "{text}");
        assert!(text.contains("2 evicted"), "{text}");
    }

    #[test]
    fn an_idle_service_reports_a_neutral_launch_ratio() {
        let report = load_report(
            &ServeMetrics::new(1),
            &[("MI60".into(), "OpenCL".into())],
            queue_view(0, (0, 0), Vec::new()),
            PlanView::default(),
            VariantReport::default(),
            CacheStats::default(),
            ResultCacheStats::default(),
            CandidateStats::default(),
        );
        assert!((report.comparer_launch_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(report.candidate_hit_rate(), 0.0);
    }

    #[test]
    fn comparer_variant_counts_reach_the_report() {
        let m = ServeMetrics::new(1);
        m.comparer_char_batches.store(2, Ordering::Relaxed);
        m.comparer_2bit_batches.store(5, Ordering::Relaxed);
        m.comparer_4bit_batches.store(9, Ordering::Relaxed);
        let report = load_report(
            &m,
            &[("MI60".into(), "OpenCL".into())],
            queue_view(0, (0, 0), Vec::new()),
            PlanView::default(),
            VariantReport::default(),
            CacheStats::default(),
            ResultCacheStats::default(),
            CandidateStats::default(),
        );
        assert_eq!(report.comparer_char_batches, 2);
        assert_eq!(report.comparer_2bit_batches, 5);
        assert_eq!(report.comparer_4bit_batches, 9);
        let text = report.to_string();
        assert!(text.contains("2 char batches, 5 2-bit, 9 4-bit"), "{text}");
    }

    #[test]
    fn plan_placement_counters_reach_the_report() {
        let m = ServeMetrics::new(1);
        m.prefetch_uploads.store(12, Ordering::Relaxed);
        m.migrated_chunks.store(7, Ordering::Relaxed);
        let report = load_report(
            &m,
            &[("MI60".into(), "OpenCL".into())],
            queue_view(0, (0, 0), Vec::new()),
            PlanView {
                planned_hits: 40,
                spill_fallbacks: 2,
            },
            VariantReport::default(),
            CacheStats::default(),
            ResultCacheStats::default(),
            CandidateStats::default(),
        );
        assert_eq!(report.planned_hits, 40);
        assert_eq!(report.spill_fallbacks, 2);
        assert_eq!(report.prefetch_uploads, 12);
        assert_eq!(report.migrated_chunks, 7);
        let text = report.to_string();
        assert!(
            text.contains("40 batches on planned owner, 2 spills, 12 prefetch uploads, 7 chunks migrated"),
            "{text}"
        );
    }

    #[test]
    fn empty_reports_have_zero_rates() {
        let m = ServeMetrics::new(1);
        let report = load_report(
            &m,
            &[("MI60".into(), "OpenCL".into())],
            queue_view(0, (0, 0), Vec::new()),
            PlanView::default(),
            VariantReport::default(),
            CacheStats::default(),
            ResultCacheStats::default(),
            CandidateStats::default(),
        );
        assert_eq!(report.resident_hit_rate(), 0.0);
        assert_eq!(report.result_cache_hit_rate(), 0.0);
        assert_eq!(report.h2d_skipped_bytes(), 0);
        assert_eq!(report.fairness_max_deviation(), 0.0);
    }

    fn queue_view(
        depth_high_water: usize,
        sheds: (u64, u64),
        tenants: Vec<TenantReport>,
    ) -> QueueView {
        QueueView {
            depth: 0,
            depth_high_water,
            sheds_quota: sheds.0,
            sheds_budget: sheds.1,
            tenants,
        }
    }

    fn tenant_row(id: u32, weight: u32, goodput: u64) -> TenantReport {
        TenantReport {
            id: TenantId(id),
            weight,
            admitted: 1,
            shed: 0,
            completed: 1,
            goodput_cost: goodput,
            deadline_misses: 0,
            latency_p50_ns: 0,
            latency_p95_ns: 0,
            latency_p99_ns: 0,
        }
    }

    #[test]
    fn fairness_deviation_measures_goodput_against_weights() {
        let m = ServeMetrics::new(1);
        m.jobs_shed.store(3, Ordering::Relaxed);
        let exact = load_report(
            &m,
            &[("MI60".into(), "OpenCL".into())],
            queue_view(
                0,
                (2, 1),
                vec![tenant_row(1, 4, 400), tenant_row(2, 2, 200), tenant_row(3, 1, 100)],
            ),
            PlanView::default(),
            VariantReport::default(),
            CacheStats::default(),
            ResultCacheStats::default(),
            CandidateStats::default(),
        );
        assert!(exact.fairness_max_deviation() < 1e-12, "goodput == weights");
        assert_eq!(exact.sheds_quota, 2);
        assert_eq!(exact.sheds_budget, 1);
        let text = exact.to_string();
        assert!(text.contains("3 shed (2 quota / 1 budget)"), "{text}");
        assert!(text.contains("tenant1 (w4)"), "{text}");

        // Tenant 3 got 2x its weighted share: deviation = 1.0.
        let skewed = load_report(
            &m,
            &[("MI60".into(), "OpenCL".into())],
            queue_view(
                0,
                (0, 0),
                vec![tenant_row(1, 4, 350), tenant_row(2, 2, 150), tenant_row(3, 1, 200)],
            ),
            PlanView::default(),
            VariantReport::default(),
            CacheStats::default(),
            ResultCacheStats::default(),
            CandidateStats::default(),
        );
        assert!(
            (skewed.fairness_max_deviation() - 1.0).abs() < 1e-12,
            "got {}",
            skewed.fairness_max_deviation()
        );
    }

    #[test]
    fn windows_roll_over_and_bucket_by_timestamp() {
        let w = LatencyWindows::new(std::time::Duration::from_millis(10), 8);
        let ms = |n: u64| n * 1_000_000;
        w.note_admitted(ms(1));
        w.note_admitted(ms(4));
        w.note_depth(ms(5), 3);
        w.note_shed(ms(7));
        // Crosses into window 1; window 3 is skipped entirely.
        w.note_admitted(ms(12));
        w.note_completion(ms(15), ms(11));
        w.note_depth(ms(16), 9);
        w.note_completion(ms(41), ms(2));
        let reports = w.reports();
        assert_eq!(
            reports.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 4],
            "one bucket per touched window, gaps preserved"
        );
        assert_eq!(reports[0].admitted, 2);
        assert_eq!(reports[0].shed, 1);
        assert_eq!(reports[0].queue_depth_max, 3);
        assert_eq!(reports[0].completed, 0);
        assert_eq!(reports[1].admitted, 1);
        assert_eq!(reports[1].completed, 1);
        assert_eq!(reports[1].queue_depth_max, 9);
        assert_eq!(reports[1].latency_p99_ns, ms(11));
        assert_eq!(reports[2].completed, 1);
    }

    #[test]
    fn window_ring_drops_oldest_past_cap() {
        let w = LatencyWindows::new(std::time::Duration::from_millis(1), 2);
        w.note_admitted(0);
        w.note_admitted(1_000_000);
        w.note_admitted(2_000_000);
        let reports = w.reports();
        assert_eq!(reports.len(), 2, "cap evicts the oldest bucket");
        assert_eq!(reports[0].index, 1);
        assert_eq!(reports[1].index, 2);
    }

    #[test]
    fn late_notes_fold_into_newest_window() {
        let w = LatencyWindows::new(std::time::Duration::from_millis(1), 4);
        w.note_admitted(5_000_000);
        // A straggler stamped before the open window must not resurrect
        // a closed bucket.
        w.note_admitted(3_000_000);
        let reports = w.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].admitted, 2);
    }

    #[test]
    fn aggregate_quantiles_and_violations_span_the_ring() {
        let w = LatencyWindows::new(std::time::Duration::from_millis(1), 16);
        for (i, lat) in [10u64, 20, 30, 40].into_iter().enumerate() {
            w.note_completion(i as u64 * 1_000_000, lat);
        }
        assert_eq!(w.completions(), 4);
        assert_eq!(w.latency_quantile_ns(0.5), 20);
        assert_eq!(w.latency_quantile_ns(0.99), 40);
        assert!((w.violation_rate(25) - 0.5).abs() < 1e-12);
        assert_eq!(w.violation_rate(100), 0.0);
    }
}
