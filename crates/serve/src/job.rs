//! Query jobs: what a tenant submits to the service.

use std::time::Duration;

use cas_offinder::bulge::BulgeLimits;

use crate::tenant::TenantId;

/// Opaque job identifier, unique within one [`crate::Service`] instance.
pub type JobId = u64;

/// Admission-queue priority class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Default class: FIFO behind every queued high-priority job.
    Normal,
    /// Served before all normal-priority jobs, FIFO among themselves.
    High,
}

/// One off-target search request: a guide sequence plus PAM pattern,
/// a mismatch threshold, and the registered assembly to scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Name of a registered assembly.
    pub assembly: String,
    /// PAM pattern (e.g. `NNNNNNNNNNNNNNNNNNNNNRG`), uppercase IUPAC.
    pub pattern: Vec<u8>,
    /// Guide query, same length as the pattern.
    pub guide: Vec<u8>,
    /// Maximum number of mismatched bases to report.
    pub max_mismatches: u16,
    /// Admission-queue priority class (within the submitting tenant's
    /// sub-queue; cross-tenant order is set by fair queuing).
    pub priority: Priority,
    /// Who is asking. Defaults to the anonymous tenant (id 0); the fair
    /// queue drains tenants by configured weight, not submission rate.
    pub tenant: TenantId,
    /// Optional completion SLO, relative to submission time. Admission
    /// consults the calibrated device model and sheds the job up front
    /// (`SubmitError::DeadlineInfeasible`) when the predicted completion
    /// cannot meet it — instead of admitting work that times out late.
    pub deadline: Option<Duration>,
    /// When set, also search DNA/RNA bulge variants up to these limits
    /// (Cas-OFFinder 3 semantics); results are the sorted, deduplicated
    /// union over all variants.
    pub bulge: Option<BulgeLimits>,
    /// When set, the job is a **library screen**: every guide in the list
    /// is searched against the same PAM pattern and threshold, and the
    /// results are the sorted, deduplicated union over all guides. The
    /// batcher expands the screen into per-guide unit searches that share
    /// one chunk upload and one finder pass per chunk; `guide` is unused
    /// (empty) on screen jobs. Mutually exclusive with `bulge`.
    pub library: Option<Vec<Vec<u8>>>,
}

impl JobSpec {
    /// A normal-priority job for the anonymous tenant; sequences are
    /// uppercased.
    pub fn new(
        assembly: impl Into<String>,
        pattern: impl Into<Vec<u8>>,
        guide: impl Into<Vec<u8>>,
        max_mismatches: u16,
    ) -> Self {
        let mut pattern = pattern.into();
        let mut guide = guide.into();
        pattern.make_ascii_uppercase();
        guide.make_ascii_uppercase();
        JobSpec {
            assembly: assembly.into(),
            pattern,
            guide,
            max_mismatches,
            priority: Priority::Normal,
            tenant: TenantId::default(),
            deadline: None,
            bulge: None,
            library: None,
        }
    }

    /// A library-screen job: search every guide in `guides` under one PAM
    /// `pattern` and mismatch threshold, returning the sorted, deduplicated
    /// union. Sequences are uppercased.
    pub fn library(
        assembly: impl Into<String>,
        pattern: impl Into<Vec<u8>>,
        guides: Vec<Vec<u8>>,
        max_mismatches: u16,
    ) -> Self {
        let mut spec = JobSpec::new(assembly, pattern, Vec::new(), max_mismatches);
        let mut guides = guides;
        for g in &mut guides {
            g.make_ascii_uppercase();
        }
        spec.library = Some(guides);
        spec
    }

    /// Mark the job high-priority.
    #[must_use]
    pub fn high_priority(mut self) -> Self {
        self.priority = Priority::High;
        self
    }

    /// Attribute the job to `tenant` for fair queuing and quotas.
    #[must_use]
    pub fn for_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Require completion within `deadline` of submission, or be shed at
    /// admission when infeasible.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Also search bulge variants up to `limits`.
    #[must_use]
    pub fn with_bulges(mut self, limits: BulgeLimits) -> Self {
        self.bulge = Some(limits);
        self
    }
}

/// An admitted job: a spec with its assigned id and admission cost.
///
/// Normally constructed by [`crate::Service::submit`]; public so the fair
/// queue ([`crate::queue::FairJobQueue`]) can be driven directly in
/// queue-level tests and embeddings.
#[derive(Debug, Clone)]
pub struct Job {
    /// The service-assigned job id.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Estimated work in scan-position units (assembly size × search
    /// variants); what the admission queue's cost budget, per-tenant
    /// quotas, and deficit-round-robin quanta all charge.
    pub cost: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_normalize_case_and_default_to_normal_priority() {
        let spec = JobSpec::new("hg38", b"nnnrg".to_vec(), b"acgtg".to_vec(), 3);
        assert_eq!(spec.pattern, b"NNNRG");
        assert_eq!(spec.guide, b"ACGTG");
        assert_eq!(spec.priority, Priority::Normal);
        assert_eq!(spec.tenant, TenantId(0));
        assert_eq!(spec.deadline, None);
        assert_eq!(spec.bulge, None);
        assert_eq!(spec.high_priority().priority, Priority::High);
    }

    #[test]
    fn tenancy_and_deadline_ride_on_the_spec() {
        let spec = JobSpec::new("hg38", b"NNNRG".to_vec(), b"ACGTG".to_vec(), 3)
            .for_tenant(TenantId(9))
            .with_deadline(Duration::from_millis(250));
        assert_eq!(spec.tenant, TenantId(9));
        assert_eq!(spec.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn bulge_limits_ride_on_the_spec() {
        let limits = BulgeLimits {
            max_dna: 1,
            max_rna: 2,
        };
        let spec =
            JobSpec::new("hg38", b"NNNRG".to_vec(), b"ACGTG".to_vec(), 3).with_bulges(limits);
        assert_eq!(spec.bulge, Some(limits));
    }

    #[test]
    fn library_screens_normalize_guides_and_leave_the_guide_empty() {
        let spec = JobSpec::library(
            "hg38",
            b"nnnrg".to_vec(),
            vec![b"acgtg".to_vec(), b"ttttg".to_vec()],
            3,
        );
        assert_eq!(spec.pattern, b"NNNRG");
        assert!(spec.guide.is_empty());
        assert_eq!(
            spec.library,
            Some(vec![b"ACGTG".to_vec(), b"TTTTG".to_vec()])
        );
        assert_eq!(spec.bulge, None);
    }
}
