//! The device pool: per-device batch queues with cost-aware placement,
//! chunk-residency affinity, occupancy-derived in-flight limits, and work
//! stealing.
//!
//! Placement is no longer "shortest queue": queue depth treats a one-job
//! batch over a small chunk the same as an eight-job batch over a full
//! chunk, and treats a consumer Radeon VII the same as an MI100 with twice
//! its throughput. Instead each device carries a [`DeviceModel`] — measured
//! per-kernel service rates (see [`crate::calibrate`]) plus overheads from
//! its [`DeviceSpec`] — and the dispatcher places every batch on the device
//! with the *earliest predicted completion*: the sum of the predicted
//! service times still pending on that device plus the batch's own
//! predicted time under that device's model.
//!
//! The model is also **residency-aware**: each device tracks the chunk
//! payloads its workers keep uploaded (an LRU of residency tokens mirroring
//! the chunk runners' slot budget), and a batch whose chunk is resident on
//! a device is priced without the chunk upload there. That discount is what
//! steers repeat chunks back to the device already holding them; an exact
//! score tie further breaks toward the resident device before falling back
//! to the lower index. The scheduler's resident set is a *prediction* —
//! the chunk runners verify the token before skipping any upload, so a
//! wrong guess costs only a mispriced batch, never a wrong result.
//!
//! Stealing cooperates with residency instead of fighting it: an idle
//! thief first looks through the victim's queue (from the back, where the
//! youngest work sits) for a batch whose chunk *it* already holds, and
//! only then takes the newest batch outright. Either way the stolen batch
//! is re-priced under the thief's model with the thief's own residency —
//! a stolen chunk that is non-resident on the thief pays the real upload.
//!
//! The properties the service relies on are unchanged: a device never
//! idles while a sibling has a backlog (stealing), and no device queue
//! grows past its in-flight limit (backpressure).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cas_offinder::kernels::specialize::specialized_model;
use cas_offinder::kernels::{ComparerKernel, VariantKind, GUIDE_BLOCK};
use cas_offinder::pipeline::chunk::twobit_compare_safe;
use cas_offinder::{Api, OptLevel};
use gpu_sim::isa::compile_program;
use gpu_sim::occupancy::occupancy;
use gpu_sim::{DeviceSpec, NdRange};

use crate::batcher::{BatchKey, ChunkBatch};
use crate::cache::{ChunkPayload, EncodedChunk};
use crate::calibrate::{kernel_rates, ClassRates, KernelRates};
use crate::candidates::{CandidateCache, CandidateKey};
use crate::results::{fnv1a64, FNV_OFFSET};
use crate::shard::ShardPlan;

/// How many of the four nucleotides an IUPAC pattern base admits.
fn iupac_degeneracy(b: u8) -> u32 {
    match b.to_ascii_uppercase() {
        b'A' | b'C' | b'G' | b'T' | b'U' => 1,
        b'R' | b'Y' | b'S' | b'W' | b'K' | b'M' => 2,
        b'B' | b'D' | b'H' | b'V' => 3,
        _ => 4,
    }
}

/// Expected fraction of scan positions the finder promotes to comparer
/// candidates. The finder sweeps every position, but each per-job comparer
/// pass only touches the loci whose PAM matched — charging comparers for
/// the full scan overestimates heavy batches badly. The fraction follows
/// from the pattern itself: a base admitting `d` of the four nucleotides
/// passes a uniform position with probability `d/4`, positions are
/// independent, and the reverse-complement scan doubles the expectation
/// (the overlap term is negligible for any selective PAM).
fn candidate_fraction(pattern: &[u8]) -> f64 {
    let per_strand: f64 = pattern
        .iter()
        .map(|&b| f64::from(iupac_degeneracy(b)) / 4.0)
        .product();
    (2.0 * per_strand).min(1.0)
}

/// The fixed per-device depth the pre-cost-model scheduler used for every
/// device. Only [`Placement::ShortestQueue`] still applies it.
const SHORTEST_QUEUE_IN_FLIGHT: usize = 4;

/// How the dispatcher places batches on device queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Place each batch on the device with the earliest predicted
    /// completion under that device's cost model, discounting the chunk
    /// upload on devices that already hold the chunk; per-device in-flight
    /// limits derive from the comparer's occupancy.
    #[default]
    EarliestCompletion,
    /// The previous scheduler, kept as a measurable baseline: fewest queued
    /// batches wins, every device is treated alike, and the in-flight
    /// depth is a fixed 4.
    ShortestQueue,
    /// Deterministic placement under an installed [`ShardPlan`]: every
    /// batch goes to its chunk's planned owner. When the owner's queue
    /// sits at its occupancy-derived in-flight limit, the dispatcher
    /// spills to earliest-completion placement only past a calibrated
    /// threshold: the owner's predicted completion (backlog plus its
    /// resident-priced run) must exceed the best sibling's (backlog plus
    /// the non-resident run, paying the real upload) — otherwise it waits
    /// for owner room, because a transiently full queue drains faster
    /// than a spilled upload costs. Work stealing is disabled — the plan,
    /// not idleness, decides ownership — so a scan's per-device work is a
    /// pure function of the plan and the calibrated models. Without an
    /// installed plan this degrades to [`Placement::EarliestCompletion`].
    Planned,
}

/// Identity of a chunk's uploaded payload: what the scheduler predicts
/// residency with and what the chunk runners verify before skipping an
/// upload. Identical `(assembly, pattern, chunk ordinal)` triples — and
/// only those — produce identical tokens, so a token match means the
/// bytes already on the device are the bytes this batch would upload.
pub(crate) fn residency_token(key: &BatchKey, chunk_index: usize) -> u64 {
    let mut h = fnv1a64(FNV_OFFSET, key.assembly.as_bytes());
    h = fnv1a64(h, &[0]);
    h = fnv1a64(h, &key.pattern);
    fnv1a64(h, &(chunk_index as u64).to_le_bytes())
}

/// Which upload + kernel combination a batch's payload selects; each class
/// is priced with its own measured rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PayloadClass {
    /// Raw bytes: `finder` + char `comparer`.
    Raw,
    /// Packed payload whose exceptions are 2-bit safe: `finder_packed` +
    /// `comparer_2bit`.
    Packed2Bit,
    /// Packed payload with degenerate exceptions: `finder_packed` decodes
    /// on-device, comparers run the char kernel over the decode.
    PackedChar,
    /// 4-bit nibble payload: `finder_nibble` + `comparer_4bit`, never any
    /// char fallback.
    Nibble4Bit,
    /// Bias class of fused multi-guide batches (any encoding): one
    /// `comparer_multi` launch per [`GUIDE_BLOCK`]-guide block instead of
    /// one comparer launch per job. Never a payload class itself — the
    /// encoding still selects the kernels — but fused batches mispredict
    /// differently enough from serial ones to earn their own bias cell.
    MultiGuide,
}

impl PayloadClass {
    /// Number of distinct classes — sizes the per-class bias tables.
    pub(crate) const COUNT: usize = 5;

    /// Stable dense index for per-class tables.
    pub(crate) fn index(self) -> usize {
        match self {
            PayloadClass::Raw => 0,
            PayloadClass::Packed2Bit => 1,
            PayloadClass::PackedChar => 2,
            PayloadClass::Nibble4Bit => 3,
            PayloadClass::MultiGuide => 4,
        }
    }
}

/// The dispatcher's estimate of what a [`ChunkBatch`] costs, extracted
/// once at dispatch and re-priced per device (and per residency state).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchCost {
    /// Scan positions the finder sweeps.
    pub scan_len: usize,
    /// Pattern length (work per position, and query-table size).
    pub plen: usize,
    /// Coalesced jobs — one comparer pass each.
    pub jobs: usize,
    /// Host bytes of the encoded chunk payload — skipped when resident.
    pub chunk_bytes: usize,
    /// Which kernels the payload selects.
    pub class: PayloadClass,
    /// Expected fraction of scan positions whose PAM matches (either
    /// strand), derived from the pattern's degeneracy.
    pub candidate_fraction: f64,
    /// The chunk payload's residency token.
    pub token: u64,
    /// The batch's comparer passes run fused: one `comparer_multi` launch
    /// per [`GUIDE_BLOCK`]-guide block, priced with the measured fused
    /// rates instead of the serial per-job ones.
    pub fused: bool,
    /// `ceil(jobs / GUIDE_BLOCK)` when fused — how many comparer launches
    /// the batch actually costs (`jobs` when serial).
    pub guide_blocks: usize,
    /// The candidate cache already holds this (chunk, pattern, encoding)'s
    /// finder output, so the run skips the finder launch and its time is
    /// priced at zero.
    pub finder_cached: bool,
}

impl BatchCost {
    pub fn of(batch: &ChunkBatch) -> Self {
        Self::from_parts(
            &batch.key.pattern,
            &batch.chunk,
            batch.jobs.len(),
            residency_token(&batch.key, batch.chunk_index),
        )
    }

    /// The bias cell this batch's completions correct: fused batches share
    /// one [`PayloadClass::MultiGuide`] cell across encodings, serial
    /// batches keep their encoding's cell. The encoding class in `class`
    /// still selects the kernel rates either way.
    pub fn bias_class(&self) -> PayloadClass {
        if self.fused {
            PayloadClass::MultiGuide
        } else {
            self.class
        }
    }

    /// The cost of a (possibly hypothetical) batch of `jobs` queries of
    /// `pattern` over `chunk` — what plan predictions price without
    /// materializing a [`ChunkBatch`].
    pub fn from_parts(pattern: &[u8], chunk: &EncodedChunk, jobs: usize, token: u64) -> Self {
        let class = match &chunk.payload {
            ChunkPayload::Packed(p) if twobit_compare_safe(p) => PayloadClass::Packed2Bit,
            ChunkPayload::Packed(_) => PayloadClass::PackedChar,
            ChunkPayload::Nibble(_) => PayloadClass::Nibble4Bit,
            ChunkPayload::Raw(_) => PayloadClass::Raw,
        };
        BatchCost {
            scan_len: chunk.scan_len,
            plen: pattern.len(),
            jobs,
            chunk_bytes: chunk.upload_byte_len(),
            class,
            candidate_fraction: candidate_fraction(pattern),
            token,
            fused: false,
            guide_blocks: jobs,
            finder_cached: false,
        }
    }
}

impl KernelRates {
    /// The measured rate set an encoding class selects — the serial
    /// flavour, or the fused multi-guide one.
    fn class(&self, class: PayloadClass, fused: bool) -> &ClassRates {
        match (class, fused) {
            (PayloadClass::Raw, false) => &self.raw,
            (PayloadClass::Raw, true) => &self.multi_raw,
            (PayloadClass::Packed2Bit | PayloadClass::PackedChar, false) => &self.packed,
            (PayloadClass::Packed2Bit | PayloadClass::PackedChar, true) => &self.multi_packed,
            (PayloadClass::Nibble4Bit, false) => &self.nibble,
            (PayloadClass::Nibble4Bit, true) => &self.multi_nibble,
            (PayloadClass::MultiGuide, _) => {
                unreachable!("MultiGuide is a bias class, not an encoding")
            }
        }
    }
}

/// A device's predicted service rates: measured per-kernel seconds per
/// work unit plus measured per-batch, per-job and residency overheads —
/// no hand-set constants.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeviceModel {
    rates: KernelRates,
    /// Batches this device may hold queued/running before dispatch blocks —
    /// how many chunk-sized grids fit in its resident wave budget.
    pub in_flight_limit: usize,
}

impl DeviceModel {
    /// Model `spec` serving `chunk_size`-position batches through `api`'s
    /// host path with the comparer compiled at `opt`, using measured
    /// kernel rates (probing the device at that chunk size on first use,
    /// memoized per `(device, chunk size, opt, specialize, api)`). The
    /// OpenCL and SYCL hosts carry different fixed per-batch and per-job
    /// costs, so each device's rates are probed through its own chunk
    /// runner flavour. With `specialize` the
    /// occupancy-derived in-flight limit and the measured rates both come
    /// from the JIT-specialized comparer the workers actually launch —
    /// the specialized code model folds the pattern into immediates, so its
    /// register footprint (and thus occupancy) can only match or beat the
    /// generic comparer's.
    pub fn calibrated(
        spec: &DeviceSpec,
        chunk_size: usize,
        opt: OptLevel,
        specialize: bool,
        api: Api,
    ) -> Self {
        // Occupancy representative: the specialized comparer is modeled at
        // the calibration probe's pattern length (11); what matters for the
        // in-flight limit is the register/occupancy regime, not the exact
        // pattern.
        let model = if specialize {
            specialized_model(VariantKind::CharComparer, 11)
        } else {
            ComparerKernel::code_model_for(opt)
        };
        let program = compile_program(&model);
        let wgs = 64usize;
        let gws = chunk_size.div_ceil(wgs) * wgs;
        let nd = NdRange::linear(gws, wgs);
        let occ = occupancy(&program.resources(), &nd, spec);

        // Resident waves across the whole device at this occupancy, divided
        // by the waves one batch puts in flight.
        let resident = occ.waves_per_simd * spec.simds_per_cu * spec.compute_units();
        let waves_per_batch = (gws as u32).div_ceil(spec.wavefront).max(1);
        let in_flight_limit = (resident / waves_per_batch).clamp(1, 32) as usize;

        DeviceModel {
            rates: kernel_rates(spec, chunk_size, opt, specialize, api),
            in_flight_limit,
        }
    }

    /// Queue depth past which a planned owner counts as saturated and
    /// dispatch may consider spilling its chunk to a sibling: twice the
    /// occupancy-derived in-flight window — one window feeding the
    /// device, one absorbing dispatch-vs-drain jitter. Below it the
    /// owner takes its chunks unconditionally; queueing deeper on the
    /// planned owner is almost always cheaper than re-uploading the
    /// chunk elsewhere.
    pub fn spill_threshold(&self) -> usize {
        self.in_flight_limit * 2
    }

    /// Predicted wall-clock service time of a batch on this device: the
    /// class's measured fixed batch cost, the measured marginal cost per
    /// coalesced job, the finder and comparer passes at their measured
    /// kernel rates, and the chunk payload bytes at the measured
    /// interconnect slope. With `resident`, the chunk payload moves no
    /// bytes and its measured fixed transfer cost is discounted — only the
    /// per-batch query tables (inside the per-job terms) still move.
    ///
    /// A `fused` batch is priced with the class rates measured through the
    /// multi-guide runner instead: the per-job marginal shrinks to a query
    /// table and its slice of one block launch, and the comparer rate is
    /// the fused kernel's. A `finder_cached` batch prices its finder pass
    /// at zero — the run replays the cached candidate list.
    pub fn predict_s(&self, cost: &BatchCost, resident: bool) -> f64 {
        let class = self.rates.class(cost.class, cost.fused);
        // A packed chunk with opaque exception bytes decodes on-device
        // (packed finder) but compares with the char kernel.
        let comparer_rate = match cost.class {
            PayloadClass::Raw | PayloadClass::PackedChar => {
                self.rates.class(PayloadClass::Raw, cost.fused).comparer_s_per_unit
            }
            _ => class.comparer_s_per_unit,
        };
        let scan_units = (cost.scan_len * cost.plen) as f64;
        let chunk = if resident {
            -class.resident_discount_s
        } else {
            cost.chunk_bytes as f64 * self.rates.upload_s_per_byte
        };
        let finder = if cost.finder_cached {
            0.0
        } else {
            scan_units * class.finder_s_per_unit
        };
        (class.batch_overhead_s + chunk).max(0.0)
            + cost.jobs as f64 * class.per_job_overhead_s
            + finder
            + cost.candidate_fraction * scan_units * cost.jobs as f64 * comparer_rate
    }

    /// Predicted device time of prefetching `cost`'s chunk payload into a
    /// resident slot without running any kernel: the payload bytes at the
    /// measured interconnect slope plus the class's fixed per-transfer
    /// charges. A one-pass partition warmup is the sum of this over the
    /// partition's chunks.
    pub fn predict_prefetch_s(&self, cost: &BatchCost) -> f64 {
        let class = self.rates.class(cost.class, false);
        class.prefetch_upload_s(cost.chunk_bytes, self.rates.upload_s_per_byte)
    }

    /// Sustained admission throughput of this device in scan-position cost
    /// units per second: a representative non-resident packed batch of one
    /// `chunk_size`-position job, priced by [`Self::predict_s`]. Deadline
    /// admission sums this across the pool to translate queued cost into a
    /// predicted completion time.
    pub fn admission_units_per_s(&self, chunk_size: usize) -> f64 {
        let cost = BatchCost {
            scan_len: chunk_size,
            plen: 11,
            jobs: 1,
            chunk_bytes: chunk_size.div_ceil(4),
            class: PayloadClass::Packed2Bit,
            candidate_fraction: 0.1,
            token: 0,
            fused: false,
            guide_blocks: 1,
            finder_cached: false,
        };
        chunk_size as f64 / self.predict_s(&cost, false).max(1e-12)
    }
}

/// The scheduler's prediction of which chunk payloads a device holds: an
/// LRU of residency tokens with the same budget as the workers' chunk
/// runners. Predictive only — the runners' token check is the guard.
struct ResidentSet {
    cap: usize,
    /// Front = most recently used.
    order: VecDeque<u64>,
}

impl ResidentSet {
    fn new(cap: usize) -> Self {
        ResidentSet {
            cap,
            order: VecDeque::new(),
        }
    }

    fn contains(&self, token: u64) -> bool {
        self.order.contains(&token)
    }

    fn insert(&mut self, token: u64) {
        if self.cap == 0 {
            return;
        }
        if let Some(pos) = self.order.iter().position(|&t| t == token) {
            self.order.remove(pos);
        }
        self.order.push_front(token);
        self.order.truncate(self.cap);
    }
}

struct Pending {
    batch: ChunkBatch,
    cost: BatchCost,
    /// Bias-corrected prediction under the model of the queue the batch
    /// sits in — what pending-time accounting uses.
    predicted_s: f64,
    /// The same prediction before the bias correction — the denominator
    /// the completion report folds into the bias estimate.
    model_s: f64,
}

struct PoolInner {
    queues: Vec<VecDeque<Pending>>,
    /// Per device: sum of predicted service time queued or running.
    pending_s: Vec<f64>,
    /// Per device, per payload class: the bias correction completions fold
    /// into predictions — a decayed ratio of sums, measured service time
    /// over model-predicted. The calibrated model is the prior; the bias
    /// corrects its systematic error, so a device the model flatters stops
    /// attracting extra work. The correction is per class because the
    /// classes run different kernels — a scalar bias settles between their
    /// ratios and stays wrong for every class of a mixed workload.
    bias: Vec<[f64; PayloadClass::COUNT]>,
    /// Decayed sums of model-predicted (`.0`) and measured (`.1`) service
    /// seconds backing each bias cell.
    bias_sums: Vec<[(f64, f64); PayloadClass::COUNT]>,
    /// Per device: predicted resident chunk tokens.
    residency: Vec<ResidentSet>,
    /// Per device: in the fleet? Out-of-fleet devices receive no new
    /// placements (planned, fallback, or stolen); already-queued batches
    /// still drain through their worker.
    active: Vec<bool>,
    closed: bool,
}

/// A pool of `n` device work queues shared by one dispatcher and `n`
/// workers.
pub(crate) struct DevicePool {
    models: Vec<DeviceModel>,
    placement: Placement,
    /// Workers fuse multi-job comparer passes into guide-block launches,
    /// so dispatch prices multi-job batches with the fused rates.
    multi_guide: bool,
    /// The service's candidate-site cache, when enabled: dispatch peeks it
    /// to price the finder stage at zero for batches whose candidate list
    /// is already resident. Predictive only — the worker's own lookup is
    /// what actually skips the launch.
    candidates: Option<Arc<CandidateCache>>,
    /// The installed chunk→device ownership map, swapped wholesale when
    /// the fleet changes. Consulted only under [`Placement::Planned`].
    plan: Mutex<Option<Arc<ShardPlan>>>,
    /// Batches placed on their chunk's planned owner.
    planned_hits: AtomicU64,
    /// Batches a saturated owner spilled to earliest-completion placement.
    spill_fallbacks: AtomicU64,
    inner: Mutex<PoolInner>,
    /// Signalled when work arrives or the pool closes (workers wait).
    work: Condvar,
    /// Signalled when a queue drains below its limit (dispatcher waits).
    space: Condvar,
}

/// What a worker receives from [`DevicePool::next`].
pub(crate) struct Assignment {
    pub batch: ChunkBatch,
    /// Predicted service time under the executing worker's model — the
    /// worker reports it back via [`DevicePool::complete`] and the metrics
    /// compare it against the measured time.
    pub predicted_s: f64,
    /// The prediction before the bias correction — the completion report's
    /// denominator for the bias estimate.
    pub model_s: f64,
    /// Payload class of the batch — selects which bias cell the completion
    /// report corrects.
    pub class: PayloadClass,
    /// Whether the batch was *priced* with its finder skipped (the
    /// candidate cache held the chunk's list at dispatch time). The worker
    /// executes what was priced: a list published after dispatch is
    /// declined rather than silently making the batch cheaper than
    /// predicted.
    pub finder_cached: bool,
    /// True when the batch came from a sibling's queue.
    pub stolen: bool,
}

impl DevicePool {
    /// A pool over `models` with `resident_budget` predicted chunk slots
    /// per device (0 disables residency-aware pricing entirely).
    pub fn new(models: Vec<DeviceModel>, placement: Placement, resident_budget: usize) -> Self {
        assert!(!models.is_empty(), "the pool needs at least one device");
        let n = models.len();
        DevicePool {
            models,
            placement,
            multi_guide: false,
            candidates: None,
            plan: Mutex::new(None),
            planned_hits: AtomicU64::new(0),
            spill_fallbacks: AtomicU64::new(0),
            inner: Mutex::new(PoolInner {
                queues: (0..n).map(|_| VecDeque::new()).collect(),
                pending_s: vec![0.0; n],
                bias: vec![[1.0; PayloadClass::COUNT]; n],
                bias_sums: vec![[(0.0, 0.0); PayloadClass::COUNT]; n],
                residency: (0..n).map(|_| ResidentSet::new(resident_budget)).collect(),
                active: vec![true; n],
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Price multi-job batches with the fused multi-guide rates — set this
    /// iff the workers' pipeline config enables `multi_guide`, so the
    /// prediction matches what the runners actually launch.
    pub fn with_multi_guide(mut self, on: bool) -> Self {
        self.multi_guide = on;
        self
    }

    /// Let dispatch peek `cache` to predict finder-launch skips — pass the
    /// same cache the workers consult.
    pub fn with_candidate_cache(mut self, cache: Arc<CandidateCache>) -> Self {
        self.candidates = Some(cache);
        self
    }

    /// Install (or replace) the chunk→device ownership map consulted by
    /// [`Placement::Planned`] dispatch.
    pub fn install_plan(&self, plan: Arc<ShardPlan>) {
        *self.plan.lock().unwrap() = Some(plan);
    }

    /// The currently installed plan, if any.
    pub fn plan_snapshot(&self) -> Option<Arc<ShardPlan>> {
        self.plan.lock().unwrap().clone()
    }

    /// `(planned placements, spill fallbacks)` so far.
    pub fn plan_counters(&self) -> (u64, u64) {
        (
            self.planned_hits.load(Ordering::Relaxed),
            self.spill_fallbacks.load(Ordering::Relaxed),
        )
    }

    /// Mark `device` in or out of the fleet. An out-of-fleet device takes
    /// no new placements and steals nothing, but batches already queued on
    /// it still drain through its worker — deactivation never strands work.
    ///
    /// # Panics
    ///
    /// Panics if the call would deactivate the last active device.
    pub fn set_active(&self, device: usize, active: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.active[device] = active;
        assert!(
            inner.active.iter().any(|&a| a),
            "the fleet needs at least one active device"
        );
        drop(inner);
        // Activation opens placement room and deactivation reroutes
        // planned traffic, so wake any blocked dispatcher either way.
        self.space.notify_all();
    }

    /// Mirror a worker-side prefetch upload into the scheduler's resident
    /// prediction, so planned batches get priced with the upload discount
    /// their runner will actually deliver.
    pub fn note_resident(&self, worker: usize, token: u64) {
        self.inner.lock().unwrap().residency[worker].insert(token);
    }

    /// Current per-device, per-class bias corrections (the dimensionless
    /// EWMA factors completions fold into predictions) — plan predictions
    /// apply them so a pre-run makespan estimate carries the same
    /// correction dispatch uses. Index the inner array with
    /// [`PayloadClass::index`].
    pub fn bias_snapshot(&self) -> Vec<[f64; PayloadClass::COUNT]> {
        self.inner.lock().unwrap().bias.clone()
    }

    /// Per-device fleet membership, for zeroing a departed device's weight
    /// when the plan is rebuilt on fleet change.
    pub fn active_snapshot(&self) -> Vec<bool> {
        self.inner.lock().unwrap().active.clone()
    }

    /// Batches queued per device right now — the autoscaler's windowed
    /// queue-depth signal, read in one lock pass so the vector is a
    /// consistent instant across devices.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.inner.lock().unwrap().queues.iter().map(|q| q.len()).collect()
    }

    /// Predicted seconds of work pending per device (queued batches
    /// priced under each device's bias-corrected model). A retiring
    /// device's entry drains to zero as its queue empties — the signal
    /// drain-before-retire waits on.
    pub fn pending_snapshot(&self) -> Vec<f64> {
        self.inner.lock().unwrap().pending_s.clone()
    }

    /// Queue `batch` on `device`, priced under that device's model and
    /// current residency prediction, and wake the workers. Consumes the
    /// guard: the lock drops before the notify. `assume_resident` prices
    /// the chunk as already uploaded regardless of the tracked set —
    /// planned-owner placements use it, because the owner's one-pass
    /// partition prefetch runs before any of its batches do (sizing the
    /// residency budget to hold the partition is the config's contract).
    fn enqueue_locked(
        &self,
        mut inner: std::sync::MutexGuard<'_, PoolInner>,
        device: usize,
        batch: ChunkBatch,
        cost: BatchCost,
        assume_resident: bool,
    ) {
        let resident = (assume_resident && inner.residency[device].cap != 0)
            || inner.residency[device].contains(cost.token);
        let model_s = self.models[device].predict_s(&cost, resident);
        let predicted_s = inner.bias[device][cost.bias_class().index()] * model_s;
        inner.pending_s[device] += predicted_s;
        // Optimistic: once queued here the chunk will be uploaded here, so
        // later siblings of this chunk see the discount.
        inner.residency[device].insert(cost.token);
        inner.queues[device].push_back(Pending {
            batch,
            cost,
            predicted_s,
            model_s,
        });
        drop(inner);
        self.work.notify_all();
    }

    /// Place `batch` per the pool's [`Placement`] policy — by default on
    /// the device with the earliest predicted completion (pending predicted
    /// time + this batch's predicted time under that device's model, with
    /// the chunk upload discounted on devices predicted to hold the chunk)
    /// — blocking while every queue is at its in-flight limit. Exact ties
    /// break toward a chunk-resident device, then the lower device index.
    ///
    /// Under [`Placement::Planned`] the chunk's owner takes the batch
    /// outright up to its calibrated spill threshold — twice the
    /// occupancy-derived in-flight window, so dispatch-vs-drain jitter
    /// queues on the owner instead of scattering the partition. Past the
    /// threshold the owner is saturated and the batch spills to the
    /// earliest-completion sibling only if that sibling's predicted
    /// completion (backlog plus the run, paying the upload where
    /// non-resident) beats the owner's — and otherwise waits for owner
    /// room: a transiently full queue drains faster than a spilled upload
    /// costs.
    pub fn dispatch(&self, batch: ChunkBatch) {
        let mut cost = BatchCost::of(&batch);
        if self.multi_guide && cost.jobs > 1 {
            cost.fused = true;
            cost.guide_blocks = cost.jobs.div_ceil(GUIDE_BLOCK);
        }
        // A packed payload with opaque exceptions cannot replay a cached
        // candidate list (the cached packed entry points require 2-bit-safe
        // payloads), so only the other classes can skip the finder.
        if cost.class != PayloadClass::PackedChar {
            if let Some(cache) = &self.candidates {
                let key = CandidateKey::of(&batch.key.pattern, &batch.chunk);
                cost.finder_cached = cache.peek(&key);
            }
        }
        // Resolve the planned owner before taking the queue lock: the plan
        // is an immutable snapshot, swapped wholesale on fleet change.
        let owner = match self.placement {
            Placement::Planned => self
                .plan_snapshot()
                .map(|plan| plan.owner_of(&batch.key.assembly, batch.chunk_index)),
            _ => None,
        };
        let mut inner = self.inner.lock().unwrap();
        loop {
            // Planned placement: an in-fleet owner below its spill
            // threshold takes the batch outright, no scoring.
            let owner_active = owner.filter(|&o| inner.active[o]);
            if let Some(o) = owner_active {
                if inner.queues[o].len() < self.models[o].spill_threshold() {
                    // Priced resident: the owner prefetches its partition
                    // before running any of it.
                    self.enqueue_locked(inner, o, batch, cost, true);
                    self.planned_hits.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            let mut best: Option<(usize, f64, bool)> = None;
            for (i, model) in self.models.iter().enumerate() {
                if !inner.active[i] {
                    continue;
                }
                let limit = match self.placement {
                    Placement::EarliestCompletion | Placement::Planned => model.in_flight_limit,
                    Placement::ShortestQueue => SHORTEST_QUEUE_IN_FLIGHT,
                };
                if inner.queues[i].len() >= limit {
                    continue;
                }
                let resident = inner.residency[i].contains(cost.token);
                let score = match self.placement {
                    Placement::EarliestCompletion | Placement::Planned => {
                        inner.pending_s[i]
                            + inner.bias[i][cost.bias_class().index()]
                                * model.predict_s(&cost, resident)
                    }
                    Placement::ShortestQueue => inner.queues[i].len() as f64,
                };
                let better = match best {
                    None => true,
                    Some((_, t, r)) => score < t || (score == t && resident && !r),
                };
                if better {
                    best = Some((i, score, resident));
                }
            }
            match (owner_active, best) {
                // Owner in fleet but full: spill only when the sibling's
                // predicted completion beats the owner's — the sibling pays
                // the real upload where non-resident, the owner prices its
                // backlog plus a (usually resident) run. Otherwise wait for
                // owner room rather than scatter the partition.
                (Some(o), Some((device, eta, _))) => {
                    let resident = inner.residency[o].cap != 0
                        || inner.residency[o].contains(cost.token);
                    let owner_eta = inner.pending_s[o]
                        + inner.bias[o][cost.bias_class().index()]
                            * self.models[o].predict_s(&cost, resident);
                    if eta < owner_eta {
                        self.enqueue_locked(inner, device, batch, cost, false);
                        self.spill_fallbacks.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                // No usable owner (none planned, or it left the fleet):
                // plain earliest-completion placement. A rerouted planned
                // batch still counts as a spill.
                (None, Some((device, _, _))) => {
                    self.enqueue_locked(inner, device, batch, cost, false);
                    if owner.is_some() {
                        self.spill_fallbacks.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
                _ => {}
            }
            inner = self.space.wait(inner).unwrap();
        }
    }

    /// Fetch the next batch for `worker`: its own queue first, then the
    /// sibling with the most predicted pending work. The thief prefers the
    /// youngest victim batch whose chunk the thief already holds, else the
    /// youngest outright; either way the steal is re-priced under the
    /// thief's model and residency, and its pending time moves with it.
    /// Blocks while the pool is empty; returns `None` once closed *and*
    /// drained.
    pub fn next(&self, worker: usize) -> Option<Assignment> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            let inner_ref = &mut *inner;
            if let Some(p) = inner_ref.queues[worker].pop_front() {
                inner_ref.residency[worker].insert(p.cost.token);
                drop(inner);
                self.space.notify_all();
                return Some(Assignment {
                    class: p.cost.bias_class(),
                    finder_cached: p.cost.finder_cached,
                    batch: p.batch,
                    predicted_s: p.predicted_s,
                    model_s: p.model_s,
                    stolen: false,
                });
            }
            // Planned placement disables stealing outright — ownership is
            // the plan's call, not idleness's — and a device out of the
            // fleet must not pull new work either way.
            let may_steal = self.placement != Placement::Planned && inner_ref.active[worker];
            let victim = may_steal
                .then(|| {
                    inner_ref
                        .queues
                        .iter()
                        .enumerate()
                        .filter(|&(i, q)| i != worker && !q.is_empty())
                        .max_by(|&(i, _), &(j, _)| {
                            inner_ref.pending_s[i].total_cmp(&inner_ref.pending_s[j])
                        })
                        .map(|(i, _)| i)
                })
                .flatten();
            if let Some(v) = victim {
                let queue = &inner_ref.queues[v];
                let thief_res = &inner_ref.residency[worker];
                let pick = queue
                    .iter()
                    .rposition(|p| thief_res.contains(p.cost.token))
                    .unwrap_or(queue.len() - 1);
                let p = inner_ref.queues[v]
                    .remove(pick)
                    .expect("pick is in bounds of a non-empty queue");
                inner_ref.pending_s[v] = (inner_ref.pending_s[v] - p.predicted_s).max(0.0);
                let resident = inner_ref.residency[worker].contains(p.cost.token);
                let model_s = self.models[worker].predict_s(&p.cost, resident);
                let predicted_s = inner_ref.bias[worker][p.cost.bias_class().index()] * model_s;
                inner_ref.pending_s[worker] += predicted_s;
                inner_ref.residency[worker].insert(p.cost.token);
                drop(inner);
                self.space.notify_all();
                return Some(Assignment {
                    class: p.cost.bias_class(),
                    finder_cached: p.cost.finder_cached,
                    batch: p.batch,
                    predicted_s,
                    model_s,
                    stolen: true,
                });
            }
            if inner.closed {
                return None;
            }
            inner = self.work.wait(inner).unwrap();
        }
    }

    /// Retire a finished batch's predicted time from `worker`'s pending
    /// total and fold the measured service time into the device's bias
    /// correction for `class`. Called by the worker after running an
    /// [`Assignment`].
    pub fn complete(
        &self,
        worker: usize,
        class: PayloadClass,
        predicted_s: f64,
        model_s: f64,
        measured_s: f64,
    ) {
        let mut inner = self.inner.lock().unwrap();
        inner.pending_s[worker] = (inner.pending_s[worker] - predicted_s).max(0.0);
        if model_s > 0.0 && measured_s > 0.0 {
            // The bias is a decayed ratio of sums — total measured seconds
            // over total model-predicted seconds — not a mean of per-batch
            // ratios. Per-batch ratios within a class disperse widely (the
            // model prices comparer work from the pattern's expected
            // candidate fraction; real chunks deviate either way), and a
            // per-batch EWMA chases whichever chunks finished last. The
            // ratio of sums weighs every batch by its predicted size, which
            // is exactly the correction that makes aggregate busy-time
            // predictions (plan makespans) land. The decay keeps it
            // adaptive: a device whose real rates drift re-converges within
            // ~1/(1-GAMMA) completions. Clamped so a pathological burst
            // cannot run the correction away from the calibrated model.
            const GAMMA: f64 = 0.98;
            let cell = &mut inner.bias_sums[worker][class.index()];
            cell.0 = cell.0 * GAMMA + model_s;
            cell.1 = cell.1 * GAMMA + measured_s;
            let ratio = (cell.1 / cell.0).clamp(0.25, 4.0);
            inner.bias[worker][class.index()] = ratio;
        }
        drop(inner);
        // A completion shrinks this device's predicted backlog, which can
        // flip a planned dispatcher's wait-vs-spill comparison.
        self.space.notify_all();
    }

    /// Close the pool: queued batches still drain, then workers see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.work.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{BatchJob, BatchKey};
    use crate::cache::{ChunkEncoding, EncodedChunk};
    use cas_offinder::Query;
    use std::sync::Arc;

    fn model(spec: &DeviceSpec) -> DeviceModel {
        DeviceModel::calibrated(spec, 1 << 13, OptLevel::Base, false, Api::OpenCl)
    }

    fn batch_with(index: usize, scan_len: usize, jobs: usize) -> ChunkBatch {
        ChunkBatch {
            key: BatchKey {
                assembly: "a".into(),
                pattern: b"NNNNNNNNNRG".to_vec(),
            },
            chunk_index: index,
            chunk: Arc::new(EncodedChunk::encode(
                0,
                "chr1".into(),
                0,
                scan_len,
                &vec![b'A'; scan_len + 11],
                ChunkEncoding::Packed,
            )),
            jobs: (0..jobs)
                .map(|i| BatchJob {
                    id: i as u64,
                    query: Query::new(b"ACGTACGTNNN".to_vec(), 1),
                })
                .collect(),
        }
    }

    fn batch(index: usize) -> ChunkBatch {
        batch_with(index, 4, 1)
    }

    #[test]
    fn identical_devices_and_batches_round_robin() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default(), 0);
        for i in 0..4 {
            pool.dispatch(batch(i));
        }
        // Equal predictions: earliest-completion placement alternates 0,1,0,1.
        let a = pool.next(0).unwrap();
        assert!(!a.stolen);
        assert_eq!(a.batch.chunk_index, 0);
        assert!(a.predicted_s > 0.0);
        let b = pool.next(1).unwrap();
        assert!(!b.stolen);
        assert_eq!(b.batch.chunk_index, 1);
    }

    #[test]
    fn a_heavy_batch_skips_the_shorter_queue_for_a_faster_device() {
        // Worker 0 = Radeon VII, worker 1 = MI100 (~1.7x the cycle slots).
        let pool = DevicePool::new(
            vec![model(&DeviceSpec::radeon_vii()), model(&DeviceSpec::mi100())],
            Placement::default(),
            0,
        );
        // A light batch lands on the faster (empty) MI100.
        pool.dispatch(batch_with(0, 512, 1));
        // The heavy batch sees RVII with the *shorter* (empty) queue, but
        // MI100's queued light batch plus the heavy batch still finishes
        // sooner than the heavy batch alone would on the RVII.
        pool.dispatch(batch_with(1, 8192, 8));
        let first = pool.next(1).unwrap();
        assert!(!first.stolen);
        assert_eq!(first.batch.chunk_index, 0, "light batch went to MI100");
        let second = pool.next(1).unwrap();
        assert!(!second.stolen);
        assert_eq!(
            second.batch.chunk_index, 1,
            "heavy batch also chose MI100 over the empty RVII queue"
        );
        assert!(second.predicted_s > first.predicted_s);
    }

    #[test]
    fn shortest_queue_placement_ignores_device_speed() {
        // The same two batches as the cost-aware test above, under the
        // baseline policy: the light batch ties toward device 0 (the slower
        // Radeon VII) and the heavy batch goes to device 1 purely by count —
        // no batch weight, no device speed.
        let pool = DevicePool::new(
            vec![model(&DeviceSpec::radeon_vii()), model(&DeviceSpec::mi100())],
            Placement::ShortestQueue,
            0,
        );
        pool.dispatch(batch_with(0, 512, 1));
        pool.dispatch(batch_with(1, 8192, 8));
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 0);
        assert_eq!(pool.next(1).unwrap().batch.chunk_index, 1);
    }

    #[test]
    fn in_flight_limits_derive_from_occupancy_and_batch_footprint() {
        let spec = DeviceSpec::mi60();
        let small = DeviceModel::calibrated(&spec, 64, OptLevel::Base, false, Api::OpenCl);
        let large = DeviceModel::calibrated(&spec, 1 << 13, OptLevel::Base, false, Api::OpenCl);
        assert!(small.in_flight_limit >= large.in_flight_limit);
        assert!(large.in_flight_limit >= 1);
        // A bigger device sustains more in-flight chunks than a smaller one.
        let rvii = DeviceModel::calibrated(&DeviceSpec::radeon_vii(), 1 << 13, OptLevel::Base, false, Api::OpenCl);
        let mi100 = DeviceModel::calibrated(&DeviceSpec::mi100(), 1 << 13, OptLevel::Base, false, Api::OpenCl);
        assert!(mi100.in_flight_limit >= rvii.in_flight_limit);
    }

    #[test]
    fn idle_workers_steal_from_the_most_loaded_sibling() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 3], Placement::default(), 0);
        for i in 0..4 {
            pool.dispatch(batch(i)); // earliest-completion: 0,1,2,0
        }
        // Worker 2 drains its own then steals from worker 0 (most pending).
        assert!(!pool.next(2).unwrap().stolen);
        let stolen = pool.next(2).unwrap();
        assert!(stolen.stolen);
        assert_eq!(stolen.batch.chunk_index, 3, "steals from the back");
        assert!(stolen.predicted_s > 0.0, "re-priced under the thief's model");
    }

    #[test]
    fn dispatch_blocks_at_the_per_device_in_flight_limit() {
        let mut m = model(&DeviceSpec::mi60());
        m.in_flight_limit = 2;
        let pool = Arc::new(DevicePool::new(vec![m], Placement::default(), 0));
        pool.dispatch(batch(0));
        pool.dispatch(batch(1));
        let p2 = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            p2.dispatch(batch(2)); // must block until next() frees a slot
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "dispatch must be blocked at the limit");
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 0);
        t.join().unwrap();
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 1);
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 2);
    }

    #[test]
    fn completed_batches_release_their_pending_time() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default(), 0);
        pool.dispatch(batch(0));
        let a = pool.next(0).unwrap();
        pool.complete(0, a.class, a.predicted_s, a.model_s, a.predicted_s);
        // With device 0 idle again, the next identical batch ties and the
        // tie breaks toward device 0 — nothing was left pending.
        pool.dispatch(batch(1));
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 1);
    }

    #[test]
    fn close_drains_then_terminates() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default(), 0);
        pool.dispatch(batch(0));
        pool.close();
        assert!(pool.next(0).is_some());
        assert!(pool.next(0).is_none());
        assert!(pool.next(1).is_none());
    }

    #[test]
    fn repeat_chunks_steer_to_the_device_holding_them() {
        // Two identical devices; without residency the tie sends chunk 7 to
        // device 0. Seed chunk 7 as resident on device 1: the upload
        // discount makes device 1 strictly cheaper, beating the index tie.
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default(), 4);
        let b = batch(7);
        let token = residency_token(&b.key, b.chunk_index);
        pool.inner.lock().unwrap().residency[1].insert(token);
        pool.dispatch(b);
        let a = pool.next(1).unwrap();
        assert!(!a.stolen, "placed on the resident device, not stolen");
        assert_eq!(a.batch.chunk_index, 7);
        // And the placed prediction carries the discount: strictly cheaper
        // than the same batch priced non-resident on the same model.
        let cost = BatchCost::of(&batch(7));
        assert!(a.predicted_s < pool.models[1].predict_s(&cost, false));
        assert!((a.predicted_s - pool.models[1].predict_s(&cost, true)).abs() < 1e-15);
    }

    #[test]
    fn stolen_non_resident_chunks_pay_the_full_upload() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default(), 4);
        pool.dispatch(batch(3)); // ties to device 0, predicted resident there
        let a = pool.next(1).unwrap(); // worker 1 is idle and steals it
        assert!(a.stolen);
        let cost = BatchCost::of(&batch(3));
        // Fresh pool: bias is 1.0, so the re-price is exactly the thief's
        // non-resident prediction — the upload is charged for real.
        assert!((a.predicted_s - pool.models[1].predict_s(&cost, false)).abs() < 1e-15);
        assert!(a.predicted_s > pool.models[1].predict_s(&cost, true));
    }

    #[test]
    fn thieves_prefer_victim_batches_whose_chunk_they_hold() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default(), 4);
        // Pin both batches onto device 0 by inflating device 1's backlog.
        pool.inner.lock().unwrap().pending_s[1] = 1.0;
        pool.dispatch(batch(7));
        pool.dispatch(batch(8));
        {
            let mut inner = pool.inner.lock().unwrap();
            inner.pending_s[1] = 0.0;
            let b = batch(7);
            inner.residency[1].insert(residency_token(&b.key, b.chunk_index));
        }
        let a = pool.next(1).unwrap();
        assert!(a.stolen);
        assert_eq!(
            a.batch.chunk_index, 7,
            "steals the chunk it holds, not the youngest"
        );
        let cost = BatchCost::of(&batch(7));
        assert!((a.predicted_s - pool.models[1].predict_s(&cost, true)).abs() < 1e-15);
    }

    #[test]
    fn resident_sets_evict_least_recently_used_tokens() {
        let mut set = ResidentSet::new(2);
        set.insert(1);
        set.insert(2);
        set.insert(1); // refresh: 2 is now LRU
        set.insert(3); // evicts 2
        assert!(set.contains(1));
        assert!(!set.contains(2));
        assert!(set.contains(3));
        let mut off = ResidentSet::new(0);
        off.insert(1);
        assert!(!off.contains(1), "budget 0 disables residency");
    }

    /// A plan over the tests' `"a"` assembly (`n` chunks) with one weight
    /// per device.
    fn plan(weights: &[f64], chunks: usize) -> Arc<ShardPlan> {
        Arc::new(ShardPlan::build(weights, &[("a".to_string(), chunks)]))
    }

    #[test]
    fn planned_placement_steers_every_chunk_to_its_owner() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::Planned, 4);
        pool.install_plan(plan(&[1.0, 1.0], 4));
        // Chunks 0-1 belong to device 0, chunks 2-3 to device 1 — dispatch
        // out of range order to prove it is the plan deciding, not scores.
        for index in [2, 0, 3, 1] {
            pool.dispatch(batch(index));
        }
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 0);
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 1);
        assert_eq!(pool.next(1).unwrap().batch.chunk_index, 2);
        assert_eq!(pool.next(1).unwrap().batch.chunk_index, 3);
        assert_eq!(pool.plan_counters(), (4, 0), "all planned, no spills");
    }

    #[test]
    fn saturated_owner_spills_to_earliest_completion_and_pays_the_upload() {
        // Device 0 owns every chunk but can hold only one batch in
        // flight, so its spill threshold is two queued batches.
        let mut owner = model(&DeviceSpec::mi60());
        owner.in_flight_limit = 1;
        assert_eq!(owner.spill_threshold(), 2);
        let pool = DevicePool::new(
            vec![owner, model(&DeviceSpec::mi60())],
            Placement::Planned,
            4,
        );
        pool.install_plan(plan(&[1.0, 0.0], 8));
        pool.dispatch(batch(0)); // fills the in-flight window
        pool.dispatch(batch(1)); // still below the spill threshold
        pool.dispatch(batch(2)); // owner saturated: must spill, not block
        let spilled = pool.next(1).unwrap();
        assert!(!spilled.stolen, "spill is a placement, not a steal");
        assert_eq!(spilled.batch.chunk_index, 2);
        // The spilled batch is non-resident on the fallback device, so its
        // price carries the real chunk upload.
        let cost = BatchCost::of(&batch(2));
        assert!((spilled.predicted_s - pool.models[1].predict_s(&cost, false)).abs() < 1e-15);
        assert!(spilled.predicted_s > pool.models[1].predict_s(&cost, true));
        assert_eq!(pool.plan_counters(), (2, 1));
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 0);
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 1);
    }

    #[test]
    fn a_saturated_owner_spills_a_full_workload_without_deadlock() {
        // Device 0 owns every chunk but never drains its queue: once the
        // owner's spill threshold (two batches) fills, every dispatch
        // finds the owner saturated and must spill to the fallback — whose predicted
        // completion only beats the owner's while its own backlog is
        // clear, so the dispatcher alternates spill / block-for-space in
        // lockstep with the fallback worker's completions. The workload
        // draining completely is the no-deadlock proof; a stuck
        // wait-vs-spill comparison would hang this test.
        let mut owner = model(&DeviceSpec::mi60());
        owner.in_flight_limit = 1;
        let pool = Arc::new(DevicePool::new(
            vec![owner, model(&DeviceSpec::mi60())],
            Placement::Planned,
            64,
        ));
        pool.install_plan(plan(&[1.0, 0.0], 64));
        // Every spilled batch pays the real upload: non-resident price
        // under the fallback's model (bias stays 1.0 because the worker
        // reports measured == predicted).
        let expect_spill_s = pool.models[1].predict_s(&BatchCost::of(&batch(1)), false);
        let drained = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut n = 0;
                while let Some(a) = pool.next(1) {
                    assert!(!a.stolen, "spills are placements, not steals");
                    assert!(
                        (a.predicted_s - expect_spill_s).abs() < 1e-15,
                        "spilled batches pay the non-resident upload price"
                    );
                    pool.complete(1, a.class, a.predicted_s, a.model_s, a.predicted_s);
                    n += 1;
                }
                n
            })
        };
        for i in 0..64 {
            pool.dispatch(batch(i));
        }
        pool.close();
        assert_eq!(drained.join().unwrap(), 62, "owner kept two, rest spilled");
        assert_eq!(pool.plan_counters(), (2, 62));
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 0);
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 1);
    }

    #[test]
    fn planned_placement_disables_stealing() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::Planned, 4);
        pool.install_plan(plan(&[1.0, 0.0], 8));
        pool.dispatch(batch(0));
        pool.close();
        // Worker 1 idles next to a backlog it would previously have stolen.
        assert!(pool.next(1).is_none(), "no steal under planned placement");
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 0);
    }

    #[test]
    fn deactivated_devices_receive_no_placements() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default(), 0);
        pool.set_active(1, false);
        for i in 0..4 {
            pool.dispatch(batch(i));
        }
        // Without the deactivation the round-robin tie would alternate.
        for i in 0..4 {
            let a = pool.next(0).unwrap();
            assert!(!a.stolen);
            assert_eq!(a.batch.chunk_index, i);
        }
    }

    #[test]
    #[should_panic(expected = "at least one active device")]
    fn the_last_active_device_cannot_be_deactivated() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default(), 0);
        pool.set_active(0, false);
        pool.set_active(1, false);
    }

    #[test]
    fn fused_and_cached_costs_reprice_the_batch() {
        let m = model(&DeviceSpec::mi60());
        let mut cost = BatchCost::of(&batch_with(0, 4096, 8));
        assert_eq!(cost.bias_class(), PayloadClass::Packed2Bit);
        let serial = m.predict_s(&cost, false);

        cost.fused = true;
        cost.guide_blocks = 1;
        assert_eq!(
            cost.bias_class(),
            PayloadClass::MultiGuide,
            "fused batches train the multi-guide bias cell"
        );
        let fused = m.predict_s(&cost, false);
        assert!(fused.is_finite() && fused > 0.0);
        assert_ne!(
            fused.to_bits(),
            serial.to_bits(),
            "fused batches price through the measured multi rates"
        );

        cost.finder_cached = true;
        let cached = m.predict_s(&cost, false);
        assert!(
            cached < fused,
            "a cached candidate list prices the finder at zero: {cached} vs {fused}"
        );
    }

    #[test]
    fn dispatch_marks_fused_batches_and_peeks_the_candidate_cache() {
        let cache = Arc::new(CandidateCache::new(1 << 16));
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60())], Placement::default(), 0)
            .with_multi_guide(true)
            .with_candidate_cache(Arc::clone(&cache));

        pool.dispatch(batch_with(0, 64, 4));
        let a = pool.next(0).unwrap();
        assert_eq!(a.class, PayloadClass::MultiGuide, "coalesced batches fuse");
        assert!(!a.finder_cached, "nothing published yet");

        // Publish the chunk's (empty) list; the identical batch now prices
        // its finder at zero and the assignment carries that decision.
        let again = batch_with(0, 64, 4);
        let key = CandidateKey::of(&again.key.pattern, &again.chunk);
        match cache.lookup_or_lead(&key) {
            crate::candidates::CandidateLookup::Lead => cache.publish(
                &key,
                Arc::new(cas_offinder::pipeline::chunk::CandidateSites {
                    loci: Vec::new(),
                    flags: Vec::new(),
                }),
            ),
            crate::candidates::CandidateLookup::Hit(_) => unreachable!("first lookup leads"),
        }
        pool.dispatch(again);
        let b = pool.next(0).unwrap();
        assert!(b.finder_cached, "dispatch peeks the published list");
        assert!(
            b.predicted_s < a.predicted_s,
            "the cached batch is cheaper: {} vs {}",
            b.predicted_s,
            a.predicted_s
        );

        // A single-job batch stays serial even with fusion enabled.
        pool.dispatch(batch_with(1, 64, 1));
        let c = pool.next(0).unwrap();
        assert_eq!(c.class, PayloadClass::Packed2Bit);
    }

    #[test]
    fn residency_tokens_separate_chunk_identity() {
        let key = BatchKey {
            assembly: "a".into(),
            pattern: b"NGG".to_vec(),
        };
        let other_asm = BatchKey {
            assembly: "b".into(),
            pattern: b"NGG".to_vec(),
        };
        let other_pat = BatchKey {
            assembly: "a".into(),
            pattern: b"NAG".to_vec(),
        };
        let t = residency_token(&key, 3);
        assert_eq!(t, residency_token(&key, 3), "stable across calls");
        assert_ne!(t, residency_token(&key, 4));
        assert_ne!(t, residency_token(&other_asm, 3));
        assert_ne!(t, residency_token(&other_pat, 3));
    }
}
