//! The device pool: per-device batch queues with bounded in-flight depth,
//! shortest-queue placement, and work stealing.
//!
//! Placement and stealing are deliberately simple — the properties that
//! matter to the service are (a) a device never idles while a sibling has
//! a backlog, and (b) no device queue grows past its in-flight limit, so
//! dispatch pressure propagates back to the admission queue.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::batcher::ChunkBatch;

struct PoolInner {
    queues: Vec<VecDeque<ChunkBatch>>,
    closed: bool,
}

/// A pool of `n` device work queues shared by one dispatcher and `n`
/// workers.
pub(crate) struct DevicePool {
    in_flight_limit: usize,
    inner: Mutex<PoolInner>,
    /// Signalled when work arrives or the pool closes (workers wait).
    work: Condvar,
    /// Signalled when a queue drains below the limit (dispatcher waits).
    space: Condvar,
}

/// What a worker receives from [`DevicePool::next`].
pub(crate) struct Assignment {
    pub batch: ChunkBatch,
    /// True when the batch came from a sibling's queue.
    pub stolen: bool,
}

impl DevicePool {
    pub fn new(devices: usize, in_flight_limit: usize) -> Self {
        assert!(devices > 0, "the pool needs at least one device");
        assert!(in_flight_limit > 0, "in-flight limit must be positive");
        DevicePool {
            in_flight_limit,
            inner: Mutex::new(PoolInner {
                queues: (0..devices).map(|_| VecDeque::new()).collect(),
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Place `batch` on the shortest device queue, blocking while every
    /// queue is at the in-flight limit.
    pub fn dispatch(&self, batch: ChunkBatch) {
        let mut inner = self.inner.lock().unwrap();
        loop {
            let (device, depth) = inner
                .queues
                .iter()
                .enumerate()
                .map(|(i, q)| (i, q.len()))
                .min_by_key(|&(_, len)| len)
                .expect("pool has devices");
            if depth < self.in_flight_limit {
                inner.queues[device].push_back(batch);
                drop(inner);
                self.work.notify_all();
                return;
            }
            inner = self.space.wait(inner).unwrap();
        }
    }

    /// Fetch the next batch for `worker`: its own queue first, then the
    /// deepest sibling queue (stealing from the back). Blocks while the
    /// pool is empty; returns `None` once closed *and* drained.
    pub fn next(&self, worker: usize) -> Option<Assignment> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(batch) = inner.queues[worker].pop_front() {
                drop(inner);
                self.space.notify_all();
                return Some(Assignment {
                    batch,
                    stolen: false,
                });
            }
            let victim = inner
                .queues
                .iter()
                .enumerate()
                .filter(|&(i, q)| i != worker && !q.is_empty())
                .max_by_key(|&(_, q)| q.len())
                .map(|(i, _)| i);
            if let Some(v) = victim {
                let batch = inner.queues[v].pop_back().expect("victim is non-empty");
                drop(inner);
                self.space.notify_all();
                return Some(Assignment {
                    batch,
                    stolen: true,
                });
            }
            if inner.closed {
                return None;
            }
            inner = self.work.wait(inner).unwrap();
        }
    }

    /// Close the pool: queued batches still drain, then workers see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.work.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchKey;
    use crate::cache::EncodedChunk;
    use std::sync::Arc;

    fn batch(index: usize) -> ChunkBatch {
        ChunkBatch {
            key: BatchKey {
                assembly: "a".into(),
                pattern: b"NGG".to_vec(),
            },
            chunk_index: index,
            chunk: Arc::new(EncodedChunk {
                chrom_index: 0,
                chrom: "chr1".into(),
                start: 0,
                scan_len: 4,
                seq: vec![b'A'; 7],
            }),
            jobs: Vec::new(),
        }
    }

    #[test]
    fn dispatch_fills_the_shortest_queue_and_workers_drain_their_own() {
        let pool = DevicePool::new(2, 4);
        for i in 0..4 {
            pool.dispatch(batch(i));
        }
        // Round-robin placement by shortest-queue: 0,1,0,1.
        let a = pool.next(0).unwrap();
        assert!(!a.stolen);
        assert_eq!(a.batch.chunk_index, 0);
        let b = pool.next(1).unwrap();
        assert!(!b.stolen);
        assert_eq!(b.batch.chunk_index, 1);
    }

    #[test]
    fn idle_workers_steal_from_the_deepest_sibling() {
        let pool = DevicePool::new(3, 8);
        for i in 0..4 {
            pool.dispatch(batch(i)); // shortest-queue: 0,1,2,0
        }
        // Worker 2 drains its own then steals from worker 0 (depth 2).
        assert!(!pool.next(2).unwrap().stolen);
        let stolen = pool.next(2).unwrap();
        assert!(stolen.stolen);
        assert_eq!(stolen.batch.chunk_index, 3, "steals from the back");
    }

    #[test]
    fn dispatch_blocks_at_the_in_flight_limit_until_a_worker_drains() {
        let pool = Arc::new(DevicePool::new(1, 2));
        pool.dispatch(batch(0));
        pool.dispatch(batch(1));
        let p2 = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            p2.dispatch(batch(2)); // must block until next() frees a slot
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "dispatch must be blocked at the limit");
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 0);
        t.join().unwrap();
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 1);
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 2);
    }

    #[test]
    fn close_drains_then_terminates() {
        let pool = DevicePool::new(2, 4);
        pool.dispatch(batch(0));
        pool.close();
        assert!(pool.next(0).is_some());
        assert!(pool.next(0).is_none());
        assert!(pool.next(1).is_none());
    }
}
