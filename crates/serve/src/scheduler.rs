//! The device pool: per-device batch queues with cost-aware placement,
//! occupancy-derived in-flight limits, and work stealing.
//!
//! Placement is no longer "shortest queue": queue depth treats a one-job
//! batch over a small chunk the same as an eight-job batch over a full
//! chunk, and treats a consumer Radeon VII the same as an MI100 with twice
//! its throughput. Instead each device carries a [`DeviceModel`] — service
//! rate and per-batch overheads derived from its [`DeviceSpec`] and the
//! comparer's occupancy on that device — and the dispatcher places every
//! batch on the device with the *earliest predicted completion*: the sum of
//! the predicted service times still pending on that device plus the
//! batch's own predicted time under that device's model.
//!
//! The per-device in-flight limit is likewise derived, not configured: the
//! number of chunk-sized grids the device can keep resident under the
//! comparer's occupancy, so a 120-CU MI100 queues deeper than a 60-CU
//! Radeon VII before dispatch pressure propagates back to admission.
//!
//! The properties the service relies on are unchanged: a device never
//! idles while a sibling has a backlog (stealing), and no device queue
//! grows past its in-flight limit (backpressure).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use cas_offinder::kernels::ComparerKernel;
use cas_offinder::OptLevel;
use gpu_sim::isa::compile_program;
use gpu_sim::occupancy::occupancy;
use gpu_sim::timing::utilization;
use gpu_sim::{DeviceSpec, NdRange};

use crate::batcher::ChunkBatch;
use crate::cache::ChunkPayload;

/// Model cycles one "work unit" (one pattern base at one scan position for
/// one pass) costs on the simulated devices. Calibrated against
/// `examples/serve_demo.rs`, which reports the resulting mean
/// predicted-vs-actual service-time error.
const CYCLES_PER_UNIT: f64 = 30.0;

/// Fraction of scan positions the finder typically promotes to comparer
/// candidates. The finder sweeps every position, but each per-job comparer
/// pass only touches the loci whose PAM matched — charging comparers for
/// the full scan overestimates heavy batches badly. Calibrated together
/// with [`CYCLES_PER_UNIT`] against `examples/serve_demo.rs`.
const CANDIDATE_FRACTION: f64 = 0.4;

/// Relative comparer cost on 2-bit packed payloads: the `comparer_2bit`
/// kernel shares each packed byte across four bases (~3/8 of the char
/// kernel's global traffic) at the price of extra decode ALU. Calibrated
/// together with the constants above against `examples/serve_demo.rs`.
const TWOBIT_COMPARER_WEIGHT: f64 = 0.8;

/// The fixed per-device depth the pre-cost-model scheduler used for every
/// device. Only [`Placement::ShortestQueue`] still applies it.
const SHORTEST_QUEUE_IN_FLIGHT: usize = 4;

/// How the dispatcher places batches on device queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Place each batch on the device with the earliest predicted
    /// completion under that device's cost model; per-device in-flight
    /// limits derive from the comparer's occupancy.
    #[default]
    EarliestCompletion,
    /// The previous scheduler, kept as a measurable baseline: fewest queued
    /// batches wins, every device is treated alike, and the in-flight
    /// depth is a fixed 4.
    ShortestQueue,
}

/// The dispatcher's estimate of what a [`ChunkBatch`] costs, extracted
/// once at dispatch and re-priced per device.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchCost {
    /// Scan positions the finder sweeps.
    pub scan_len: usize,
    /// Pattern length (work per position, and query-table size).
    pub plen: usize,
    /// Coalesced jobs — one comparer pass each.
    pub jobs: usize,
    /// Host bytes uploaded: encoded chunk + pattern/query tables.
    pub upload_bytes: usize,
    /// Relative cost of one comparer pass: 1.0 for the char comparer on
    /// raw payloads, [`TWOBIT_COMPARER_WEIGHT`] when the packed payload
    /// keeps the comparers in 2-bit form.
    pub comparer_weight: f64,
}

impl BatchCost {
    pub fn of(batch: &ChunkBatch) -> Self {
        let plen = batch.key.pattern.len();
        let jobs = batch.jobs.len();
        // The finder uploads pat + pat_index (2·plen bytes + 2·plen i32);
        // each comparer uploads the same shape for its query.
        let tables = 10 * plen * (1 + jobs);
        let comparer_weight = match &batch.chunk.payload {
            ChunkPayload::Packed(_) => TWOBIT_COMPARER_WEIGHT,
            ChunkPayload::Raw(_) => 1.0,
        };
        BatchCost {
            scan_len: batch.chunk.scan_len,
            plen,
            jobs,
            upload_bytes: batch.chunk.byte_len() + tables,
            comparer_weight,
        }
    }

    /// Device-independent work units: one finder pass over every scan
    /// position plus one comparer pass per job over the expected candidate
    /// subset, each touching `plen` bases per position.
    pub fn units(&self) -> f64 {
        let per_position = (self.scan_len * self.plen) as f64;
        per_position * (1.0 + CANDIDATE_FRACTION * self.comparer_weight * self.jobs as f64)
    }
}

/// A device's predicted service rate, derived from its spec and the
/// comparer kernel's occupancy on it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeviceModel {
    /// Work units retired per second at the modelled occupancy.
    units_per_s: f64,
    /// Host-to-device bandwidth in bytes per second.
    bytes_per_s: f64,
    /// Fixed cost per kernel launch.
    launch_overhead_s: f64,
    /// Fixed cost per transfer.
    transfer_overhead_s: f64,
    /// Batches this device may hold queued/running before dispatch blocks —
    /// how many chunk-sized grids fit in its resident wave budget.
    pub in_flight_limit: usize,
}

impl DeviceModel {
    /// Model `spec` serving `chunk_size`-position batches with the comparer
    /// compiled at `opt`.
    pub fn from_spec(spec: &DeviceSpec, chunk_size: usize, opt: OptLevel) -> Self {
        let program = compile_program(&ComparerKernel::code_model_for(opt));
        let wgs = 64usize;
        let gws = chunk_size.div_ceil(wgs) * wgs;
        let nd = NdRange::linear(gws, wgs);
        let occ = occupancy(&program.resources(), &nd, spec);
        let util = utilization(&occ, spec);
        let slots = (spec.compute_units() * spec.simds_per_cu) as f64;
        let units_per_s = slots * util * spec.clock_hz() / CYCLES_PER_UNIT;

        // Resident waves across the whole device at this occupancy, divided
        // by the waves one batch puts in flight.
        let resident = occ.waves_per_simd * spec.simds_per_cu * spec.compute_units();
        let waves_per_batch = (gws as u32).div_ceil(spec.wavefront).max(1);
        let in_flight_limit = (resident / waves_per_batch).clamp(1, 32) as usize;

        DeviceModel {
            units_per_s,
            bytes_per_s: spec.interconnect_bytes_per_s(),
            launch_overhead_s: spec.launch_overhead_s,
            transfer_overhead_s: spec.transfer_overhead_s,
            in_flight_limit,
        }
    }

    /// Predicted wall-clock service time of a batch on this device: launch
    /// and transfer overheads (1 finder + `jobs` comparers, with paired
    /// upload/readback), compute at the modelled rate, and the upload on
    /// the interconnect.
    pub fn predict_s(&self, cost: &BatchCost) -> f64 {
        let launches = (1 + cost.jobs) as f64;
        let transfers = (2 + 2 * cost.jobs) as f64;
        launches * self.launch_overhead_s
            + transfers * self.transfer_overhead_s
            + cost.units() / self.units_per_s
            + cost.upload_bytes as f64 / self.bytes_per_s
    }
}

struct Pending {
    batch: ChunkBatch,
    cost: BatchCost,
    /// Prediction under the model of the queue the batch sits in.
    predicted_s: f64,
}

struct PoolInner {
    queues: Vec<VecDeque<Pending>>,
    /// Per device: sum of predicted service time queued or running.
    pending_s: Vec<f64>,
    /// Per device: EWMA of measured/predicted service time. The occupancy
    /// model is the prior; completions correct its per-device systematic
    /// error, so a device the model flatters stops attracting extra work.
    bias: Vec<f64>,
    closed: bool,
}

/// A pool of `n` device work queues shared by one dispatcher and `n`
/// workers.
pub(crate) struct DevicePool {
    models: Vec<DeviceModel>,
    placement: Placement,
    inner: Mutex<PoolInner>,
    /// Signalled when work arrives or the pool closes (workers wait).
    work: Condvar,
    /// Signalled when a queue drains below its limit (dispatcher waits).
    space: Condvar,
}

/// What a worker receives from [`DevicePool::next`].
pub(crate) struct Assignment {
    pub batch: ChunkBatch,
    /// Predicted service time under the executing worker's model — the
    /// worker reports it back via [`DevicePool::complete`] and the metrics
    /// compare it against the measured time.
    pub predicted_s: f64,
    /// True when the batch came from a sibling's queue.
    pub stolen: bool,
}

impl DevicePool {
    pub fn new(models: Vec<DeviceModel>, placement: Placement) -> Self {
        assert!(!models.is_empty(), "the pool needs at least one device");
        let n = models.len();
        DevicePool {
            models,
            placement,
            inner: Mutex::new(PoolInner {
                queues: (0..n).map(|_| VecDeque::new()).collect(),
                pending_s: vec![0.0; n],
                bias: vec![1.0; n],
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Place `batch` per the pool's [`Placement`] policy — by default on
    /// the device with the earliest predicted completion (pending predicted
    /// time + this batch's predicted time under that device's model) —
    /// blocking while every queue is at its in-flight limit. Ties break
    /// toward the lower device index.
    pub fn dispatch(&self, batch: ChunkBatch) {
        let cost = BatchCost::of(&batch);
        let mut inner = self.inner.lock().unwrap();
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (i, model) in self.models.iter().enumerate() {
                let limit = match self.placement {
                    Placement::EarliestCompletion => model.in_flight_limit,
                    Placement::ShortestQueue => SHORTEST_QUEUE_IN_FLIGHT,
                };
                if inner.queues[i].len() >= limit {
                    continue;
                }
                let score = match self.placement {
                    Placement::EarliestCompletion => {
                        inner.pending_s[i] + inner.bias[i] * model.predict_s(&cost)
                    }
                    Placement::ShortestQueue => inner.queues[i].len() as f64,
                };
                if best.is_none_or(|(_, t)| score < t) {
                    best = Some((i, score));
                }
            }
            if let Some((device, _)) = best {
                let predicted_s = inner.bias[device] * self.models[device].predict_s(&cost);
                inner.pending_s[device] += predicted_s;
                inner.queues[device].push_back(Pending {
                    batch,
                    cost,
                    predicted_s,
                });
                drop(inner);
                self.work.notify_all();
                return;
            }
            inner = self.space.wait(inner).unwrap();
        }
    }

    /// Fetch the next batch for `worker`: its own queue first, then the
    /// sibling with the most predicted pending work (stealing from the
    /// back). A stolen batch is re-priced under the thief's model and its
    /// pending time moves with it. Blocks while the pool is empty; returns
    /// `None` once closed *and* drained.
    pub fn next(&self, worker: usize) -> Option<Assignment> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(p) = inner.queues[worker].pop_front() {
                drop(inner);
                self.space.notify_all();
                return Some(Assignment {
                    batch: p.batch,
                    predicted_s: p.predicted_s,
                    stolen: false,
                });
            }
            let victim = inner
                .queues
                .iter()
                .enumerate()
                .filter(|&(i, q)| i != worker && !q.is_empty())
                .max_by(|&(i, _), &(j, _)| {
                    inner.pending_s[i].total_cmp(&inner.pending_s[j])
                })
                .map(|(i, _)| i);
            if let Some(v) = victim {
                let p = inner.queues[v].pop_back().expect("victim is non-empty");
                inner.pending_s[v] = (inner.pending_s[v] - p.predicted_s).max(0.0);
                let predicted_s = inner.bias[worker] * self.models[worker].predict_s(&p.cost);
                inner.pending_s[worker] += predicted_s;
                drop(inner);
                self.space.notify_all();
                return Some(Assignment {
                    batch: p.batch,
                    predicted_s,
                    stolen: true,
                });
            }
            if inner.closed {
                return None;
            }
            inner = self.work.wait(inner).unwrap();
        }
    }

    /// Retire a finished batch's predicted time from `worker`'s pending
    /// total and fold the measured service time into the device's bias
    /// correction. Called by the worker after running an [`Assignment`].
    pub fn complete(&self, worker: usize, predicted_s: f64, measured_s: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.pending_s[worker] = (inner.pending_s[worker] - predicted_s).max(0.0);
        if predicted_s > 0.0 && measured_s > 0.0 {
            // predicted_s already carries the bias used at dispatch, so the
            // ratio is a multiplicative correction to the current estimate.
            // The step is geometric (ratio^alpha) so over- and
            // under-prediction corrections are symmetric in log space —
            // an arithmetic EWMA walks up 1.3x per step but down only
            // 0.925x, which oscillates over long runs — and the bias is
            // bounded so a burst of clamped ratios cannot run it away
            // from the model.
            let ratio = (measured_s / predicted_s).clamp(0.25, 4.0);
            const ALPHA: f64 = 0.1;
            inner.bias[worker] = (inner.bias[worker] * ratio.powf(ALPHA)).clamp(0.25, 4.0);
        }
    }

    /// Close the pool: queued batches still drain, then workers see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.work.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{BatchJob, BatchKey};
    use crate::cache::{ChunkEncoding, EncodedChunk};
    use cas_offinder::Query;
    use std::sync::Arc;

    fn model(spec: &DeviceSpec) -> DeviceModel {
        DeviceModel::from_spec(spec, 1 << 13, OptLevel::Base)
    }

    fn batch_with(index: usize, scan_len: usize, jobs: usize) -> ChunkBatch {
        ChunkBatch {
            key: BatchKey {
                assembly: "a".into(),
                pattern: b"NGG".to_vec(),
            },
            chunk_index: index,
            chunk: Arc::new(EncodedChunk::encode(
                0,
                "chr1".into(),
                0,
                scan_len,
                &vec![b'A'; scan_len + 3],
                ChunkEncoding::Packed,
            )),
            jobs: (0..jobs)
                .map(|i| BatchJob {
                    id: i as u64,
                    query: Query::new(b"AGG".to_vec(), 1),
                })
                .collect(),
        }
    }

    fn batch(index: usize) -> ChunkBatch {
        batch_with(index, 4, 1)
    }

    #[test]
    fn identical_devices_and_batches_round_robin() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default());
        for i in 0..4 {
            pool.dispatch(batch(i));
        }
        // Equal predictions: earliest-completion placement alternates 0,1,0,1.
        let a = pool.next(0).unwrap();
        assert!(!a.stolen);
        assert_eq!(a.batch.chunk_index, 0);
        assert!(a.predicted_s > 0.0);
        let b = pool.next(1).unwrap();
        assert!(!b.stolen);
        assert_eq!(b.batch.chunk_index, 1);
    }

    #[test]
    fn a_heavy_batch_skips_the_shorter_queue_for_a_faster_device() {
        // Worker 0 = Radeon VII, worker 1 = MI100 (~1.7x the cycle slots).
        let pool = DevicePool::new(
            vec![model(&DeviceSpec::radeon_vii()), model(&DeviceSpec::mi100())],
            Placement::default(),
        );
        // A light batch lands on the faster (empty) MI100.
        pool.dispatch(batch_with(0, 512, 1));
        // The heavy batch sees RVII with the *shorter* (empty) queue, but
        // MI100's queued light batch plus the heavy batch still finishes
        // sooner than the heavy batch alone would on the RVII.
        pool.dispatch(batch_with(1, 8192, 8));
        let first = pool.next(1).unwrap();
        assert!(!first.stolen);
        assert_eq!(first.batch.chunk_index, 0, "light batch went to MI100");
        let second = pool.next(1).unwrap();
        assert!(!second.stolen);
        assert_eq!(
            second.batch.chunk_index, 1,
            "heavy batch also chose MI100 over the empty RVII queue"
        );
        assert!(second.predicted_s > first.predicted_s);
    }

    #[test]
    fn shortest_queue_placement_ignores_device_speed() {
        // The same two batches as the cost-aware test above, under the
        // baseline policy: the light batch ties toward device 0 (the slower
        // Radeon VII) and the heavy batch goes to device 1 purely by count —
        // no batch weight, no device speed.
        let pool = DevicePool::new(
            vec![model(&DeviceSpec::radeon_vii()), model(&DeviceSpec::mi100())],
            Placement::ShortestQueue,
        );
        pool.dispatch(batch_with(0, 512, 1));
        pool.dispatch(batch_with(1, 8192, 8));
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 0);
        assert_eq!(pool.next(1).unwrap().batch.chunk_index, 1);
    }

    #[test]
    fn in_flight_limits_derive_from_occupancy_and_batch_footprint() {
        let spec = DeviceSpec::mi60();
        let small = DeviceModel::from_spec(&spec, 64, OptLevel::Base);
        let large = DeviceModel::from_spec(&spec, 1 << 13, OptLevel::Base);
        assert!(small.in_flight_limit >= large.in_flight_limit);
        assert!(large.in_flight_limit >= 1);
        // A bigger device sustains more in-flight chunks than a smaller one.
        let rvii = DeviceModel::from_spec(&DeviceSpec::radeon_vii(), 1 << 13, OptLevel::Base);
        let mi100 = DeviceModel::from_spec(&DeviceSpec::mi100(), 1 << 13, OptLevel::Base);
        assert!(mi100.in_flight_limit >= rvii.in_flight_limit);
    }

    #[test]
    fn idle_workers_steal_from_the_most_loaded_sibling() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 3], Placement::default());
        for i in 0..4 {
            pool.dispatch(batch(i)); // earliest-completion: 0,1,2,0
        }
        // Worker 2 drains its own then steals from worker 0 (most pending).
        assert!(!pool.next(2).unwrap().stolen);
        let stolen = pool.next(2).unwrap();
        assert!(stolen.stolen);
        assert_eq!(stolen.batch.chunk_index, 3, "steals from the back");
        assert!(stolen.predicted_s > 0.0, "re-priced under the thief's model");
    }

    #[test]
    fn dispatch_blocks_at_the_per_device_in_flight_limit() {
        let mut m = model(&DeviceSpec::mi60());
        m.in_flight_limit = 2;
        let pool = Arc::new(DevicePool::new(vec![m], Placement::default()));
        pool.dispatch(batch(0));
        pool.dispatch(batch(1));
        let p2 = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            p2.dispatch(batch(2)); // must block until next() frees a slot
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "dispatch must be blocked at the limit");
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 0);
        t.join().unwrap();
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 1);
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 2);
    }

    #[test]
    fn completed_batches_release_their_pending_time() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default());
        pool.dispatch(batch(0));
        let a = pool.next(0).unwrap();
        pool.complete(0, a.predicted_s, a.predicted_s);
        // With device 0 idle again, the next identical batch ties and the
        // tie breaks toward device 0 — nothing was left pending.
        pool.dispatch(batch(1));
        assert_eq!(pool.next(0).unwrap().batch.chunk_index, 1);
    }

    #[test]
    fn close_drains_then_terminates() {
        let pool = DevicePool::new(vec![model(&DeviceSpec::mi60()); 2], Placement::default());
        pool.dispatch(batch(0));
        pool.close();
        assert!(pool.next(0).is_some());
        assert!(pool.next(0).is_none());
        assert!(pool.next(1).is_none());
    }
}
