//! # gpu-sim — a deterministic GPU device simulator
//!
//! This crate is the hardware substrate of the workspace's reproduction of
//! *"Experience Migrating OpenCL to SYCL: A Case Study on Searches for
//! Potential Off-Target Sites of Cas9 RNA-Guided Endonucleases on AMD GPUs"*
//! (Jin & Vetter, SOCC 2023). The paper's experiments ran on AMD Radeon
//! VII / MI60 / MI100 GPUs; this crate stands in for that hardware with a
//! functional + first-order-performance model:
//!
//! * **Functional execution.** Kernels ([`kernel::KernelProgram`]) run over
//!   [`NdRange`]s with the full OpenCL/SYCL abstract memory model of the
//!   paper's Fig. 1: global and constant memory ([`DeviceBuffer`]), shared
//!   local memory per work-group ([`kernel::LocalMem`]), private state per
//!   work-item, work-group barriers (structured phases) and device-scope
//!   atomics. Results are bit-exact; data-race-free kernels produce the same
//!   result set in sequential and parallel execution.
//! * **Performance model.** Every access is counted ([`AccessCounters`]);
//!   wavefronts are priced at their slowest lane ([`executor`]); a pseudo-ISA
//!   compiler estimates code bytes and register pressure ([`isa`]); register
//!   pressure determines occupancy ([`occupancy`]); and the timing model
//!   ([`timing`]) converts all of it into simulated seconds on a given
//!   [`DeviceSpec`] (Table VII presets).
//!
//! ## Quickstart
//!
//! ```
//! use gpu_sim::kernel::{KernelProgram, LocalMem};
//! use gpu_sim::{Device, DeviceBuffer, DeviceSpec, ItemCtx, NdRange};
//!
//! struct Saxpy {
//!     a: f32,
//!     x: DeviceBuffer<f32>,
//!     y: DeviceBuffer<f32>,
//! }
//!
//! impl KernelProgram for Saxpy {
//!     type Private = ();
//!     fn name(&self) -> &str {
//!         "saxpy"
//!     }
//!     fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
//!         let i = item.global_id(0);
//!         let v = self.a * self.x.load(item, i) + self.y.load(item, i);
//!         item.ops(2);
//!         self.y.store(item, i, v);
//!     }
//! }
//!
//! let device = Device::new(DeviceSpec::mi100());
//! let x = device.alloc_from_slice(&[1.0f32; 256])?;
//! let y = device.alloc_from_slice(&[2.0f32; 256])?;
//! let report = device.launch(
//!     &Saxpy { a: 3.0, x, y: y.clone() },
//!     NdRange::linear(256, 64),
//! )?;
//! assert_eq!(y.to_vec(), vec![5.0f32; 256]);
//! assert!(report.sim_time_s > 0.0);
//! # Ok::<(), gpu_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
mod clock;
mod counters;
mod device;
mod error;
mod item;
mod local;
mod memory;
mod ndrange;
mod spec;
mod traffic;

pub mod executor;
pub mod isa;
pub mod kernel;
pub mod occupancy;
pub mod profile;
pub mod timing;

pub use clock::SimClock;
pub use counters::AccessCounters;
pub use device::Device;
pub use error::{SimError, SimResult};
pub use executor::{ExecMode, LaunchReport};
pub use item::ItemCtx;
pub use kernel::{KernelProgram, LocalHandle, LocalLayout, LocalMem};
pub use memory::{AddressSpace, AtomicScalar, DeviceBuffer, Scalar};
pub use ndrange::NdRange;
pub use spec::DeviceSpec;
pub use traffic::{TrafficCounters, TrafficSnapshot};
