//! Dynamic access and operation counters.
//!
//! Every memory access and (explicitly annotated) arithmetic operation a
//! kernel performs is counted here. The [timing model](crate::timing)
//! converts these counts, together with the static resource usage from the
//! [pseudo-ISA compiler](crate::isa), into simulated kernel time.

use std::ops::{Add, AddAssign};

/// Counts of dynamic events accumulated while executing a kernel.
///
/// Counters are per-work-item while a kernel runs and are summed across all
/// work-items into the final [`LaunchReport`](crate::executor::LaunchReport).
///
/// # Examples
///
/// ```
/// use gpu_sim::AccessCounters;
///
/// let mut a = AccessCounters::default();
/// a.global_loads = 3;
/// let b = AccessCounters {
///     global_loads: 2,
///     ..AccessCounters::default()
/// };
/// assert_eq!((a + b).global_loads, 5);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessCounters {
    /// Loads from device global memory.
    pub global_loads: u64,
    /// Stores to device global memory.
    pub global_stores: u64,
    /// Bytes loaded from device global memory.
    pub global_load_bytes: u64,
    /// Bytes stored to device global memory.
    pub global_store_bytes: u64,
    /// Loads from constant memory (broadcast, cached).
    pub constant_loads: u64,
    /// Global-memory loads known to hit the L1/L2 cache (re-reads of an
    /// address already loaded by this work-item, e.g. the compiler-emitted
    /// reloads of `loci[i]` in the unoptimized comparer).
    pub global_cached_loads: u64,
    /// Fully coalesced streaming loads: lane `i` reads address `base + i`,
    /// so one transaction serves the wavefront (the finder's reference
    /// reads).
    pub global_coalesced_loads: u64,
    /// Fully coalesced streaming stores: lane `i` writes address `base + i`,
    /// so one write transaction serves the wavefront (the packed finder's
    /// on-device chunk decode).
    pub global_coalesced_stores: u64,
    /// Loads from shared local memory.
    pub local_loads: u64,
    /// Stores to shared local memory.
    pub local_stores: u64,
    /// Device-scope atomic read-modify-write operations.
    pub atomic_ops: u64,
    /// Arithmetic/logic operations explicitly annotated by the kernel via
    /// [`ItemCtx::ops`](crate::item::ItemCtx::ops).
    pub arith_ops: u64,
    /// Work-group barriers encountered.
    pub barriers: u64,
}

impl AccessCounters {
    /// A counter set with every field zero.
    pub const ZERO: AccessCounters = AccessCounters {
        global_loads: 0,
        global_stores: 0,
        global_load_bytes: 0,
        global_store_bytes: 0,
        constant_loads: 0,
        global_cached_loads: 0,
        global_coalesced_loads: 0,
        global_coalesced_stores: 0,
        local_loads: 0,
        local_stores: 0,
        atomic_ops: 0,
        arith_ops: 0,
        barriers: 0,
    };

    /// Total number of global-memory transactions (loads + stores + atomics).
    pub fn global_accesses(&self) -> u64 {
        self.global_loads + self.global_stores + self.atomic_ops
    }

    /// Total bytes moved to or from device global memory.
    pub fn global_bytes(&self) -> u64 {
        self.global_load_bytes + self.global_store_bytes
    }

    /// Total number of shared-local-memory transactions.
    pub fn local_accesses(&self) -> u64 {
        self.local_loads + self.local_stores
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }
}

impl Add for AccessCounters {
    type Output = AccessCounters;

    fn add(self, rhs: AccessCounters) -> AccessCounters {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for AccessCounters {
    fn add_assign(&mut self, rhs: AccessCounters) {
        self.global_loads += rhs.global_loads;
        self.global_stores += rhs.global_stores;
        self.global_load_bytes += rhs.global_load_bytes;
        self.global_store_bytes += rhs.global_store_bytes;
        self.constant_loads += rhs.constant_loads;
        self.global_cached_loads += rhs.global_cached_loads;
        self.global_coalesced_loads += rhs.global_coalesced_loads;
        self.global_coalesced_stores += rhs.global_coalesced_stores;
        self.local_loads += rhs.local_loads;
        self.local_stores += rhs.local_stores;
        self.atomic_ops += rhs.atomic_ops;
        self.arith_ops += rhs.arith_ops;
        self.barriers += rhs.barriers;
    }
}

impl std::iter::Sum for AccessCounters {
    fn sum<I: Iterator<Item = AccessCounters>>(iter: I) -> AccessCounters {
        iter.fold(AccessCounters::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> AccessCounters {
        AccessCounters {
            global_loads: n,
            global_stores: 2 * n,
            global_load_bytes: 4 * n,
            global_store_bytes: 8 * n,
            constant_loads: n,
            global_cached_loads: n,
            global_coalesced_loads: n,
            global_coalesced_stores: n,
            local_loads: 3 * n,
            local_stores: n,
            atomic_ops: n,
            arith_ops: 10 * n,
            barriers: n,
        }
    }

    #[test]
    fn zero_is_identity() {
        let a = sample(7);
        assert_eq!(a + AccessCounters::ZERO, a);
        assert!(AccessCounters::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn add_is_fieldwise() {
        let c = sample(1) + sample(2);
        assert_eq!(c, sample(3));
    }

    #[test]
    fn sum_over_iterator() {
        let total: AccessCounters = (1..=4).map(sample).sum();
        assert_eq!(total, sample(10));
    }

    #[test]
    fn aggregates() {
        let a = sample(1);
        assert_eq!(a.global_accesses(), 1 + 2 + 1);
        assert_eq!(a.global_bytes(), 4 + 8);
        assert_eq!(a.local_accesses(), 3 + 1);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AccessCounters::default(), AccessCounters::ZERO);
    }
}
