//! Occupancy model.
//!
//! Occupancy — "a measure of parallel work that a GPU could perform at a
//! given time on a compute unit" (§IV.B of the paper) — is the number of
//! wavefronts resident per SIMD. It is bounded by the hardware cap (10 on
//! GCN/CDNA), by vector-register pressure, and by shared-local-memory usage.

use crate::isa::ResourceUsage;
use crate::ndrange::NdRange;
use crate::spec::DeviceSpec;

/// What bound the achieved occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OccupancyLimit {
    /// The hardware cap on resident waves per SIMD.
    HardwareCap,
    /// Vector general-purpose register pressure.
    Vgpr,
    /// Shared local memory per compute unit.
    Lds,
}

/// Achieved occupancy of a kernel launch.
///
/// # Examples
///
/// ```
/// use gpu_sim::isa::ResourceUsage;
/// use gpu_sim::occupancy::{occupancy, OccupancyLimit};
/// use gpu_sim::{DeviceSpec, NdRange};
///
/// let spec = DeviceSpec::mi100();
/// let heavy = ResourceUsage { code_bytes: 0, sgprs: 10, vgprs: 82, lds_bytes: 0 };
/// let occ = occupancy(&heavy, &NdRange::linear(1024, 256), &spec);
/// assert_eq!(occ.waves_per_simd, 9);
/// assert_eq!(occ.limit, OccupancyLimit::Vgpr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Occupancy {
    /// Resident wavefronts per SIMD.
    pub waves_per_simd: u32,
    /// Which resource bound it.
    pub limit: OccupancyLimit,
}

impl Occupancy {
    /// Occupancy as a fraction of the hardware maximum.
    pub fn fraction(&self, spec: &DeviceSpec) -> f64 {
        self.waves_per_simd as f64 / spec.max_waves_per_simd as f64
    }
}

/// Compute the occupancy of a kernel with the given static resources and
/// work-group geometry on `spec`.
pub fn occupancy(resources: &ResourceUsage, nd: &NdRange, spec: &DeviceSpec) -> Occupancy {
    let cap = spec.max_waves_per_simd;

    let by_vgpr = (spec.vgpr_budget / resources.vgprs.max(1)).max(1);

    // LDS: a work-group's waves are resident together; the number of groups
    // per CU is bounded by LDS capacity.
    let by_lds = match spec.lds_per_cu_bytes.checked_div(resources.lds_bytes) {
        None => u32::MAX,
        Some(groups) => {
            let groups_per_cu = groups.max(1) as u32;
            let waves_per_group = (nd.group_size() as u32).div_ceil(spec.wavefront).max(1);
            (groups_per_cu * waves_per_group / spec.simds_per_cu).max(1)
        }
    };

    let waves = cap.min(by_vgpr).min(by_lds);
    let limit = if waves == cap {
        OccupancyLimit::HardwareCap
    } else if waves == by_vgpr {
        OccupancyLimit::Vgpr
    } else {
        OccupancyLimit::Lds
    };

    Occupancy {
        waves_per_simd: waves,
        limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(vgprs: u32, lds: u64) -> ResourceUsage {
        ResourceUsage {
            code_bytes: 4000,
            sgprs: 10,
            vgprs,
            lds_bytes: lds,
        }
    }

    fn nd() -> NdRange {
        NdRange::linear(1 << 20, 256)
    }

    #[test]
    fn table_x_occupancy_row() {
        // Table X: VGPR 64/57 -> occupancy 10, VGPR 82 -> occupancy 9.
        let spec = DeviceSpec::mi100();
        for vgprs in [64, 64, 64, 57] {
            assert_eq!(occupancy(&res(vgprs, 184), &nd(), &spec).waves_per_simd, 10);
        }
        let o = occupancy(&res(82, 184), &nd(), &spec);
        assert_eq!(o.waves_per_simd, 9);
        assert_eq!(o.limit, OccupancyLimit::Vgpr);
    }

    #[test]
    fn light_kernel_hits_hardware_cap() {
        let spec = DeviceSpec::mi60();
        let o = occupancy(&res(24, 0), &nd(), &spec);
        assert_eq!(o.waves_per_simd, spec.max_waves_per_simd);
        assert_eq!(o.limit, OccupancyLimit::HardwareCap);
    }

    #[test]
    fn lds_bound_kernel() {
        let spec = DeviceSpec::mi100();
        // 32 KiB per group -> 2 groups/CU, groups of 256 = 4 waves ->
        // 8 waves over 4 SIMDs = 2 waves/SIMD.
        let o = occupancy(&res(24, 32 * 1024), &nd(), &spec);
        assert_eq!(o.waves_per_simd, 2);
        assert_eq!(o.limit, OccupancyLimit::Lds);
    }

    #[test]
    fn occupancy_never_zero() {
        let spec = DeviceSpec::radeon_vii();
        let o = occupancy(&res(4096, 256 * 1024), &nd(), &spec);
        assert!(o.waves_per_simd >= 1);
    }

    #[test]
    fn fraction_is_relative_to_cap() {
        let spec = DeviceSpec::mi100();
        let o = occupancy(&res(82, 0), &nd(), &spec);
        assert!((o.fraction(&spec) - 0.9).abs() < 1e-9);
    }
}
