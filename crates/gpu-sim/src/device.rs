//! The simulated device.

use std::fmt;
use std::sync::Arc;

use crate::error::SimResult;
use crate::executor::{run_launch, ExecMode, LaunchReport};
use crate::kernel::KernelProgram;
use crate::memory::{AddressSpace, AllocationTracker, DeviceBuffer, Scalar};
use crate::ndrange::NdRange;
use crate::spec::DeviceSpec;
use crate::traffic::{TrafficCounters, TrafficSnapshot};

struct DeviceInner {
    spec: DeviceSpec,
    tracker: Arc<AllocationTracker>,
    traffic: Arc<TrafficCounters>,
    mode: ExecMode,
}

/// A simulated GPU.
///
/// A `Device` owns a global-memory capacity (allocations are tracked and
/// [`SimError::OutOfMemory`](crate::SimError::OutOfMemory) is reported when
/// exceeded, which is what forces Cas-OFFinder's chunked processing of
/// genomes) and executes [`KernelProgram`]s over [`NdRange`]s. Cloning a
/// `Device` yields another handle to the same device, as when several
/// command queues target one GPU.
///
/// # Examples
///
/// ```
/// use gpu_sim::{Device, DeviceSpec};
///
/// let device = Device::new(DeviceSpec::radeon_vii());
/// let buf = device.alloc::<u32>(1024)?;
/// assert_eq!(device.mem_used(), 4096);
/// drop(buf);
/// assert_eq!(device.mem_used(), 0);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.inner.spec.name)
            .field("mem_used", &self.mem_used())
            .field("mode", &self.inner.mode)
            .finish()
    }
}

impl Device {
    /// Create a device with the default (parallel) execution mode.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_mode(spec, ExecMode::default())
    }

    /// Create a device with an explicit execution mode.
    /// [`ExecMode::Sequential`] makes launches fully deterministic, including
    /// the order of atomic output compaction.
    pub fn with_mode(spec: DeviceSpec, mode: ExecMode) -> Self {
        let tracker = Arc::new(AllocationTracker::new(spec.global_mem_bytes));
        Device {
            inner: Arc::new(DeviceInner {
                spec,
                tracker,
                traffic: Arc::default(),
                mode,
            }),
        }
    }

    /// The device's static specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.inner.spec
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecMode {
        self.inner.mode
    }

    /// Bytes of device global memory currently allocated.
    pub fn mem_used(&self) -> u64 {
        self.inner.tracker.used()
    }

    /// Bytes of device global memory still available.
    pub fn mem_available(&self) -> u64 {
        self.inner.spec.global_mem_bytes - self.mem_used()
    }

    /// A point-in-time copy of this device's cumulative transfer and launch
    /// counters. All clones of the device (and all buffers allocated from
    /// it) feed the same tallies.
    pub fn traffic(&self) -> TrafficSnapshot {
        self.inner.traffic.snapshot()
    }

    /// Record a host-to-device copy that was avoided because the payload was
    /// already resident on this device (see
    /// [`TrafficCounters::record_h2d_skipped`]).
    pub fn record_h2d_skipped(&self, bytes: u64) {
        self.inner.traffic.record_h2d_skipped(bytes);
    }

    /// Record a kernel launch that was avoided because its output was
    /// already known (see [`TrafficCounters::record_launch_skipped`]).
    pub fn record_launch_skipped(&self) {
        self.inner.traffic.record_launch_skipped();
    }

    /// Allocate a zero-initialized global-memory buffer of `len` elements.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`](crate::SimError::OutOfMemory) when
    /// the device capacity would be exceeded.
    pub fn alloc<T: Scalar>(&self, len: usize) -> SimResult<DeviceBuffer<T>> {
        DeviceBuffer::allocate(
            Arc::clone(&self.inner.tracker),
            Arc::clone(&self.inner.traffic),
            len,
            AddressSpace::Global,
        )
    }

    /// Allocate a global buffer initialized from `data`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`](crate::SimError::OutOfMemory) when
    /// the device capacity would be exceeded.
    pub fn alloc_from_slice<T: Scalar>(&self, data: &[T]) -> SimResult<DeviceBuffer<T>> {
        let buf = self.alloc(data.len())?;
        buf.write_from_host(0, data)
            .expect("freshly allocated buffer must fit its own data");
        Ok(buf)
    }

    /// Allocate a read-only constant-memory buffer of `len` elements.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`](crate::SimError::OutOfMemory) when
    /// the device capacity would be exceeded.
    pub fn alloc_constant<T: Scalar>(&self, len: usize) -> SimResult<DeviceBuffer<T>> {
        DeviceBuffer::allocate(
            Arc::clone(&self.inner.tracker),
            Arc::clone(&self.inner.traffic),
            len,
            AddressSpace::Constant,
        )
    }

    /// Allocate a constant buffer initialized from `data`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`](crate::SimError::OutOfMemory) when
    /// the device capacity would be exceeded.
    pub fn alloc_constant_from_slice<T: Scalar>(&self, data: &[T]) -> SimResult<DeviceBuffer<T>> {
        let buf = self.alloc_constant(data.len())?;
        buf.write_from_host(0, data)
            .expect("freshly allocated buffer must fit its own data");
        Ok(buf)
    }

    /// Execute `kernel` over `nd`, blocking until completion, and report the
    /// dynamic counts, static resources, occupancy and simulated time.
    ///
    /// # Errors
    ///
    /// Returns an error when the ND-range is malformed or the kernel's local
    /// memory request exceeds the device's per-CU capacity.
    pub fn launch<K: KernelProgram>(&self, kernel: &K, nd: NdRange) -> SimResult<LaunchReport> {
        self.inner.traffic.record_launch();
        run_launch(&self.inner.spec, self.inner.mode, kernel, nd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;

    #[test]
    fn clones_share_memory_accounting() {
        let a = Device::new(DeviceSpec::mi60());
        let b = a.clone();
        let buf = a.alloc::<u64>(100).unwrap();
        assert_eq!(b.mem_used(), 800);
        drop(buf);
        assert_eq!(b.mem_used(), 0);
    }

    #[test]
    fn capacity_is_enforced() {
        let spec = DeviceSpec {
            global_mem_bytes: 1024,
            ..DeviceSpec::mi100()
        };
        let d = Device::new(spec);
        let _a = d.alloc::<u8>(1000).unwrap();
        let err = d.alloc::<u8>(100).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
        assert_eq!(d.mem_available(), 24);
    }

    #[test]
    fn constant_buffers_are_constant_space() {
        let d = Device::new(DeviceSpec::mi100());
        let c = d.alloc_constant_from_slice(&[1u8, 2, 3]).unwrap();
        assert_eq!(c.space(), crate::memory::AddressSpace::Constant);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn debug_shows_name() {
        let d = Device::new(DeviceSpec::radeon_vii());
        assert!(format!("{d:?}").contains("Radeon VII"));
    }

    #[test]
    fn traffic_counts_transfers_and_launches() {
        let d = Device::new(DeviceSpec::mi60());
        let before = d.traffic();
        let buf = d.alloc_from_slice(&[1u32, 2, 3, 4]).unwrap();
        let mut out = [0u32; 2];
        buf.read_to_host(0, &mut out).unwrap();
        let t = d.traffic().since(&before);
        assert_eq!(t.h2d_transfers, 1);
        assert_eq!(t.h2d_bytes, 16);
        assert_eq!(t.d2h_transfers, 1);
        assert_eq!(t.d2h_bytes, 8);
        assert_eq!(t.kernel_launches, 0);
    }
}
