//! A std-only atomic cell for device-memory elements.
//!
//! Every [`Scalar`] fits in 64 bits, so each cell stores the element's bit
//! pattern in one `AtomicU64`. Plain `load`/`store` use relaxed ordering —
//! matching the inter-work-group visibility rules documented on
//! [`crate::memory`] — and `fetch_add` is a compare-exchange loop, which
//! keeps the crate free of `unsafe` code and external dependencies.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::memory::{AtomicScalar, Scalar};

pub(crate) struct AtomicCell<T> {
    bits: AtomicU64,
    _elem: PhantomData<T>,
}

impl<T: Scalar> AtomicCell<T> {
    pub(crate) fn new(v: T) -> Self {
        AtomicCell {
            bits: AtomicU64::new(v.to_bits()),
            _elem: PhantomData,
        }
    }

    #[inline]
    pub(crate) fn load(&self) -> T {
        T::from_bits(self.bits.load(Ordering::Relaxed))
    }

    #[inline]
    pub(crate) fn store(&self, v: T) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }
}

impl<T: AtomicScalar> AtomicCell<T> {
    /// Atomically add `v` (wrapping), returning the previous value.
    #[inline]
    pub(crate) fn fetch_add(&self, v: T) -> T {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let old = T::from_bits(cur);
            let new = old.wrapping_add(v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return old,
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_integers_roundtrip() {
        let c = AtomicCell::new(-5i8);
        assert_eq!(c.load(), -5);
        c.store(i8::MIN);
        assert_eq!(c.load(), i8::MIN);

        let c = AtomicCell::new(u16::MAX);
        assert_eq!(c.load(), u16::MAX);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, f32::INFINITY] {
            let c = AtomicCell::new(v);
            assert_eq!(c.load().to_bits(), v.to_bits());
        }
        let c = AtomicCell::new(-2.25f64);
        assert_eq!(c.load(), -2.25);
    }

    #[test]
    fn fetch_add_wraps_like_hardware() {
        let c = AtomicCell::new(u8::MAX);
        assert_eq!(c.fetch_add(1), u8::MAX);
        assert_eq!(c.load(), 0);

        let c = AtomicCell::new(10u32);
        assert_eq!(c.fetch_add(5), 10);
        assert_eq!(c.load(), 15);
    }

    #[test]
    fn concurrent_fetch_adds_are_exact() {
        use std::sync::Arc;
        let c = Arc::new(AtomicCell::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.fetch_add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(), 80_000);
    }
}
