//! First-order GPU timing model.
//!
//! The executor reduces a kernel launch to *wave-cycles*: for every
//! wavefront, the lockstep issue cost of its slowest lane, summed over all
//! waves and phases (see [`crate::executor`]). This module converts
//! wave-cycles into simulated seconds:
//!
//! * a device retires `compute_units x simds_per_cu` wave-instructions per
//!   core cycle when every SIMD has a wave ready;
//! * whether a SIMD has a wave ready depends on occupancy — with fewer
//!   resident waves, global-memory latency is exposed. We model this with a
//!   utilization curve `(occ / occ_max) ^ occ_exponent`, calibrated to the
//!   paper's measured occupancy sensitivity (Table X ↔ Fig. 2: dropping from
//!   10 to 9 waves/SIMD almost doubles the latency-bound comparer's time);
//! * a launch can never beat the device's memory bandwidth: the byte traffic
//!   from the counters imposes `bytes / (peak_bw x efficiency)` as a floor;
//! * every launch and every transfer pays a fixed host-side overhead.

use crate::counters::AccessCounters;
use crate::occupancy::Occupancy;
use crate::spec::DeviceSpec;

/// Per-operation issue costs in core cycles, derived from a [`DeviceSpec`].
///
/// Costs fall in two classes:
///
/// * **lockstep** — ALU, LDS, constant and fully coalesced accesses execute
///   once per wave-instruction for all 64 lanes, so a wave's cost is its
///   slowest *lane's* total;
/// * **serialized** — scattered global loads/stores, cache-hit reloads and
///   atomics become one memory transaction *per lane*, which the memory
///   pipeline processes one after another, so they sum across the lanes of
///   the wave. This is why the comparer's random reference reads dominate
///   the application while the finder's coalesced scan does not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles per annotated arithmetic/logic op (lockstep).
    pub arith: f64,
    /// Cycles per shared-local-memory access (lockstep).
    pub lds: f64,
    /// Cycles per scattered global transaction (serialized per lane).
    pub gmem: f64,
    /// Cycles per cache-hitting reload transaction (serialized per lane).
    pub cached_gmem: f64,
    /// Cycles per fully coalesced streaming load (lockstep).
    pub coalesced_gmem: f64,
    /// Cycles per constant (broadcast-cached) load (lockstep).
    pub constant: f64,
    /// Cycles per device atomic (serialized per lane).
    pub atomic: f64,
    /// Cycles per work-group barrier (lockstep).
    pub barrier: f64,
}

impl CostModel {
    /// Build the cost model for a device.
    pub fn new(spec: &DeviceSpec) -> Self {
        CostModel {
            arith: 1.0,
            lds: spec.lds_cost_cycles as f64,
            gmem: spec.gmem_issue_cycles as f64
                + spec.mem_latency_cycles as f64 / spec.max_waves_per_simd as f64,
            cached_gmem: spec.cached_cost_cycles as f64,
            coalesced_gmem: spec.coalesced_cost_cycles as f64,
            constant: 1.0,
            atomic: spec.atomic_cost_cycles as f64,
            barrier: spec.barrier_cost_cycles as f64,
        }
    }

    /// Lockstep cost of the events in `c`: contributes the wave's
    /// max-over-lanes.
    pub fn lockstep_cycles(&self, c: &AccessCounters) -> f64 {
        c.arith_ops as f64 * self.arith
            + c.local_accesses() as f64 * self.lds
            + c.global_coalesced_loads as f64 * self.coalesced_gmem
            + c.global_coalesced_stores as f64 * self.coalesced_gmem
            + c.constant_loads as f64 * self.constant
            + c.barriers as f64 * self.barrier
    }

    /// Serialized (per-transaction) cost of the events in `c`: sums across
    /// the wave's lanes.
    pub fn serialized_cycles(&self, c: &AccessCounters) -> f64 {
        (c.global_loads + c.global_stores) as f64 * self.gmem
            + c.global_cached_loads as f64 * self.cached_gmem
            + c.atomic_ops as f64 * self.atomic
    }

    /// Total issue cost of the events in `c` (lockstep + serialized), as if
    /// the lane ran alone.
    pub fn cycles(&self, c: &AccessCounters) -> f64 {
        self.lockstep_cycles(c) + self.serialized_cycles(c)
    }
}

/// SIMD utilization as a function of occupancy: `(occ/cap)^occ_exponent`,
/// clamped to `(0, 1]`.
pub fn utilization(occ: &Occupancy, spec: &DeviceSpec) -> f64 {
    occ.fraction(spec).clamp(0.05, 1.0).powf(spec.occ_exponent)
}

/// Convert a launch's aggregate wave-cycles and traffic into simulated
/// seconds.
///
/// `wave_cycles` is the sum over all waves of the slowest lane's issue
/// cycles, as produced by the executor.
pub fn kernel_time_s(
    wave_cycles: f64,
    counters: &AccessCounters,
    occ: &Occupancy,
    spec: &DeviceSpec,
) -> f64 {
    let slots = (spec.compute_units() * spec.simds_per_cu) as f64;
    let compute_s = wave_cycles / (slots * utilization(occ, spec)) / spec.clock_hz();
    let bw_s = counters.global_bytes() as f64 / (spec.peak_bw_bytes_per_s() * spec.bw_efficiency);
    compute_s.max(bw_s) + spec.launch_overhead_s
}

/// Simulated duration of a host<->device transfer of `bytes`.
pub fn transfer_time_s(bytes: u64, spec: &DeviceSpec) -> f64 {
    bytes as f64 / spec.interconnect_bytes_per_s() + spec.transfer_overhead_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::{Occupancy, OccupancyLimit};

    fn occ(waves: u32) -> Occupancy {
        Occupancy {
            waves_per_simd: waves,
            limit: OccupancyLimit::Vgpr,
        }
    }

    #[test]
    fn cost_model_prices_each_event_class() {
        let spec = DeviceSpec::mi100();
        let cm = CostModel::new(&spec);
        let c = AccessCounters {
            arith_ops: 10,
            local_loads: 2,
            global_loads: 1,
            ..AccessCounters::ZERO
        };
        let expect = 10.0 + 2.0 * cm.lds + cm.gmem;
        assert!((cm.cycles(&c) - expect).abs() < 1e-9);
    }

    #[test]
    fn coalesced_stores_are_lockstep_not_serialized() {
        let spec = DeviceSpec::mi100();
        let cm = CostModel::new(&spec);
        let c = AccessCounters {
            global_coalesced_stores: 4,
            ..AccessCounters::ZERO
        };
        assert!((cm.lockstep_cycles(&c) - 4.0 * cm.coalesced_gmem).abs() < 1e-9);
        assert_eq!(cm.serialized_cycles(&c), 0.0);
    }

    #[test]
    fn gmem_cost_includes_unhidden_latency() {
        let spec = DeviceSpec::mi100();
        let cm = CostModel::new(&spec);
        assert!(cm.gmem > spec.gmem_issue_cycles as f64);
    }

    #[test]
    fn full_occupancy_is_full_utilization() {
        let spec = DeviceSpec::mi100();
        assert!((utilization(&occ(10), &spec) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_drop_is_superlinear() {
        // The calibrated curve: 10 -> 9 waves/SIMD costs roughly 1.9x.
        let spec = DeviceSpec::mi100();
        let ratio = utilization(&occ(10), &spec) / utilization(&occ(9), &spec);
        assert!(
            (1.9..=2.3).contains(&ratio),
            "occupancy 10->9 slowdown {ratio:.2} outside the paper's observed band"
        );
    }

    #[test]
    fn compute_time_scales_inversely_with_utilization() {
        let spec = DeviceSpec::mi60();
        let c = AccessCounters::ZERO;
        let fast = kernel_time_s(1e9, &c, &occ(10), &spec);
        let slow = kernel_time_s(1e9, &c, &occ(9), &spec);
        assert!(slow > fast * 1.5);
    }

    #[test]
    fn bandwidth_floor_applies() {
        let spec = DeviceSpec::mi100();
        // Tiny compute, huge traffic: the BW bound must dominate.
        let c = AccessCounters {
            global_load_bytes: 100_000_000_000,
            ..AccessCounters::ZERO
        };
        let t = kernel_time_s(1.0, &c, &occ(10), &spec);
        let bw_floor = 1e11 / (spec.peak_bw_bytes_per_s() * spec.bw_efficiency);
        assert!(t >= bw_floor);
    }

    #[test]
    fn launch_overhead_is_a_floor_for_empty_launches() {
        let spec = DeviceSpec::radeon_vii();
        let t = kernel_time_s(0.0, &AccessCounters::ZERO, &occ(10), &spec);
        assert!((t - spec.launch_overhead_s).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let spec = DeviceSpec::mi100();
        let small = transfer_time_s(1, &spec);
        let big = transfer_time_s(1 << 30, &spec);
        assert!(big > small * 100.0);
        assert!(small >= spec.transfer_overhead_s);
    }

    #[test]
    fn faster_device_is_faster_at_equal_work() {
        let c = AccessCounters::ZERO;
        let rvii = kernel_time_s(1e9, &c, &occ(10), &DeviceSpec::radeon_vii());
        let mi100 = kernel_time_s(1e9, &c, &occ(10), &DeviceSpec::mi100());
        assert!(
            mi100 < rvii,
            "MI100 has 2x the CUs and must beat Radeon VII on pure compute"
        );
    }
}
