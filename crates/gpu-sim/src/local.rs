//! Shared local memory (OpenCL `__local`, SYCL local accessors).
//!
//! A kernel declares the local arrays it needs in a [`LocalLayout`]; the
//! executor instantiates one [`LocalMem`] per work-group. Within a group,
//! work-items of one phase run sequentially (see [`crate::executor`]), so
//! local memory needs no interior mutability — races within a group are
//! impossible by construction, and cross-phase visibility is exactly the
//! barrier guarantee of §II.B of the paper.

use std::any::Any;
use std::fmt;
use std::marker::PhantomData;

use crate::item::ItemCtx;
use crate::memory::Scalar;

/// Typed handle to one local array declared in a [`LocalLayout`].
///
/// Handles are `Copy` and are stored inside the kernel struct, mirroring how
/// an OpenCL kernel receives `__local` pointer arguments.
pub struct LocalHandle<T> {
    slot: usize,
    len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for LocalHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for LocalHandle<T> {}

impl<T> fmt::Debug for LocalHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalHandle")
            .field("slot", &self.slot)
            .field("len", &self.len)
            .finish()
    }
}

impl<T> LocalHandle<T> {
    /// Number of elements in the array this handle refers to.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

type SlotCtor = Box<dyn Fn() -> Box<dyn Any + Send> + Send + Sync>;

/// Declaration of the shared-local-memory arrays a kernel needs per group.
///
/// # Examples
///
/// ```
/// use gpu_sim::kernel::LocalLayout;
///
/// let mut layout = LocalLayout::new();
/// let pat = layout.array::<u8>(46);
/// let idx = layout.array::<i32>(46);
/// assert_eq!(pat.len(), 46);
/// assert_eq!(layout.total_bytes(), 46 + 46 * 4);
/// # let _ = idx;
/// ```
#[derive(Default)]
pub struct LocalLayout {
    ctors: Vec<SlotCtor>,
    bytes: u64,
}

impl fmt::Debug for LocalLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalLayout")
            .field("slots", &self.ctors.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl LocalLayout {
    /// An empty layout (kernel uses no local memory).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a local array of `len` elements of `T`, returning its handle.
    pub fn array<T: Scalar>(&mut self, len: usize) -> LocalHandle<T> {
        let slot = self.ctors.len();
        self.ctors
            .push(Box::new(move || Box::new(vec![T::default(); len]) as _));
        self.bytes += len as u64 * T::BYTES;
        LocalHandle {
            slot,
            len,
            _marker: PhantomData,
        }
    }

    /// Total bytes of local memory the layout occupies per work-group.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of declared arrays.
    pub fn slots(&self) -> usize {
        self.ctors.len()
    }

    pub(crate) fn instantiate(&self) -> LocalMem {
        LocalMem {
            slots: self.ctors.iter().map(|c| c()).collect(),
        }
    }
}

/// One work-group's instantiated shared local memory.
///
/// Access is typed through the [`LocalHandle`]s produced by the layout that
/// created this memory; every access is counted against the issuing
/// work-item.
pub struct LocalMem {
    slots: Vec<Box<dyn Any + Send>>,
}

impl fmt::Debug for LocalMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalMem")
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl LocalMem {
    fn slice<T: Scalar>(&self, h: LocalHandle<T>) -> &Vec<T> {
        self.slots
            .get(h.slot)
            .and_then(|s| s.downcast_ref::<Vec<T>>())
            .expect("local handle does not belong to this kernel's layout")
    }

    fn slice_mut<T: Scalar>(&mut self, h: LocalHandle<T>) -> &mut Vec<T> {
        self.slots
            .get_mut(h.slot)
            .and_then(|s| s.downcast_mut::<Vec<T>>())
            .expect("local handle does not belong to this kernel's layout")
    }

    /// Load element `i` of the local array `h`, counted against `item`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `h` was declared by a different
    /// layout.
    #[inline]
    pub fn load<T: Scalar>(&self, item: &mut ItemCtx, h: LocalHandle<T>, i: usize) -> T {
        item.count_local_load();
        self.slice(h)[i]
    }

    /// Store `v` to element `i` of the local array `h`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `h` was declared by a different
    /// layout.
    #[inline]
    pub fn store<T: Scalar>(&mut self, item: &mut ItemCtx, h: LocalHandle<T>, i: usize, v: T) {
        item.count_local_store();
        self.slice_mut(h)[i] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> ItemCtx {
        ItemCtx::new([0; 3], [0; 3], [0; 3], [1, 1, 1], [1, 1, 1])
    }

    #[test]
    fn layout_accounting() {
        let mut layout = LocalLayout::new();
        let a = layout.array::<u8>(10);
        let b = layout.array::<i32>(5);
        assert_eq!(layout.slots(), 2);
        assert_eq!(layout.total_bytes(), 10 + 20);
        assert_eq!(a.len(), 10);
        assert!(!b.is_empty());
    }

    #[test]
    fn typed_roundtrip_with_counting() {
        let mut layout = LocalLayout::new();
        let a = layout.array::<u8>(4);
        let b = layout.array::<i32>(4);
        let mut mem = layout.instantiate();
        let mut it = item();
        mem.store(&mut it, a, 0, 7u8);
        mem.store(&mut it, b, 3, -1i32);
        assert_eq!(mem.load(&mut it, a, 0), 7);
        assert_eq!(mem.load(&mut it, b, 3), -1);
        assert_eq!(mem.load(&mut it, b, 0), 0, "zero-initialized");
        assert_eq!(it.counters().local_stores, 2);
        assert_eq!(it.counters().local_loads, 3);
    }

    #[test]
    fn each_instantiation_is_fresh() {
        let mut layout = LocalLayout::new();
        let a = layout.array::<u32>(1);
        let mut m1 = layout.instantiate();
        let mut it = item();
        m1.store(&mut it, a, 0, 99);
        let m2 = layout.instantiate();
        assert_eq!(m2.load(&mut it, a, 0), 0);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_handle_panics() {
        let mut l1 = LocalLayout::new();
        let _a = l1.array::<u8>(4);
        let h_i32 = {
            let mut l2 = LocalLayout::new();
            l2.array::<i32>(4)
        };
        let mem = l1.instantiate();
        let mut it = item();
        // Slot 0 exists but holds u8s, not i32s.
        mem.load(&mut it, h_i32, 0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn oob_local_access_panics() {
        let mut layout = LocalLayout::new();
        let a = layout.array::<u8>(2);
        let mem = layout.instantiate();
        mem.load(&mut item(), a, 2);
    }
}
