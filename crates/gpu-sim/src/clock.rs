//! Simulated time.
//!
//! The runtimes layered on the simulator (`opencl-rt`, `sycl-rt`) keep one
//! [`SimClock`] per command queue. Each enqueued command advances the clock
//! by its simulated duration and records start/end timestamps on its event,
//! mirroring OpenCL's profiling counters.

use std::sync::Mutex;

/// A monotonically advancing simulated clock, in seconds.
///
/// # Examples
///
/// ```
/// use gpu_sim::SimClock;
///
/// let clock = SimClock::new();
/// let (start, end) = clock.advance(2.5);
/// assert_eq!((start, end), (0.0, 2.5));
/// assert_eq!(clock.now(), 2.5);
/// ```
#[derive(Debug, Default)]
pub struct SimClock {
    now: Mutex<f64>,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        *self.now.lock().unwrap()
    }

    /// Advance by `duration_s` seconds, returning the interval
    /// `(start, end)` the advancement covered.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is negative or not finite — simulated commands
    /// cannot take negative time.
    pub fn advance(&self, duration_s: f64) -> (f64, f64) {
        assert!(
            duration_s.is_finite() && duration_s >= 0.0,
            "simulated durations must be finite and non-negative, got {duration_s}"
        );
        let mut now = self.now.lock().unwrap();
        let start = *now;
        *now += duration_s;
        (start, *now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        let (s1, e1) = c.advance(1.0);
        let (s2, e2) = c.advance(0.5);
        assert_eq!((s1, e1), (0.0, 1.0));
        assert_eq!((s2, e2), (1.0, 1.5));
        assert_eq!(c.now(), 1.5);
    }

    #[test]
    fn zero_advance_is_allowed() {
        let c = SimClock::new();
        let (s, e) = c.advance(0.0);
        assert_eq!(s, e);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    fn concurrent_advances_do_not_lose_time() {
        use std::sync::Arc;
        let c = Arc::new(SimClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(0.001);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!((c.now() - 8.0).abs() < 1e-9);
    }
}
