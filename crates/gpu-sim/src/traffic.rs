//! Per-device transfer and launch counters.
//!
//! A serving layer scheduling work across a device pool needs proof that its
//! batching actually reduced traffic, so every host↔device copy and every
//! kernel launch on a [`Device`](crate::Device) is tallied here — regardless
//! of which runtime (`opencl-rt` or `sycl-rt`) drove it. The counters are
//! shared by the device and every buffer allocated from it, and stay valid
//! for the device's whole lifetime.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic tallies of device traffic. One per [`Device`](crate::Device).
#[derive(Debug, Default)]
pub struct TrafficCounters {
    kernel_launches: AtomicU64,
    h2d_transfers: AtomicU64,
    h2d_bytes: AtomicU64,
    d2h_transfers: AtomicU64,
    d2h_bytes: AtomicU64,
    h2d_skipped_transfers: AtomicU64,
    h2d_skipped_bytes: AtomicU64,
    kernel_launches_skipped: AtomicU64,
}

impl TrafficCounters {
    pub(crate) fn record_launch(&self) {
        self.kernel_launches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_h2d(&self, bytes: u64) {
        self.h2d_transfers.fetch_add(1, Ordering::Relaxed);
        self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_d2h(&self, bytes: u64) {
        self.d2h_transfers.fetch_add(1, Ordering::Relaxed);
        self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a host-to-device copy that a caller *avoided* because the
    /// payload was already resident on the device. Public (unlike the
    /// recorders above) because the decision to skip is made by higher
    /// layers — a chunk runner reusing a resident buffer — not by the
    /// simulated runtimes themselves.
    pub fn record_h2d_skipped(&self, bytes: u64) {
        self.h2d_skipped_transfers.fetch_add(1, Ordering::Relaxed);
        self.h2d_skipped_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a kernel launch a caller *avoided* because its output was
    /// already known — e.g. a chunk runner serving a finder pass from a
    /// cached candidate list. Public for the same reason as
    /// [`record_h2d_skipped`](Self::record_h2d_skipped): only higher layers
    /// know a launch was elided.
    pub fn record_launch_skipped(&self) {
        self.kernel_launches_skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the tallies. Individual fields are read
    /// relaxed, so a snapshot taken while commands are in flight may tear
    /// across fields; snapshots taken at quiescent points are exact.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            h2d_transfers: self.h2d_transfers.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_transfers: self.d2h_transfers.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            h2d_skipped_transfers: self.h2d_skipped_transfers.load(Ordering::Relaxed),
            h2d_skipped_bytes: self.h2d_skipped_bytes.load(Ordering::Relaxed),
            kernel_launches_skipped: self.kernel_launches_skipped.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of a device's [`TrafficCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Kernel launches executed on the device.
    pub kernel_launches: u64,
    /// Host-to-device copies (buffer writes, including initialized allocs).
    pub h2d_transfers: u64,
    /// Bytes moved host-to-device.
    pub h2d_bytes: u64,
    /// Device-to-host copies (buffer reads).
    pub d2h_transfers: u64,
    /// Bytes moved device-to-host.
    pub d2h_bytes: u64,
    /// Host-to-device copies avoided because the payload was resident.
    pub h2d_skipped_transfers: u64,
    /// Bytes that would have moved host-to-device but did not.
    pub h2d_skipped_bytes: u64,
    /// Kernel launches avoided because their output was already resident
    /// or cached (e.g. finder passes served from a candidate-site cache).
    pub kernel_launches_skipped: u64,
}

impl TrafficSnapshot {
    /// Difference against an earlier snapshot of the same device.
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            kernel_launches: self.kernel_launches - earlier.kernel_launches,
            h2d_transfers: self.h2d_transfers - earlier.h2d_transfers,
            h2d_bytes: self.h2d_bytes - earlier.h2d_bytes,
            d2h_transfers: self.d2h_transfers - earlier.d2h_transfers,
            d2h_bytes: self.d2h_bytes - earlier.d2h_bytes,
            h2d_skipped_transfers: self.h2d_skipped_transfers - earlier.h2d_skipped_transfers,
            h2d_skipped_bytes: self.h2d_skipped_bytes - earlier.h2d_skipped_bytes,
            kernel_launches_skipped: self.kernel_launches_skipped - earlier.kernel_launches_skipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let t = TrafficCounters::default();
        t.record_launch();
        t.record_h2d(100);
        t.record_h2d(50);
        t.record_d2h(8);
        t.record_h2d_skipped(2048);
        t.record_launch_skipped();
        let s = t.snapshot();
        assert_eq!(s.kernel_launches, 1);
        assert_eq!(s.kernel_launches_skipped, 1);
        assert_eq!(s.h2d_transfers, 2);
        assert_eq!(s.h2d_bytes, 150);
        assert_eq!(s.d2h_transfers, 1);
        assert_eq!(s.d2h_bytes, 8);
        assert_eq!(s.h2d_skipped_transfers, 1);
        assert_eq!(s.h2d_skipped_bytes, 2048);
    }

    #[test]
    fn skipped_uploads_do_not_count_as_real_traffic() {
        let t = TrafficCounters::default();
        t.record_h2d_skipped(4096);
        let s = t.snapshot();
        assert_eq!(s.h2d_transfers, 0);
        assert_eq!(s.h2d_bytes, 0);
        assert_eq!(s.h2d_skipped_transfers, 1);
        assert_eq!(s.h2d_skipped_bytes, 4096);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let t = TrafficCounters::default();
        t.record_h2d(10);
        let a = t.snapshot();
        t.record_h2d(30);
        t.record_launch();
        let d = t.snapshot().since(&a);
        assert_eq!(d.h2d_transfers, 1);
        assert_eq!(d.h2d_bytes, 30);
        assert_eq!(d.kernel_launches, 1);
    }
}
