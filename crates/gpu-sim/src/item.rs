//! Per-work-item execution context.

use crate::counters::AccessCounters;

/// The execution context handed to a kernel for one work-item.
///
/// It plays the role of OpenCL's `get_global_id`/`get_local_id`/... built-ins
/// and of the SYCL `nd_item` class: it exposes the work-item's coordinates in
/// the ND-range and accumulates the dynamic [`AccessCounters`] used by the
/// timing model. All memory-access methods on device buffers and local memory
/// take `&mut ItemCtx` so accesses are attributed to the issuing work-item.
///
/// # Examples
///
/// ```
/// use gpu_sim::{Device, DeviceSpec, NdRange};
/// use gpu_sim::kernel::{KernelProgram, LocalLayout};
/// use gpu_sim::{ItemCtx, LocalMem};
///
/// struct Ids;
/// impl KernelProgram for Ids {
///     type Private = ();
///     fn name(&self) -> &str {
///         "ids"
///     }
///     fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
///         let gid = item.global_id(0);
///         let expected = item.group(0) * item.local_range(0) + item.local_id(0);
///         assert_eq!(gid, expected);
///     }
/// }
///
/// let device = Device::new(DeviceSpec::mi100());
/// device.launch(&Ids, NdRange::linear(1024, 256))?;
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ItemCtx {
    global_id: [usize; 3],
    local_id: [usize; 3],
    group_id: [usize; 3],
    global_range: [usize; 3],
    local_range: [usize; 3],
    pub(crate) counters: AccessCounters,
}

impl ItemCtx {
    pub(crate) fn new(
        global_id: [usize; 3],
        local_id: [usize; 3],
        group_id: [usize; 3],
        global_range: [usize; 3],
        local_range: [usize; 3],
    ) -> Self {
        ItemCtx {
            global_id,
            local_id,
            group_id,
            global_range,
            local_range,
            counters: AccessCounters::ZERO,
        }
    }

    /// Global index of this work-item in dimension `dim`
    /// (OpenCL `get_global_id`, SYCL `nd_item::get_global_id`).
    pub fn global_id(&self, dim: usize) -> usize {
        self.global_id[dim]
    }

    /// Index of this work-item within its work-group in dimension `dim`
    /// (OpenCL `get_local_id`, SYCL `nd_item::get_local_id`).
    pub fn local_id(&self, dim: usize) -> usize {
        self.local_id[dim]
    }

    /// Index of this work-item's work-group in dimension `dim`
    /// (OpenCL `get_group_id`, SYCL `nd_item::get_group`).
    pub fn group(&self, dim: usize) -> usize {
        self.group_id[dim]
    }

    /// Total ND-range size in dimension `dim` (OpenCL `get_global_size`).
    pub fn global_range(&self, dim: usize) -> usize {
        self.global_range[dim]
    }

    /// Work-group size in dimension `dim`
    /// (OpenCL `get_local_size`, SYCL `nd_item::get_local_range`).
    pub fn local_range(&self, dim: usize) -> usize {
        self.local_range[dim]
    }

    /// Number of work-groups in dimension `dim` (OpenCL `get_num_groups`).
    pub fn group_range(&self, dim: usize) -> usize {
        self.global_range[dim] / self.local_range[dim]
    }

    /// Linearized global id over all dimensions (row-major, dimension 0
    /// fastest), matching SYCL's `get_global_linear_id`.
    pub fn global_linear_id(&self) -> usize {
        (self.global_id[2] * self.global_range[1] + self.global_id[1]) * self.global_range[0]
            + self.global_id[0]
    }

    /// Linearized local id within the work-group.
    pub fn local_linear_id(&self) -> usize {
        (self.local_id[2] * self.local_range[1] + self.local_id[1]) * self.local_range[0]
            + self.local_id[0]
    }

    /// Record `n` arithmetic/logic operations for the timing model.
    ///
    /// Kernels call this to annotate compute work that has no memory-access
    /// side channel the simulator could observe (comparisons, address
    /// arithmetic, branches).
    pub fn ops(&mut self, n: u64) {
        self.counters.arith_ops += n;
    }

    /// Snapshot of the counters accumulated by this work-item so far.
    pub fn counters(&self) -> AccessCounters {
        self.counters
    }

    pub(crate) fn count_global_load(&mut self, bytes: u64) {
        self.counters.global_loads += 1;
        self.counters.global_load_bytes += bytes;
    }

    pub(crate) fn count_global_store(&mut self, bytes: u64) {
        self.counters.global_stores += 1;
        self.counters.global_store_bytes += bytes;
    }

    pub(crate) fn count_constant_load(&mut self) {
        self.counters.constant_loads += 1;
    }

    pub(crate) fn count_global_cached_load(&mut self) {
        self.counters.global_cached_loads += 1;
    }

    pub(crate) fn count_global_coalesced_load(&mut self, bytes: u64) {
        self.counters.global_coalesced_loads += 1;
        self.counters.global_load_bytes += bytes;
    }

    pub(crate) fn count_global_coalesced_store(&mut self, bytes: u64) {
        self.counters.global_coalesced_stores += 1;
        self.counters.global_store_bytes += bytes;
    }

    pub(crate) fn count_atomic(&mut self, bytes: u64) {
        self.counters.atomic_ops += 1;
        self.counters.global_load_bytes += bytes;
        self.counters.global_store_bytes += bytes;
    }

    pub(crate) fn count_local_load(&mut self) {
        self.counters.local_loads += 1;
    }

    pub(crate) fn count_local_store(&mut self) {
        self.counters.local_stores += 1;
    }

    pub(crate) fn count_barrier(&mut self) {
        self.counters.barriers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ItemCtx {
        ItemCtx::new([5, 1, 0], [1, 1, 0], [1, 0, 0], [16, 2, 1], [4, 2, 1])
    }

    #[test]
    fn coordinate_queries() {
        let c = ctx();
        assert_eq!(c.global_id(0), 5);
        assert_eq!(c.local_id(0), 1);
        assert_eq!(c.group(0), 1);
        assert_eq!(c.global_range(0), 16);
        assert_eq!(c.local_range(0), 4);
        assert_eq!(c.group_range(0), 4);
        assert_eq!(c.group_range(1), 1);
    }

    #[test]
    fn linear_ids() {
        let c = ctx();
        // global: (0*2 + 1) * 16 + 5 = 21; local: (0*2 + 1) * 4 + 1 = 5
        assert_eq!(c.global_linear_id(), 21);
        assert_eq!(c.local_linear_id(), 5);
    }

    #[test]
    fn ops_accumulate() {
        let mut c = ctx();
        c.ops(3);
        c.ops(4);
        assert_eq!(c.counters().arith_ops, 7);
    }

    #[test]
    fn counting_helpers() {
        let mut c = ctx();
        c.count_global_load(4);
        c.count_global_store(2);
        c.count_atomic(4);
        c.count_local_load();
        c.count_local_store();
        c.count_constant_load();
        c.count_barrier();
        let k = c.counters();
        assert_eq!(k.global_loads, 1);
        assert_eq!(k.global_stores, 1);
        assert_eq!(k.global_load_bytes, 4 + 4);
        assert_eq!(k.global_store_bytes, 2 + 4);
        assert_eq!(k.atomic_ops, 1);
        assert_eq!(k.local_loads, 1);
        assert_eq!(k.local_stores, 1);
        assert_eq!(k.constant_loads, 1);
        assert_eq!(k.barriers, 1);
    }
}
