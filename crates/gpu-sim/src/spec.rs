//! Device specifications.
//!
//! The three presets correspond to Table VII of the paper ("Major
//! specifications of the GPUs"). Micro-architectural constants that the paper
//! does not list (wavefront width, SIMDs per compute unit, memory latency,
//! ...) use public GCN/CDNA figures or values calibrated so the simulator's
//! occupancy and timing models reproduce the paper's observed shapes; see
//! `DESIGN.md` §2.

/// Static description of a simulated GPU device.
///
/// The first block of fields mirrors Table VII of the paper; the second block
/// holds micro-architectural model constants.
///
/// # Examples
///
/// ```
/// use gpu_sim::DeviceSpec;
///
/// let mi100 = DeviceSpec::mi100();
/// assert_eq!(mi100.cores, 7680);
/// assert_eq!(mi100.compute_units(), 120);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"MI100"`.
    pub name: &'static str,
    /// Device global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Core (shader) clock in MHz.
    pub gpu_clock_mhz: u32,
    /// Memory clock in MHz.
    pub mem_clock_mhz: u32,
    /// Number of stream processors ("Cores" in Table VII).
    pub cores: u32,
    /// L2 cache size in bytes.
    pub l2_cache_bytes: u64,
    /// Peak global-memory bandwidth in GB/s.
    pub peak_bw_gbs: u32,

    /// Work-items per wavefront (64 on GCN/CDNA).
    pub wavefront: u32,
    /// SIMD units per compute unit (4 on GCN/CDNA).
    pub simds_per_cu: u32,
    /// Hardware cap on waves resident per SIMD (10 on GCN/CDNA).
    pub max_waves_per_simd: u32,
    /// Vector-register budget per SIMD used by the occupancy model.
    pub vgpr_budget: u32,
    /// Shared local memory per compute unit in bytes (64 KiB).
    pub lds_per_cu_bytes: u64,
    /// Average global-memory access latency in core cycles.
    pub mem_latency_cycles: u32,
    /// Cost of a cache-hitting global re-load (vector L1 hit) in cycles,
    /// charged per transaction (serialized across the wave's lanes).
    pub cached_cost_cycles: u32,
    /// Per-lane cost of a fully coalesced streaming load in cycles (one
    /// transaction feeds the whole wavefront).
    pub coalesced_cost_cycles: u32,
    /// Shared local memory access cost in core cycles.
    pub lds_cost_cycles: u32,
    /// Issue cost of a global memory instruction in cycles.
    pub gmem_issue_cycles: u32,
    /// Cost of one device-scope atomic RMW in cycles.
    pub atomic_cost_cycles: u32,
    /// Cost of a work-group barrier in cycles.
    pub barrier_cost_cycles: u32,
    /// Fixed dispatch/teardown cost per work-group in cycles. This is what
    /// penalizes launching many small groups: the OpenCL runtime's default
    /// 64-wide groups create four times as many groups as the SYCL
    /// application's 256-wide ones (§IV.A of the paper).
    pub group_dispatch_cycles: u32,
    /// Exponent of the latency-hiding utilization curve: effective SIMD
    /// utilization is `(occupancy / max_waves_per_simd) ^ occ_exponent`.
    /// Calibrated to the paper's measured occupancy sensitivity (the
    /// occupancy-10 -> 9 transition of Table X costs ~1.9x in Fig. 2 on
    /// these latency-bound kernels).
    pub occ_exponent: f64,
    /// Effective host<->device interconnect bandwidth in GB/s (PCIe 3.0/4.0 x16).
    pub interconnect_gbs: f64,
    /// Fixed host-side cost of launching one kernel, in seconds.
    pub launch_overhead_s: f64,
    /// Fixed host-side cost of one host<->device transfer command, in seconds.
    pub transfer_overhead_s: f64,
    /// Fraction of peak bandwidth achievable by strided kernel traffic.
    pub bw_efficiency: f64,
}

impl DeviceSpec {
    /// Common GCN/CDNA micro-architecture constants shared by the presets.
    const fn gcn_common(
        name: &'static str,
        mem_gb: u64,
        gpu_clock_mhz: u32,
        mem_clock_mhz: u32,
        cores: u32,
        peak_bw_gbs: u32,
        interconnect_gbs: f64,
    ) -> Self {
        DeviceSpec {
            name,
            global_mem_bytes: mem_gb * 1024 * 1024 * 1024,
            gpu_clock_mhz,
            mem_clock_mhz,
            cores,
            l2_cache_bytes: 8 * 1024 * 1024,
            peak_bw_gbs,
            wavefront: 64,
            simds_per_cu: 4,
            max_waves_per_simd: 10,
            vgpr_budget: 768,
            lds_per_cu_bytes: 64 * 1024,
            mem_latency_cycles: 350,
            cached_cost_cycles: 6,
            coalesced_cost_cycles: 3,
            lds_cost_cycles: 2,
            gmem_issue_cycles: 4,
            atomic_cost_cycles: 24,
            barrier_cost_cycles: 32,
            group_dispatch_cycles: 2000,
            occ_exponent: 6.5,
            interconnect_gbs,
            launch_overhead_s: 0.5e-6,
            transfer_overhead_s: 0.2e-6,
            bw_efficiency: 0.70,
        }
    }

    /// AMD Radeon VII (Vega 20, consumer): 16 GB, 1800 MHz core, 3840 cores,
    /// 1024 GB/s peak bandwidth (Table VII, row "RVII").
    pub const fn radeon_vii() -> Self {
        Self::gcn_common("Radeon VII", 16, 1800, 1000, 3840, 1024, 12.0)
    }

    /// AMD Instinct MI60 (Vega 20, server): 32 GB, 1800 MHz core, 4096 cores,
    /// 1024 GB/s peak bandwidth (Table VII, row "MI60").
    pub const fn mi60() -> Self {
        Self::gcn_common("MI60", 32, 1800, 1000, 4096, 1024, 12.0)
    }

    /// AMD Instinct MI100 (CDNA1): 32 GB, 1502 MHz core, 7680 cores,
    /// 1228 GB/s peak bandwidth (Table VII, row "MI100").
    pub const fn mi100() -> Self {
        Self::gcn_common("MI100", 32, 1502, 1200, 7680, 1228, 16.0)
    }

    /// All three paper devices, in the order used by the paper's tables.
    pub fn paper_devices() -> [DeviceSpec; 3] {
        [Self::radeon_vii(), Self::mi60(), Self::mi100()]
    }

    /// Number of compute units (stream processors / wavefront width).
    pub fn compute_units(&self) -> u32 {
        self.cores / self.wavefront
    }

    /// Core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.gpu_clock_mhz as f64 * 1.0e6
    }

    /// Peak global-memory bandwidth in bytes per second.
    pub fn peak_bw_bytes_per_s(&self) -> f64 {
        self.peak_bw_gbs as f64 * 1.0e9
    }

    /// Effective host<->device bandwidth in bytes per second.
    pub fn interconnect_bytes_per_s(&self) -> f64 {
        self.interconnect_gbs * 1.0e9
    }
}

impl Default for DeviceSpec {
    /// Defaults to the MI100, the newest device in the paper's testbed.
    fn default() -> Self {
        Self::mi100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vii_values() {
        let rvii = DeviceSpec::radeon_vii();
        assert_eq!(rvii.global_mem_bytes, 16 << 30);
        assert_eq!(rvii.gpu_clock_mhz, 1800);
        assert_eq!(rvii.mem_clock_mhz, 1000);
        assert_eq!(rvii.cores, 3840);
        assert_eq!(rvii.l2_cache_bytes, 8 << 20);
        assert_eq!(rvii.peak_bw_gbs, 1024);

        let mi60 = DeviceSpec::mi60();
        assert_eq!(mi60.global_mem_bytes, 32 << 30);
        assert_eq!(mi60.cores, 4096);
        assert_eq!(mi60.peak_bw_gbs, 1024);

        let mi100 = DeviceSpec::mi100();
        assert_eq!(mi100.global_mem_bytes, 32 << 30);
        assert_eq!(mi100.gpu_clock_mhz, 1502);
        assert_eq!(mi100.mem_clock_mhz, 1200);
        assert_eq!(mi100.cores, 7680);
        assert_eq!(mi100.peak_bw_gbs, 1228);
    }

    #[test]
    fn compute_unit_counts_match_hardware() {
        assert_eq!(DeviceSpec::radeon_vii().compute_units(), 60);
        assert_eq!(DeviceSpec::mi60().compute_units(), 64);
        assert_eq!(DeviceSpec::mi100().compute_units(), 120);
    }

    #[test]
    fn paper_devices_order() {
        let names: Vec<_> = DeviceSpec::paper_devices()
            .iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names, ["Radeon VII", "MI60", "MI100"]);
    }

    #[test]
    fn default_is_mi100() {
        assert_eq!(DeviceSpec::default().name, "MI100");
    }

    #[test]
    fn derived_rates() {
        let d = DeviceSpec::mi100();
        assert!((d.clock_hz() - 1.502e9).abs() < 1.0);
        assert!((d.peak_bw_bytes_per_s() - 1.228e12).abs() < 1.0);
    }
}
