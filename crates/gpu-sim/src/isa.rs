//! Pseudo-ISA compiler: static resource usage of a kernel.
//!
//! The paper's Table X reports, for each comparer variant, the compiled code
//! length in bytes, the scalar/vector general-purpose register counts, and
//! the resulting occupancy. We cannot run the AMD backend, so this module
//! implements a first-order model of it: a kernel describes its structure in
//! a [`CodeModel`] (how many pointer arguments, whether they are `__restrict`
//! qualified, how local staging is done, how many values are cached in
//! registers, the shape of the compare ladder), and [`compile`] lowers that
//! description to a GCN/CDNA-like instruction budget whose byte size and
//! register pressure follow the same mechanisms the paper describes:
//!
//! * missing `restrict` (fixed by opt1) forces a re-issued reference load in
//!   every arm of the compare ladder, because the compiler cannot prove the
//!   output stores do not alias the inputs;
//! * un-cached global scalars (fixed by opt2) are re-loaded at every use
//!   site (`loci[i]` at all 26 ladder sites, `flag[i]` at its 4 guard sites);
//! * serial local staging (fixed by opt3) needs a guarded scalar copy loop
//!   and keeps seven extra vector registers and twelve scalar registers live
//!   across the body, which costs code (register-recycling moves in the
//!   unrolled ladder) as well as SGPRs/VGPRs;
//! * caching local reads in registers (opt4) deletes `ds_read`+`s_waitcnt`
//!   pairs from the ladder but keeps one VGPR live per cached element.
//!
//! Instruction widths follow the GCN encodings (4-byte VOP2/SOP, 8-byte
//! VOP3/VMEM/SMEM/DS), the `-O3` pattern loop is unrolled twice, and the
//! emission weights are calibrated so the five comparer variants land within
//! a few percent of the paper's Table X values. The model is then
//! *predictive* for every other kernel in the workspace (the finder, the
//! 2-bit variants, ...).

use std::fmt;

/// How a kernel stages data from global memory into shared local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Staging {
    /// No local staging.
    #[default]
    None,
    /// The first work-item of each group copies everything in a scalar loop
    /// (the baseline comparer, Listing 1 lines 2–7).
    Serial,
    /// All work-items of the group cooperate in a strided copy (opt3).
    Parallel,
}

/// Structural description of a kernel for the pseudo-ISA compiler.
///
/// Fields default to an "empty kernel"; builders set only what applies.
///
/// # Examples
///
/// ```
/// use gpu_sim::isa::{compile, CodeModel, Staging};
///
/// let model = CodeModel::new("comparer")
///     .pointer_args(10)
///     .scalar_args(3)
///     .staging(Staging::Serial)
///     .staged_arrays(2)
///     .guarded_blocks(2)
///     .ladder_arms(13);
/// let resources = compile(&model);
/// assert!(resources.code_bytes > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CodeModel {
    name: String,
    pointer_args: u32,
    scalar_args: u32,
    noalias: bool,
    cached_global_scalars: u32,
    global_scalar_use_sites: u32,
    staging: Staging,
    staged_arrays: u32,
    guarded_blocks: u32,
    ladder_arms: u32,
    cached_local_regs: u32,
    atomic_output: bool,
    extra_valu: u32,
    folded_pattern: u32,
}

impl CodeModel {
    /// A fresh model for the kernel called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CodeModel {
            name: name.into(),
            pointer_args: 0,
            scalar_args: 0,
            noalias: false,
            cached_global_scalars: 0,
            global_scalar_use_sites: 0,
            staging: Staging::None,
            staged_arrays: 0,
            guarded_blocks: 0,
            ladder_arms: 0,
            cached_local_regs: 0,
            atomic_output: false,
            extra_valu: 0,
            folded_pattern: 0,
        }
    }

    /// Kernel name the model describes.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pointer (buffer) kernel arguments.
    pub fn pointer_args(mut self, n: u32) -> Self {
        self.pointer_args = n;
        self
    }

    /// Number of scalar kernel arguments.
    pub fn scalar_args(mut self, n: u32) -> Self {
        self.scalar_args = n;
        self
    }

    /// Whether pointer arguments carry `__restrict` (opt1).
    pub fn noalias(mut self, yes: bool) -> Self {
        self.noalias = yes;
        self
    }

    /// Number of per-item global scalars kept in registers (opt2), e.g.
    /// `loci[i]` and `flag[i]` in the comparer.
    pub fn cached_global_scalars(mut self, n: u32) -> Self {
        self.cached_global_scalars = n;
        self
    }

    /// Number of code sites that *use* those global scalars. When the
    /// scalars are not cached, each site re-loads from global memory.
    pub fn global_scalar_use_sites(mut self, n: u32) -> Self {
        self.global_scalar_use_sites = n;
        self
    }

    /// Local staging strategy.
    pub fn staging(mut self, s: Staging) -> Self {
        self.staging = s;
        self
    }

    /// Number of arrays staged into local memory.
    pub fn staged_arrays(mut self, n: u32) -> Self {
        self.staged_arrays = n;
        self
    }

    /// Number of flag-guarded strand blocks (2 in the comparer).
    pub fn guarded_blocks(mut self, n: u32) -> Self {
        self.guarded_blocks = n;
        self
    }

    /// Number of arms in the IUPAC compare ladder (13 in Listing 1).
    pub fn ladder_arms(mut self, n: u32) -> Self {
        self.ladder_arms = n;
        self
    }

    /// Number of local-memory elements cached in registers across the loop
    /// body (opt4).
    pub fn cached_local_regs(mut self, n: u32) -> Self {
        self.cached_local_regs = n;
        self
    }

    /// Whether the kernel compacts output with a device atomic.
    pub fn atomic_output(mut self, yes: bool) -> Self {
        self.atomic_output = yes;
        self
    }

    /// Additional plain vector-ALU instructions not covered by the
    /// structural fields (used by non-comparer kernels).
    pub fn extra_valu(mut self, n: u32) -> Self {
        self.extra_valu = n;
        self
    }

    /// Number of pattern positions constant-folded into the kernel as
    /// immediate operands (JIT specialization). When non-zero, each guarded
    /// block lowers to a fully-unrolled compare body instead of the
    /// staged-ladder loop: one immediate compare per position (no pattern
    /// loads, no `ds_read` sites, no loop bookkeeping), a coalesced
    /// reference-window load every four positions, and a literal-threshold
    /// early exit every eight. `ladder_arms`, `staging` and
    /// `cached_local_regs` normally stay zero on folded models — the ladder
    /// is what folding deletes.
    pub fn folded_pattern(mut self, positions: u32) -> Self {
        self.folded_pattern = positions;
        self
    }
}

/// Static resource usage of a compiled kernel — one column of the paper's
/// Table X, before the occupancy row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceUsage {
    /// Total instruction bytes ("Code length").
    pub code_bytes: u32,
    /// Scalar general-purpose registers.
    pub sgprs: u32,
    /// Vector general-purpose registers.
    pub vgprs: u32,
    /// Shared local memory bytes per work-group (filled in at launch).
    pub lds_bytes: u64,
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} B, {} SGPRs, {} VGPRs, {} B LDS",
            self.code_bytes, self.sgprs, self.vgprs, self.lds_bytes
        )
    }
}

/// Instruction classes of the pseudo-ISA, following the GCN encoding
/// families (which determine the byte widths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Scalar ALU (SOP1/SOP2), 4 bytes.
    Salu,
    /// Vector ALU, VOP2 encoding, 4 bytes.
    Valu,
    /// Vector ALU, VOP3 encoding, 8 bytes.
    Vop3,
    /// Control flow (SOPP), 4 bytes.
    Branch,
    /// Global/flat memory (FLAT/GLOBAL), 8 bytes.
    Vmem,
    /// Scalar memory (S_LOAD), 8 bytes.
    Smem,
    /// Shared local memory (DS), 8 bytes.
    Lds,
    /// `s_waitcnt`, 4 bytes.
    Wait,
}

impl InstrClass {
    /// Encoded width in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            InstrClass::Salu | InstrClass::Valu | InstrClass::Branch | InstrClass::Wait => 4,
            InstrClass::Vop3 | InstrClass::Vmem | InstrClass::Smem | InstrClass::Lds => 8,
        }
    }
}

/// One emitted pseudo-instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instr {
    /// Mnemonic with operand sketch, e.g. `"ds_read_u8 v5, v4"`.
    pub text: String,
    /// Encoding class (determines the byte width).
    pub class: InstrClass,
}

impl Instr {
    /// Encoded width in bytes.
    pub fn bytes(&self) -> u32 {
        self.class.bytes()
    }
}

/// A compiled pseudo-program: the instruction stream grouped into labeled
/// sections, plus the derived [`ResourceUsage`].
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    sections: Vec<(String, Vec<Instr>)>,
    resources: ResourceUsage,
}

impl Program {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The labeled sections, in program order.
    pub fn sections(&self) -> &[(String, Vec<Instr>)] {
        &self.sections
    }

    /// Total instruction count.
    pub fn instruction_count(&self) -> usize {
        self.sections.iter().map(|(_, v)| v.len()).sum()
    }

    /// Static resources (code bytes derived from the stream).
    pub fn resources(&self) -> ResourceUsage {
        self.resources
    }

    /// Render a `rocobjdump`-style listing with section labels, byte
    /// offsets and widths.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "; kernel {} — {} instructions, {} bytes, {} SGPRs, {} VGPRs\n",
            self.name,
            self.instruction_count(),
            self.resources.code_bytes,
            self.resources.sgprs,
            self.resources.vgprs
        ));
        let mut offset = 0u32;
        for (label, instrs) in &self.sections {
            out.push_str(&format!("{label}:\n"));
            for i in instrs {
                out.push_str(&format!("  {offset:#07x}  {:<44} ; {}B\n", i.text, i.bytes()));
                offset += i.bytes();
            }
        }
        out
    }
}

/// Builds the instruction stream section by section.
struct Emitter {
    sections: Vec<(String, Vec<Instr>)>,
}

impl Emitter {
    fn new() -> Self {
        Emitter {
            sections: Vec::new(),
        }
    }

    fn section(&mut self, label: impl Into<String>) {
        self.sections.push((label.into(), Vec::new()));
    }

    fn emit(&mut self, class: InstrClass, text: impl Into<String>) {
        self.sections
            .last_mut()
            .expect("emit before any section")
            .1
            .push(Instr {
                text: text.into(),
                class,
            });
    }

    fn salu(&mut self, t: impl Into<String>) {
        self.emit(InstrClass::Salu, t);
    }
    fn valu(&mut self, t: impl Into<String>) {
        self.emit(InstrClass::Valu, t);
    }
    fn vop3(&mut self, t: impl Into<String>) {
        self.emit(InstrClass::Vop3, t);
    }
    fn branch(&mut self, t: impl Into<String>) {
        self.emit(InstrClass::Branch, t);
    }
    fn vmem(&mut self, t: impl Into<String>) {
        self.emit(InstrClass::Vmem, t);
    }
    fn smem(&mut self, t: impl Into<String>) {
        self.emit(InstrClass::Smem, t);
    }
    fn lds(&mut self, t: impl Into<String>) {
        self.emit(InstrClass::Lds, t);
    }
    fn wait(&mut self) {
        self.emit(InstrClass::Wait, "s_waitcnt vmcnt(0) lgkmcnt(0)");
    }

    fn total_bytes(&self) -> u32 {
        self.sections
            .iter()
            .flat_map(|(_, v)| v.iter())
            .map(Instr::bytes)
            .sum()
    }

    /// A `ds_read` + waitcnt + register move: one shared-local-memory read
    /// site (16 bytes, the cost opt4 deletes from the ladder).
    fn lds_site(&mut self, what: &str) {
        self.lds(format!("ds_read_u8 v_tmp, {what}"));
        self.wait();
        self.valu("v_mov_b32 v_val, v_tmp");
    }
}

/// Lower a [`CodeModel`] to a full pseudo-program.
///
/// The emission walks the kernel skeleton — prologue, staging, barrier,
/// guarded strand blocks with the (twice-unrolled) compare ladder, output
/// compaction, epilogue — and adds the aliasing/reload overheads the real
/// compiler emits for the un-optimized variants (see module docs).
pub fn compile_program(model: &CodeModel) -> Program {
    let m = model;
    let mut e = Emitter::new();

    // --- Prologue: argument descriptors + id computation. -------------------
    e.section("prologue");
    for i in 0..m.pointer_args {
        e.smem(format!("s_load_dwordx2 s[{}:{}], kernarg, ptr{}", 2 * i, 2 * i + 1, i));
    }
    for i in 0..m.scalar_args {
        e.smem(format!("s_load_dword s_arg{i}, kernarg"));
    }
    for _ in 0..6 {
        e.valu("v_mad_u32_u24 v_gid, s_group, s_lsize, v_lid");
    }
    e.salu("s_mov_b32 s_exec_save, exec");
    e.salu("s_mov_b64 s_base, s[0:1]");

    // --- Local staging + barrier. --------------------------------------------
    match m.staging {
        Staging::None => {}
        Staging::Serial => {
            e.section("staging_serial");
            e.salu("s_cmp_eq_u32 s_lid, 0");
            e.salu("s_and_saveexec_b64 s_save, vcc");
            e.branch("s_cbranch_execz .Lbarrier");
            e.salu("s_mov_b32 s_k, 0");
            e.salu("s_add_u32 s_k, s_k, 4");
            e.salu("s_cmp_lt_u32 s_k, s_twoplen");
            e.branch("s_cbranch_scc1 .Lcopy");
            for a in 0..m.staged_arrays {
                for u in 0..4 {
                    e.vmem(format!("global_load_ubyte v_c, v_addr, s_comp{a} ; unroll {u}"));
                    e.wait();
                    e.lds(format!("ds_write_b8 v_laddr, v_c ; array {a}"));
                    e.valu("v_add_u32 v_addr, v_addr, 1");
                    e.valu("v_add_u32 v_laddr, v_laddr, 1");
                }
            }
            e.branch("s_barrier");
        }
        Staging::Parallel => {
            e.section("staging_parallel");
            e.salu("s_cmp_lt_u32 s_lid, s_twoplen");
            e.branch("s_cbranch_scc0 .Lbarrier");
            for a in 0..m.staged_arrays {
                e.vmem(format!("global_load_ubyte v_c, v_lid, s_comp{a}"));
                e.wait();
                e.lds(format!("ds_write_b8 v_lid, v_c ; array {a}"));
                e.valu("v_add_u32 v_laddr, v_lid, s_plen");
            }
            e.branch("s_barrier");
        }
    }

    // --- Cached scalars: one load + move each at function entry (opt2). -----
    if m.cached_global_scalars > 0 {
        e.section("register_cached_scalars");
        for i in 0..m.cached_global_scalars {
            e.vmem(format!("global_load_dword v_scalar{i}, v_gid, s_base"));
            e.wait();
            e.valu(format!("v_mov_b32 v_keep{i}, v_scalar{i}"));
        }
    }

    // --- opt4 caching prologue: batched ds_reads into registers. ------------
    if m.cached_local_regs > 0 {
        e.section("register_cached_pattern");
        for i in 0..m.cached_local_regs.div_ceil(2) {
            e.lds(format!("ds_read2_b32 v[{}:{}], v_laddr", 40 + 2 * i, 41 + 2 * i));
            e.valu(format!("v_mov_b32 v_pat{i}, v_tmp"));
        }
    }

    // --- Guarded strand blocks. ----------------------------------------------
    for b in 0..m.guarded_blocks {
        e.section(format!("strand_block_{b}"));
        // Flag guard.
        e.salu("s_cmp_eq_u32 s_flag, 0");
        e.salu(format!("s_cmp_eq_u32 s_flag, {}", b + 1));
        e.salu("s_or_b64 vcc, scc0, scc1");
        e.branch("s_cbranch_vccz .Lnext_block");
        e.branch("s_cbranch_execz .Lnext_block");

        if m.folded_pattern > 0 {
            // Constant-folded compare body: the per-position base-set masks
            // are immediate operands, the known pattern length unrolls the
            // loop away entirely, and the folded mismatch threshold is a
            // literal early-exit trip point. No pattern-buffer loads, no
            // `ds_read` sites, no loop bookkeeping.
            e.salu("s_mov_b32 s_mm, 0 ; folded body");
            for p in 0..m.folded_pattern {
                if p % 4 == 0 {
                    e.vmem(format!("global_load_dword v_win, v_ref, s_chr ; window +{p}"));
                    e.wait();
                }
                e.vop3(format!("v_cmp_class_u8 vcc, v_win, lit_mask{p} ; folded position {p}"));
                e.valu("v_addc_u32 v_mm, v_mm, 0");
                if p % 8 == 7 {
                    e.branch("s_cbranch_vccnz .Lfolded_exit ; literal threshold trip");
                }
            }
            e.valu("v_cmp_gt_u32 vcc, v_mm, lit_threshold");
            e.branch("s_cbranch_vccnz .Lnext_block");
            if m.atomic_output {
                e.vmem("global_atomic_add v_slot, v_one, s_entrycount glc");
                e.wait();
                e.vmem("global_store_short v_slot, v_mm, s_mm_count");
                e.valu("v_lshlrev_b32 v_off, 1, v_slot");
                e.vmem("global_store_byte v_slot, v_dir, s_direction");
                e.valu("v_mov_b32 v_dir, lit_plus");
                e.vmem("global_store_dword v_slot, v_loci, s_mm_loci");
                e.valu("v_lshlrev_b32 v_off, 2, v_slot");
                e.salu("s_mov_b64 s_store_base, s[8:9]");
                e.salu("s_mov_b64 s_store_base2, s[10:11]");
            }
            continue;
        }

        // Mismatch loop control.
        e.salu("s_mov_b32 s_j, 0");
        e.salu("s_mov_b32 s_mm, 0");
        e.salu("s_add_u32 s_j, s_j, 2 ; unrolled by 2");
        e.salu("s_cmp_lt_u32 s_j, s_plen");
        e.branch("s_cbranch_scc1 .Lloop");
        e.branch("s_cbranch_scc0 .Lthreshold");

        for u in 0..UNROLL {
            // comp_index load + -1 sentinel check.
            e.lds_site(&format!("l_comp_index[j+{u}]"));
            e.valu("v_cmp_lt_i32 vcc, v_k, 0");
            e.valu("v_mov_b32 v_kidx, v_k");
            e.valu("v_add_u32 v_ref, v_loci, v_k");
            e.branch("s_cbranch_vccnz .Lloop_exit");

            for arm in 0..m.ladder_arms {
                if m.cached_local_regs == 0 {
                    e.lds_site("l_comp[k]");
                }
                // The 56-byte VOP3 compare/select ladder arm.
                e.vop3(format!("v_cmp_eq_u32 s[30:31], v_pat, {} ; arm {arm}", LADDER_NAMES[arm as usize % LADDER_NAMES.len()]));
                e.vop3("v_cmp_eq_u32 s[32:33], v_chr, lit0");
                e.vop3("v_cmp_eq_u32 s[34:35], v_chr, lit1");
                e.vop3("v_cmp_ne_u32 s[36:37], v_chr, v_pat");
                e.vop3("v_cndmask_b32 v_hit, 0, 1, s[32:33]");
                e.vop3("v_cndmask_b32 v_hit, v_hit, 1, s[34:35]");
                e.valu("v_or_b32 v_mmflag, v_mmflag, v_hit");
                e.valu("v_and_b32 v_mmflag, v_mmflag, v_armmask");
                if m.staging == Staging::Serial {
                    // Register-recycling moves forced by the staging loop's
                    // extra live registers.
                    e.vop3("v_mov_b32_e64 v_spill, v_recycle");
                    e.vop3("v_mov_b32_e64 v_recycle, v_spill");
                }
            }
            // Reference base load shared by the arms of this copy.
            e.vmem("global_load_ubyte v_chr, v_ref, s_chr");
            e.wait();
            e.wait();
            e.valu("v_mov_b32 v_chr_keep, v_chr");
            // Mismatch counter update + threshold break.
            e.valu("v_add_u32 v_mm, v_mm, v_mmflag");
            e.valu("v_cmp_gt_u32 vcc, v_mm, s_threshold");
            e.valu("v_mov_b32 v_mm_keep, v_mm");
            e.valu("v_nop ; scheduler slot");
            e.branch("s_cbranch_vccnz .Lloop_exit");
            e.branch("s_branch .Lloop");
        }

        // Without restrict: the reference load is re-issued in every arm.
        if !m.noalias {
            for arm in 0..m.ladder_arms {
                e.vmem(format!("global_load_ubyte v_chr, v_ref, s_chr ; alias reissue, arm {arm}"));
            }
            e.salu("s_mov_b32 s_alias_guard, 1");
        }

        if m.atomic_output {
            e.vmem("global_atomic_add v_slot, v_one, s_entrycount glc");
            e.wait();
            e.vmem("global_store_short v_slot, v_mm, s_mm_count");
            e.valu("v_lshlrev_b32 v_off, 1, v_slot");
            e.vmem("global_store_byte v_slot, v_dir, s_direction");
            e.valu("v_mov_b32 v_dir, lit_plus");
            e.vmem("global_store_dword v_slot, v_loci, s_mm_loci");
            e.valu("v_lshlrev_b32 v_off, 2, v_slot");
            e.salu("s_mov_b64 s_store_base, s[8:9]");
            e.salu("s_mov_b64 s_store_base2, s[10:11]");
        }
    }

    // --- Un-cached global scalars: a reload at every use site. ---------------
    if m.cached_global_scalars == 0 && m.global_scalar_use_sites > 0 {
        e.section("scalar_reloads");
        for i in 0..m.global_scalar_use_sites {
            e.vmem(format!("global_load_dword v_loci, v_gid, s_loci ; use site {i}"));
            e.wait();
            e.valu("v_mov_b32 v_addr, v_loci");
        }
    }

    if m.extra_valu > 0 {
        e.section("body");
        for _ in 0..m.extra_valu {
            e.valu("v_alu_op v_d, v_a, v_b");
        }
    }

    e.section("epilogue");
    e.salu("s_waitcnt_vscnt null, 0");
    e.salu("s_nop 0");
    e.salu("s_endpgm");

    // --- Registers (see module docs for the mechanisms). ---------------------
    let mut vgprs = 34; // ids, loop state, mismatch state, output temps
    vgprs += m.pointer_args; // one live address temporary per buffer
    vgprs += m.ladder_arms.min(16); // ladder temporaries (reused)
    if m.staging == Staging::Serial {
        vgprs += 7; // copy-loop temporaries pinned across the body
    }
    vgprs += m.cached_local_regs;

    let mut sgprs = 6 + m.scalar_args.div_ceil(2) * 2;
    if m.staging == Staging::Serial {
        sgprs += 12; // staging loop counters + extra buffer descriptors
    }

    let resources = ResourceUsage {
        code_bytes: e.total_bytes(),
        sgprs,
        vgprs,
        lds_bytes: 0,
    };
    Program {
        name: m.name.clone(),
        sections: e.sections,
        resources,
    }
}

/// Names used in the disassembly of the ladder arms.
const LADDER_NAMES: [&str; 13] = [
    "lit_R", "lit_Y", "lit_M", "lit_W", "lit_K", "lit_S", "lit_H", "lit_B", "lit_V", "lit_D",
    "lit_G", "lit_C", "lit_T",
];

/// `-O3` unroll factor of the pattern-comparison loop.
const UNROLL: u32 = 2;

/// Lower a [`CodeModel`] to estimated static resources (the Table X
/// numbers). Equivalent to `compile_program(model).resources()`.
pub fn compile(model: &CodeModel) -> ResourceUsage {
    compile_program(model).resources()
}

/// A generic fallback model for kernels that do not describe themselves:
/// small, register-light, no staging.
pub fn generic_model(name: &str) -> CodeModel {
    CodeModel::new(name)
        .pointer_args(4)
        .scalar_args(2)
        .extra_valu(40)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The five comparer variants as `cas-offinder` describes them; kept in
    /// sync with `cas_offinder::kernels::comparer` by cross-crate tests.
    fn comparer_variant(opt: u32) -> CodeModel {
        let mut m = CodeModel::new(format!("comparer-opt{opt}"))
            .pointer_args(10)
            .scalar_args(3)
            .staged_arrays(2)
            .guarded_blocks(2)
            .ladder_arms(13)
            .global_scalar_use_sites(30)
            .atomic_output(true)
            .staging(Staging::Serial);
        if opt >= 1 {
            m = m.noalias(true);
        }
        if opt >= 2 {
            m = m.cached_global_scalars(2);
        }
        if opt >= 3 {
            m = m.staging(Staging::Parallel);
        }
        if opt >= 4 {
            m = m.cached_local_regs(25);
        }
        m
    }

    #[test]
    fn code_length_decreases_monotonically_like_table_x() {
        let sizes: Vec<u32> = (0..=4)
            .map(|o| compile(&comparer_variant(o)).code_bytes)
            .collect();
        for w in sizes.windows(2) {
            assert!(
                w[1] < w[0],
                "code length must shrink with each optimization: {sizes:?}"
            );
        }
    }

    #[test]
    fn register_movement_matches_table_x() {
        let res: Vec<ResourceUsage> = (0..=4).map(|o| compile(&comparer_variant(o))).collect();
        // Table X: VGPRs 64,64,64,57,82 — constant through opt2, drop at
        // opt3, jump at opt4.
        assert_eq!(res[0].vgprs, res[1].vgprs);
        assert_eq!(res[1].vgprs, res[2].vgprs);
        assert!(res[3].vgprs < res[2].vgprs);
        assert!(res[4].vgprs > res[0].vgprs);
        // Table X: SGPRs 22,22,22,10,10.
        assert_eq!(res[0].sgprs, res[2].sgprs);
        assert!(res[3].sgprs < res[2].sgprs);
        assert_eq!(res[3].sgprs, res[4].sgprs);
    }

    #[test]
    fn exact_register_counts_for_comparer() {
        let res: Vec<ResourceUsage> = (0..=4).map(|o| compile(&comparer_variant(o))).collect();
        assert_eq!(
            res.iter().map(|r| r.vgprs).collect::<Vec<_>>(),
            vec![64, 64, 64, 57, 82],
            "VGPR model must reproduce Table X"
        );
        assert_eq!(
            res.iter().map(|r| r.sgprs).collect::<Vec<_>>(),
            vec![22, 22, 22, 10, 10],
            "SGPR model must reproduce Table X"
        );
    }

    #[test]
    fn code_bytes_within_tolerance_of_table_x() {
        let paper = [6064u32, 5852, 5408, 4408, 3660];
        for (opt, &expect) in paper.iter().enumerate() {
            let got = compile(&comparer_variant(opt as u32)).code_bytes;
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(
                err < 0.10,
                "opt{opt}: modeled {got} B vs paper {expect} B ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn program_stream_accounts_for_every_byte() {
        let program = compile_program(&comparer_variant(0));
        let from_stream: u32 = program
            .sections()
            .iter()
            .flat_map(|(_, v)| v.iter())
            .map(Instr::bytes)
            .sum();
        assert_eq!(from_stream, program.resources().code_bytes);
        assert_eq!(program.resources(), compile(&comparer_variant(0)));
        assert!(program.instruction_count() > 500);
        assert_eq!(program.name(), "comparer-opt0");
    }

    #[test]
    fn disassembly_is_well_formed() {
        let program = compile_program(&comparer_variant(3));
        let text = program.disassemble();
        assert!(text.starts_with("; kernel comparer-opt3"));
        assert!(text.contains("staging_parallel:"));
        assert!(text.contains("strand_block_0:"));
        assert!(text.contains("strand_block_1:"));
        assert!(text.contains("epilogue:"));
        assert!(text.contains("global_atomic_add"));
        assert!(text.contains("ds_read_u8"));
        // One listing line per instruction plus section labels + header.
        let lines = text.lines().count();
        assert_eq!(
            lines,
            1 + program.sections().len() + program.instruction_count()
        );
    }

    #[test]
    fn opt_variants_change_the_stream_structure() {
        let base = compile_program(&comparer_variant(0)).disassemble();
        let opt1 = compile_program(&comparer_variant(1)).disassemble();
        let opt2 = compile_program(&comparer_variant(2)).disassemble();
        let opt4 = compile_program(&comparer_variant(4)).disassemble();
        assert!(base.contains("alias reissue"));
        assert!(!opt1.contains("alias reissue"), "restrict removes reissues");
        assert!(base.contains("scalar_reloads:"));
        assert!(!opt2.contains("scalar_reloads:"));
        assert!(opt2.contains("register_cached_scalars:"));
        assert!(base.contains("staging_serial:"));
        assert!(opt4.contains("staging_parallel:"));
        assert!(opt4.contains("register_cached_pattern:"));
    }

    #[test]
    fn instr_class_widths_follow_gcn() {
        assert_eq!(InstrClass::Salu.bytes(), 4);
        assert_eq!(InstrClass::Vop3.bytes(), 8);
        assert_eq!(InstrClass::Vmem.bytes(), 8);
        assert_eq!(InstrClass::Wait.bytes(), 4);
    }

    #[test]
    fn generic_model_compiles() {
        let r = compile(&generic_model("finder"));
        assert!(r.code_bytes > 100);
        assert!(r.vgprs >= 34);
        assert_eq!(r.lds_bytes, 0);
    }

    /// A constant-folded comparer variant: no pattern buffers (the masks
    /// are immediates), no staging, no ladder; the threshold and length are
    /// folded so only one scalar argument (the candidate count) remains.
    fn folded_comparer(plen: u32) -> CodeModel {
        CodeModel::new("comparer-spec")
            .pointer_args(7)
            .scalar_args(1)
            .noalias(true)
            .cached_global_scalars(2)
            .guarded_blocks(2)
            .atomic_output(true)
            .folded_pattern(plen)
    }

    #[test]
    fn folded_variants_strictly_reduce_code_bytes_and_never_lower_occupancy() {
        use crate::occupancy::occupancy;
        use crate::{DeviceSpec, NdRange};

        let nd = NdRange::linear(8192, 64);
        for opt in 0..=4 {
            let generic = compile(&comparer_variant(opt));
            for plen in [11u32, 23, 31] {
                let folded = compile(&folded_comparer(plen));
                assert!(
                    folded.code_bytes < generic.code_bytes,
                    "plen {plen}: folded {} B must beat generic opt{opt} {} B",
                    folded.code_bytes,
                    generic.code_bytes
                );
                for spec in [
                    DeviceSpec::radeon_vii(),
                    DeviceSpec::mi60(),
                    DeviceSpec::mi100(),
                ] {
                    let waves_folded = occupancy(&folded, &nd, &spec).waves_per_simd;
                    let waves_generic = occupancy(&generic, &nd, &spec).waves_per_simd;
                    assert!(
                        waves_folded >= waves_generic,
                        "{}: folded {waves_folded} waves < generic opt{opt} {waves_generic}",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn folded_code_bytes_grow_with_the_folded_length() {
        let short = compile(&folded_comparer(11)).code_bytes;
        let long = compile(&folded_comparer(23)).code_bytes;
        assert!(long > short, "{long} vs {short}");
    }

    #[test]
    fn folded_stream_has_immediates_and_no_pattern_reads() {
        let program = compile_program(&folded_comparer(23));
        let text = program.disassemble();
        assert!(text.contains("folded position 0"));
        assert!(text.contains("folded position 22"));
        assert!(text.contains("literal threshold trip"));
        assert!(!text.contains("ds_read"), "folded bodies load no pattern:\n{text}");
        assert!(!text.contains("alias reissue"));
        let from_stream: u32 = program
            .sections()
            .iter()
            .flat_map(|(_, v)| v.iter())
            .map(Instr::bytes)
            .sum();
        assert_eq!(from_stream, program.resources().code_bytes);
    }

    #[test]
    fn display_formats_all_fields() {
        let r = ResourceUsage {
            code_bytes: 100,
            sgprs: 10,
            vgprs: 20,
            lds_bytes: 64,
        };
        assert_eq!(r.to_string(), "100 B, 10 SGPRs, 20 VGPRs, 64 B LDS");
    }
}
