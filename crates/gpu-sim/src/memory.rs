//! Device memory: typed global/constant buffers with access counting.
//!
//! Global memory is modelled as one atomic cell per element
//! ([`crate::atomic`]). Work-groups execute on different host threads, and —
//! exactly like on real hardware — plain loads and stores between work-groups
//! have relaxed semantics, while cross-group coordination must use the atomic
//! read-modify-write operations. No `unsafe` code is required.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::atomic::AtomicCell;
use crate::error::{SimError, SimResult};
use crate::item::ItemCtx;
use crate::traffic::TrafficCounters;

/// Marker trait for element types storable in device memory.
///
/// This trait is sealed: it is implemented for the fixed-width integer and
/// floating-point primitives and cannot be implemented outside this crate.
pub trait Scalar: private::Sealed + Copy + Send + Sync + Default + fmt::Debug + 'static {
    /// Size of the element in bytes.
    const BYTES: u64;
    /// The element's bit pattern, widened to 64 bits.
    #[doc(hidden)]
    fn to_bits(self) -> u64;
    /// Recover an element from [`Scalar::to_bits`] output.
    #[doc(hidden)]
    fn from_bits(bits: u64) -> Self;
}

/// Integer scalars that additionally support device-scope atomic
/// read-modify-write operations (OpenCL `atomic_inc`/`atomic_add`, SYCL
/// `atomic_ref::fetch_add`).
pub trait AtomicScalar: Scalar {
    /// Wrapping addition, as device atomics behave on overflow.
    #[doc(hidden)]
    fn wrapping_add(self, v: Self) -> Self;
    /// The value one.
    #[doc(hidden)]
    fn one() -> Self;
}

mod private {
    pub trait Sealed {}
}

macro_rules! impl_int_scalar {
    ($($t:ty),*) => {$(
        impl private::Sealed for $t {}
        impl Scalar for $t {
            const BYTES: u64 = std::mem::size_of::<$t>() as u64;
            fn to_bits(self) -> u64 {
                self as u64
            }
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

macro_rules! impl_atomic_scalar {
    ($($t:ty),*) => {$(
        impl AtomicScalar for $t {
            fn wrapping_add(self, v: Self) -> Self {
                <$t>::wrapping_add(self, v)
            }
            fn one() -> Self {
                1
            }
        }
    )*};
}

impl_int_scalar!(u8, i8, u16, i16, u32, i32, u64, i64);
impl_atomic_scalar!(u8, i8, u16, i16, u32, i32, u64, i64);

impl private::Sealed for f32 {}
impl Scalar for f32 {
    const BYTES: u64 = 4;
    fn to_bits(self) -> u64 {
        f32::to_bits(self) as u64
    }
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl private::Sealed for f64 {}
impl Scalar for f64 {
    const BYTES: u64 = 8;
    fn to_bits(self) -> u64 {
        f64::to_bits(self)
    }
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

/// The address space a buffer lives in (Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpace {
    /// Device global memory: read/write, visible to all work-items.
    Global,
    /// Constant memory: read-only from kernels, broadcast-cached, so loads
    /// are counted (and priced) separately from global loads.
    Constant,
}

/// Tracks allocated bytes against the device's global-memory capacity.
#[derive(Debug)]
pub(crate) struct AllocationTracker {
    capacity: u64,
    used: AtomicU64,
}

impl AllocationTracker {
    pub(crate) fn new(capacity: u64) -> Self {
        AllocationTracker {
            capacity,
            used: AtomicU64::new(0),
        }
    }

    pub(crate) fn try_alloc(&self, bytes: u64) -> SimResult<()> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let available = self.capacity - cur;
            if bytes > available {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    available,
                });
            }
            match self.used.compare_exchange_weak(
                cur,
                cur + bytes,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => cur = now,
            }
        }
    }

    pub(crate) fn release(&self, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub(crate) fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }
}

struct Storage<T: Scalar> {
    cells: Box<[AtomicCell<T>]>,
    bytes: u64,
    tracker: Arc<AllocationTracker>,
    traffic: Arc<TrafficCounters>,
}

impl<T: Scalar> Drop for Storage<T> {
    fn drop(&mut self) {
        self.tracker.release(self.bytes);
    }
}

/// A typed buffer in simulated device memory.
///
/// Buffers are allocated through [`Device::alloc`](crate::Device::alloc) (or
/// `alloc_constant`, `alloc_from_slice`, ...). Cloning a buffer is cheap and
/// yields a handle to the same device storage — this is how kernels capture
/// buffers, mirroring how OpenCL kernel arguments and SYCL accessors alias
/// one underlying allocation. Storage is returned to the device when the last
/// handle is dropped, which is exactly the SYCL buffer-destruction rule the
/// paper describes in §III.A (and the `clReleaseMemObject` path in OpenCL).
///
/// Host-side transfers use [`write_from_host`](Self::write_from_host) /
/// [`read_to_host`](Self::read_to_host); kernel-side accesses use
/// [`load`](Self::load) / [`store`](Self::store) and are counted against the
/// issuing work-item.
///
/// # Examples
///
/// ```
/// use gpu_sim::{Device, DeviceSpec};
///
/// let device = Device::new(DeviceSpec::mi60());
/// let buf = device.alloc_from_slice(&[1u32, 2, 3])?;
/// assert_eq!(buf.to_vec(), vec![1, 2, 3]);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
pub struct DeviceBuffer<T: Scalar> {
    storage: Arc<Storage<T>>,
    space: AddressSpace,
}

impl<T: Scalar> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        DeviceBuffer {
            storage: Arc::clone(&self.storage),
            space: self.space,
        }
    }
}

impl<T: Scalar> fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.len())
            .field("space", &self.space)
            .field("elem_bytes", &T::BYTES)
            .finish()
    }
}

impl<T: Scalar> DeviceBuffer<T> {
    pub(crate) fn allocate(
        tracker: Arc<AllocationTracker>,
        traffic: Arc<TrafficCounters>,
        len: usize,
        space: AddressSpace,
    ) -> SimResult<Self> {
        let bytes = len as u64 * T::BYTES;
        tracker.try_alloc(bytes)?;
        let cells: Box<[AtomicCell<T>]> =
            (0..len).map(|_| AtomicCell::new(T::default())).collect();
        Ok(DeviceBuffer {
            storage: Arc::new(Storage {
                cells,
                bytes,
                tracker,
                traffic,
            }),
            space,
        })
    }

    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.storage.cells.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.storage.cells.is_empty()
    }

    /// Size of the buffer in bytes.
    pub fn byte_len(&self) -> u64 {
        self.storage.bytes
    }

    /// The address space this buffer was allocated in.
    pub fn space(&self) -> AddressSpace {
        self.space
    }

    fn check_region(&self, offset: usize, len: usize) -> SimResult<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len()) {
            return Err(SimError::InvalidRegion {
                offset,
                len,
                buffer_len: self.len(),
            });
        }
        Ok(())
    }

    /// Copy `data` into the buffer starting at element `offset`
    /// (host -> device; the `clEnqueueWriteBuffer` / handler-`copy` path).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRegion`] if the region exceeds the buffer.
    pub fn write_from_host(&self, offset: usize, data: &[T]) -> SimResult<()> {
        self.check_region(offset, data.len())?;
        self.storage.traffic.record_h2d(data.len() as u64 * T::BYTES);
        for (cell, &v) in self.storage.cells[offset..offset + data.len()]
            .iter()
            .zip(data)
        {
            cell.store(v);
        }
        Ok(())
    }

    /// Copy buffer contents starting at element `offset` into `out`
    /// (device -> host; the `clEnqueueReadBuffer` / handler-`copy` path).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRegion`] if the region exceeds the buffer.
    pub fn read_to_host(&self, offset: usize, out: &mut [T]) -> SimResult<()> {
        let len = out.len();
        self.check_region(offset, len)?;
        self.storage.traffic.record_d2h(len as u64 * T::BYTES);
        for (v, cell) in out.iter_mut().zip(&self.storage.cells[offset..offset + len]) {
            *v = cell.load();
        }
        Ok(())
    }

    /// Read the entire buffer into a freshly allocated `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.storage.traffic.record_d2h(self.storage.bytes);
        self.storage.cells.iter().map(|c| c.load()).collect()
    }

    /// Set every element to `v`.
    pub fn fill(&self, v: T) {
        for cell in self.storage.cells.iter() {
            cell.store(v);
        }
    }

    /// Kernel-side load of element `i`, counted against `item`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds — an out-of-bounds device access is
    /// undefined behaviour on real hardware, and the simulator refuses to
    /// emulate it silently.
    #[inline]
    pub fn load(&self, item: &mut ItemCtx, i: usize) -> T {
        match self.space {
            AddressSpace::Global => item.count_global_load(T::BYTES),
            AddressSpace::Constant => item.count_constant_load(),
        }
        self.cell(i).load()
    }

    /// Kernel-side load of element `i` that is known to hit the cache —
    /// a re-read of an address this work-item already loaded, such as the
    /// compiler-emitted reloads of `loci[i]` in the paper's unoptimized
    /// comparer. Counted (and priced) as a cached load; the bytes do not
    /// consume HBM bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn load_cached(&self, item: &mut ItemCtx, i: usize) -> T {
        match self.space {
            AddressSpace::Global => item.count_global_cached_load(),
            AddressSpace::Constant => item.count_constant_load(),
        }
        self.cell(i).load()
    }

    /// Kernel-side load of element `i` that is part of a fully coalesced
    /// streaming access — lane `i` of the wavefront reads address
    /// `base + i`, so one memory transaction serves all 64 lanes (the
    /// finder's sequential reference reads). Priced far below a scattered
    /// load; the bytes still count toward bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn load_coalesced(&self, item: &mut ItemCtx, i: usize) -> T {
        match self.space {
            AddressSpace::Global => item.count_global_coalesced_load(T::BYTES),
            AddressSpace::Constant => item.count_constant_load(),
        }
        self.cell(i).load()
    }

    /// Kernel-side store of `v` to element `i`, counted against `item`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds, or if the buffer lives in constant
    /// memory (constant memory is read-only from kernels).
    #[inline]
    pub fn store(&self, item: &mut ItemCtx, i: usize, v: T) {
        assert!(
            self.space == AddressSpace::Global,
            "kernel store to read-only constant buffer"
        );
        item.count_global_store(T::BYTES);
        self.cell(i).store(v);
    }

    /// Kernel-side store of `v` to element `i` that is part of a fully
    /// coalesced streaming write — lane `i` of the wavefront writes address
    /// `base + i`, so one write transaction serves all 64 lanes (the packed
    /// finder's on-device chunk decode). Priced lockstep like a coalesced
    /// load; the bytes still count toward bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds, or if the buffer lives in constant
    /// memory (constant memory is read-only from kernels).
    #[inline]
    pub fn store_coalesced(&self, item: &mut ItemCtx, i: usize, v: T) {
        assert!(
            self.space == AddressSpace::Global,
            "kernel store to read-only constant buffer"
        );
        item.count_global_coalesced_store(T::BYTES);
        self.cell(i).store(v);
    }

    #[inline]
    fn cell(&self, i: usize) -> &AtomicCell<T> {
        match self.storage.cells.get(i) {
            Some(c) => c,
            None => panic!(
                "device buffer access out of bounds: index {i}, length {}",
                self.len()
            ),
        }
    }
}

impl<T: AtomicScalar> DeviceBuffer<T> {
    /// Device-scope atomic add, returning the previous value
    /// (SYCL `atomic_ref::fetch_add`, OpenCL `atomic_add`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or the buffer is in constant memory.
    #[inline]
    pub fn atomic_add(&self, item: &mut ItemCtx, i: usize, v: T) -> T {
        assert!(
            self.space == AddressSpace::Global,
            "atomic operation on read-only constant buffer"
        );
        item.count_atomic(T::BYTES);
        self.cell(i).fetch_add(v)
    }

    /// Atomic increment, returning the previous value — the paper's
    /// `atomic_inc` wrapper (Table V).
    #[inline]
    pub fn atomic_inc(&self, item: &mut ItemCtx, i: usize) -> T {
        self.atomic_add(item, i, T::one())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(cap: u64) -> Arc<AllocationTracker> {
        Arc::new(AllocationTracker::new(cap))
    }

    fn alloc<T: Scalar>(cap: u64, len: usize, space: AddressSpace) -> SimResult<DeviceBuffer<T>> {
        DeviceBuffer::allocate(tracker(cap), Arc::default(), len, space)
    }

    fn item() -> ItemCtx {
        ItemCtx::new([0; 3], [0; 3], [0; 3], [1, 1, 1], [1, 1, 1])
    }

    #[test]
    fn alloc_and_release_accounting() {
        let t = tracker(1024);
        let buf =
            DeviceBuffer::<u32>::allocate(Arc::clone(&t), Arc::default(), 100, AddressSpace::Global)
                .unwrap();
        assert_eq!(t.used(), 400);
        let clone = buf.clone();
        drop(buf);
        assert_eq!(t.used(), 400, "clone keeps storage alive");
        drop(clone);
        assert_eq!(t.used(), 0);
    }

    #[test]
    fn alloc_beyond_capacity_fails() {
        let err = alloc::<u64>(64, 9, AddressSpace::Global).unwrap_err();
        assert_eq!(
            err,
            SimError::OutOfMemory {
                requested: 72,
                available: 64
            }
        );
    }

    #[test]
    fn host_roundtrip_with_offset() {
        let buf = alloc::<u16>(1024, 8, AddressSpace::Global).unwrap();
        buf.write_from_host(2, &[7, 8, 9]).unwrap();
        let mut out = [0u16; 4];
        buf.read_to_host(1, &mut out).unwrap();
        assert_eq!(out, [0, 7, 8, 9]);
    }

    #[test]
    fn region_validation() {
        let buf = alloc::<u8>(64, 4, AddressSpace::Global).unwrap();
        let err = buf.write_from_host(3, &[1, 2]).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidRegion {
                offset: 3,
                len: 2,
                buffer_len: 4
            }
        );
        let mut out = [0u8; 2];
        assert!(buf.read_to_host(4, &mut out).is_err());
        // offset + len overflowing usize must not wrap around to "valid".
        assert!(buf.write_from_host(usize::MAX, &[1]).is_err());
    }

    #[test]
    fn kernel_loads_and_stores_count() {
        let buf = alloc::<u32>(64, 4, AddressSpace::Global).unwrap();
        let mut it = item();
        buf.store(&mut it, 1, 42);
        assert_eq!(buf.load(&mut it, 1), 42);
        let c = it.counters();
        assert_eq!(c.global_loads, 1);
        assert_eq!(c.global_stores, 1);
        assert_eq!(c.global_load_bytes, 4);
        assert_eq!(c.global_store_bytes, 4);
    }

    #[test]
    fn coalesced_stores_count_in_their_own_class() {
        let buf = alloc::<u32>(64, 4, AddressSpace::Global).unwrap();
        let mut it = item();
        buf.store_coalesced(&mut it, 2, 9);
        assert_eq!(buf.load(&mut it, 2), 9);
        let c = it.counters();
        assert_eq!(c.global_coalesced_stores, 1);
        assert_eq!(c.global_stores, 0, "coalesced stores are not scattered");
        assert_eq!(c.global_store_bytes, 4, "bytes still count for bandwidth");
    }

    #[test]
    fn constant_loads_count_separately() {
        let buf = alloc::<u8>(64, 4, AddressSpace::Constant).unwrap();
        buf.write_from_host(0, &[5, 6, 7, 8]).unwrap();
        let mut it = item();
        assert_eq!(buf.load(&mut it, 2), 7);
        assert_eq!(it.counters().constant_loads, 1);
        assert_eq!(it.counters().global_loads, 0);
    }

    #[test]
    #[should_panic(expected = "read-only constant buffer")]
    fn constant_store_panics() {
        let buf = alloc::<u8>(64, 4, AddressSpace::Constant).unwrap();
        buf.store(&mut item(), 0, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_load_panics() {
        let buf = alloc::<u32>(64, 2, AddressSpace::Global).unwrap();
        buf.load(&mut item(), 2);
    }

    #[test]
    fn atomic_inc_returns_old_value() {
        let buf = alloc::<u32>(64, 1, AddressSpace::Global).unwrap();
        let mut it = item();
        assert_eq!(buf.atomic_inc(&mut it, 0), 0);
        assert_eq!(buf.atomic_inc(&mut it, 0), 1);
        assert_eq!(buf.atomic_add(&mut it, 0, 5), 2);
        assert_eq!(buf.to_vec(), vec![7]);
        assert_eq!(it.counters().atomic_ops, 3);
    }

    #[test]
    fn fill_overwrites_everything() {
        let buf = alloc::<i32>(64, 3, AddressSpace::Global).unwrap();
        buf.fill(-1);
        assert_eq!(buf.to_vec(), vec![-1, -1, -1]);
    }

    #[test]
    fn buffers_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceBuffer<u32>>();
    }
}
