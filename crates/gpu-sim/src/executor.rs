//! ND-range executor.
//!
//! Work-groups are independent (as on real hardware) and run in parallel
//! across host threads; the work-items *within* a group run sequentially,
//! phase by phase, which makes intra-group execution deterministic and gives
//! barrier semantics by construction (see
//! [`crate::KernelProgram`]).
//!
//! While executing, the executor reduces the launch to *wave-cycles*: within
//! each wavefront of 64 work-items the lanes run in lockstep, so a wave's
//! cost for a phase is the issue cost of its slowest lane (this is what makes
//! the baseline comparer's serial thread-0 staging expensive, and what makes
//! early loop exits only help when a whole wave exits early). Wave costs are
//! summed over all waves and phases and handed to the
//! [timing model](crate::timing).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::counters::AccessCounters;
use crate::error::{SimError, SimResult};
use crate::isa::{self, ResourceUsage};
use crate::item::ItemCtx;
use crate::kernel::KernelProgram;
use crate::ndrange::NdRange;
use crate::occupancy::{occupancy, Occupancy};
use crate::spec::DeviceSpec;
use crate::timing::{kernel_time_s, CostModel};

/// How work-groups are scheduled onto host threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Groups run one after another on the calling thread. Fully
    /// deterministic, including the order of device atomics.
    Sequential,
    /// Groups run concurrently on `threads` host threads. The result *set*
    /// is deterministic for data-race-free kernels, but the order in which
    /// atomically compacted outputs land is not — exactly as on a GPU.
    Parallel {
        /// Number of host worker threads.
        threads: usize,
    },
}

impl Default for ExecMode {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ExecMode::Parallel { threads }
    }
}

/// Everything known about a finished kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Kernel name.
    pub kernel: String,
    /// The ND-range that was executed.
    pub nd: NdRange,
    /// Dynamic event counts summed over all work-items.
    pub counters: AccessCounters,
    /// Sum over all waves and phases of the slowest lane's issue cycles.
    pub wave_cycles: f64,
    /// Static resources from the pseudo-ISA compiler.
    pub resources: ResourceUsage,
    /// Achieved occupancy.
    pub occupancy: Occupancy,
    /// Simulated command time in seconds, including the fixed host-side
    /// launch overhead (this is what advances a queue's clock).
    pub sim_time_s: f64,
    /// Simulated device execution time in seconds, excluding the launch
    /// overhead — the "kernel execution time" a profiler reports and the
    /// quantity the paper's Fig. 2 plots.
    pub exec_time_s: f64,
    /// Host wall-clock time spent simulating.
    pub wall_time: Duration,
}

struct GroupResult {
    counters: AccessCounters,
    wave_cycles: f64,
}

fn run_group<K: KernelProgram>(
    kernel: &K,
    nd: &NdRange,
    cost: &CostModel,
    layout: &crate::local::LocalLayout,
    group_linear: usize,
    phases: usize,
    group_overhead: f64,
) -> GroupResult {
    let gpd = nd.groups_per_dim();
    let gx = group_linear % gpd[0];
    let gy = (group_linear / gpd[0]) % gpd[1];
    let gz = group_linear / (gpd[0] * gpd[1]);
    let group_id = [gx, gy, gz];

    let l0 = nd.local(0);
    let l1 = nd.local(1);
    let group_size = nd.group_size();
    let wavefront = 64usize;

    let mut local = layout.instantiate();
    let mut privates: Vec<K::Private> = std::iter::repeat_with(K::Private::default)
        .take(group_size)
        .collect();

    let mut counters = AccessCounters::ZERO;
    let mut wave_cycles = group_overhead;

    let global_range = [nd.global(0), nd.global(1), nd.global(2)];
    let local_range = [nd.local(0), nd.local(1), nd.local(2)];

    for phase in 0..phases {
        let mut wave_max = 0.0f64;
        let mut wave_serialized = 0.0f64;
        for (li, private) in privates.iter_mut().enumerate() {
            let lx = li % l0;
            let ly = (li / l0) % l1;
            let lz = li / (l0 * l1);
            let local_id = [lx, ly, lz];
            let global_id = [
                gx * l0 + lx,
                gy * l1 + ly,
                gz * nd.local(2) + lz,
            ];
            let mut item = ItemCtx::new(global_id, local_id, group_id, global_range, local_range);
            if phase > 0 {
                item.count_barrier();
            }
            kernel.run_phase(phase, &mut item, private, &mut local);

            wave_max = wave_max.max(cost.lockstep_cycles(&item.counters));
            wave_serialized += cost.serialized_cycles(&item.counters);
            counters += item.counters;

            let wave_ends = (li + 1) % wavefront == 0 || li + 1 == group_size;
            if wave_ends {
                wave_cycles += wave_max + wave_serialized;
                wave_max = 0.0;
                wave_serialized = 0.0;
            }
        }
    }

    GroupResult {
        counters,
        wave_cycles,
    }
}

pub(crate) fn run_launch<K: KernelProgram>(
    spec: &DeviceSpec,
    mode: ExecMode,
    kernel: &K,
    nd: NdRange,
) -> SimResult<LaunchReport> {
    nd.validate()?;
    let layout = kernel.local_layout();
    if layout.total_bytes() > spec.lds_per_cu_bytes {
        return Err(SimError::LocalMemExceeded {
            requested: layout.total_bytes(),
            available: spec.lds_per_cu_bytes,
        });
    }

    let mut resources = isa::compile(&kernel.code_model());
    resources.lds_bytes = layout.total_bytes();
    let occ = occupancy(&resources, &nd, spec);
    let cost = CostModel::new(spec);
    let phases = kernel.phases().max(1);
    let groups = nd.work_groups();
    let group_overhead = spec.group_dispatch_cycles as f64;

    let start = Instant::now();
    let (counters, wave_cycles) = match mode {
        ExecMode::Sequential => {
            let mut counters = AccessCounters::ZERO;
            let mut cycles = 0.0;
            for g in 0..groups {
                let r = run_group(kernel, &nd, &cost, &layout, g, phases, group_overhead);
                counters += r.counters;
                cycles += r.wave_cycles;
            }
            (counters, cycles)
        }
        ExecMode::Parallel { threads } => {
            let threads = threads.max(1).min(groups.max(1));
            let next = AtomicUsize::new(0);
            let acc = Mutex::new((AccessCounters::ZERO, 0.0f64));
            std::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|| {
                        let mut counters = AccessCounters::ZERO;
                        let mut cycles = 0.0;
                        loop {
                            let g = next.fetch_add(1, Ordering::Relaxed);
                            if g >= groups {
                                break;
                            }
                            let r = run_group(kernel, &nd, &cost, &layout, g, phases, group_overhead);
                            counters += r.counters;
                            cycles += r.wave_cycles;
                        }
                        let mut guard = acc.lock().unwrap();
                        guard.0 += counters;
                        guard.1 += cycles;
                    });
                }
            });
            acc.into_inner().unwrap()
        }
    };
    let wall_time = start.elapsed();

    let sim_time_s = kernel_time_s(wave_cycles, &counters, &occ, spec);
    let exec_time_s = sim_time_s - spec.launch_overhead_s;

    Ok(LaunchReport {
        kernel: kernel.name().to_owned(),
        nd,
        counters,
        wave_cycles,
        resources,
        occupancy: occ,
        sim_time_s,
        exec_time_s,
        wall_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::kernel::{LocalHandle, LocalLayout, LocalMem};
    use crate::memory::DeviceBuffer;

    /// Writes each item's global id into an output buffer.
    struct Iota {
        out: DeviceBuffer<u32>,
    }

    impl KernelProgram for Iota {
        type Private = ();
        fn name(&self) -> &str {
            "iota"
        }
        fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
            let i = item.global_id(0);
            self.out.store(item, i, i as u32);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        for mode in [ExecMode::Sequential, ExecMode::Parallel { threads: 4 }] {
            let device = Device::with_mode(DeviceSpec::mi100(), mode);
            let out = device.alloc::<u32>(1024).unwrap();
            let report = device.launch(&Iota { out: out.clone() }, NdRange::linear(1024, 64))
                .unwrap();
            let expect: Vec<u32> = (0..1024).collect();
            assert_eq!(out.to_vec(), expect);
            assert_eq!(report.counters.global_stores, 1024);
        }
    }

    /// Atomically counts items; checks cross-group atomics under parallelism.
    struct Count {
        n: DeviceBuffer<u32>,
    }

    impl KernelProgram for Count {
        type Private = ();
        fn name(&self) -> &str {
            "count"
        }
        fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
            self.n.atomic_inc(item, 0);
        }
    }

    #[test]
    fn atomics_are_exact_across_parallel_groups() {
        let device = Device::with_mode(DeviceSpec::mi60(), ExecMode::Parallel { threads: 8 });
        let n = device.alloc::<u32>(1).unwrap();
        device
            .launch(&Count { n: n.clone() }, NdRange::linear(4096, 128))
            .unwrap();
        assert_eq!(n.to_vec()[0], 4096);
    }

    /// Two-phase kernel: phase 0 stages a value, phase 1 reads it back.
    struct Phased {
        src: DeviceBuffer<u32>,
        out: DeviceBuffer<u32>,
        slot: LocalHandle<u32>,
    }

    impl KernelProgram for Phased {
        type Private = ();
        fn name(&self) -> &str {
            "phased"
        }
        fn phases(&self) -> usize {
            2
        }
        fn local_layout(&self) -> LocalLayout {
            let mut l = LocalLayout::new();
            l.array::<u32>(1);
            l
        }
        fn run_phase(&self, phase: usize, item: &mut ItemCtx, _s: &mut (), local: &mut LocalMem) {
            match phase {
                0 => {
                    // Only the group leader stages; everyone reads after the
                    // barrier, which is the phase boundary.
                    if item.local_id(0) == 0 {
                        let v = self.src.load(item, item.group(0));
                        local.store(item, self.slot, 0, v);
                    }
                }
                _ => {
                    let v = local.load(item, self.slot, 0);
                    self.out.store(item, item.global_id(0), v);
                }
            }
        }
    }

    #[test]
    fn barrier_phases_publish_local_writes() {
        let device = Device::new(DeviceSpec::radeon_vii());
        let src = device.alloc_from_slice(&[10u32, 20]).unwrap();
        let out = device.alloc::<u32>(8).unwrap();
        let mut layout = LocalLayout::new();
        let slot = layout.array::<u32>(1);
        let k = Phased {
            src,
            out: out.clone(),
            slot,
        };
        let report = device.launch(&k, NdRange::linear(8, 4)).unwrap();
        assert_eq!(out.to_vec(), vec![10, 10, 10, 10, 20, 20, 20, 20]);
        // One barrier per item at the phase boundary.
        assert_eq!(report.counters.barriers, 8);
    }

    #[test]
    fn wave_cost_is_max_of_lanes() {
        // One lane does 1000x the work of the others; the wave must be
        // priced at the slow lane, not the average.
        struct Skewed;
        impl KernelProgram for Skewed {
            type Private = ();
            fn name(&self) -> &str {
                "skewed"
            }
            fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
                if item.local_id(0) == 0 {
                    item.ops(64_000);
                } else {
                    item.ops(1);
                }
            }
        }
        let device = Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential);
        let report = device.launch(&Skewed, NdRange::linear(64, 64)).unwrap();
        let overhead = DeviceSpec::mi100().group_dispatch_cycles as f64;
        assert!(report.wave_cycles >= 64_000.0 + overhead);
        assert!(report.wave_cycles < 65_000.0 + overhead);
    }

    #[test]
    fn sequential_and_parallel_agree_on_counters_and_cycles() {
        let seq = Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential);
        let par = Device::with_mode(DeviceSpec::mi100(), ExecMode::Parallel { threads: 7 });
        let nd = NdRange::linear(2048, 256);
        let a = seq
            .launch(&Iota { out: seq.alloc::<u32>(2048).unwrap() }, nd)
            .unwrap();
        let b = par
            .launch(&Iota { out: par.alloc::<u32>(2048).unwrap() }, nd)
            .unwrap();
        assert_eq!(a.counters, b.counters);
        assert!((a.wave_cycles - b.wave_cycles).abs() < 1e-6);
        assert!((a.sim_time_s - b.sim_time_s).abs() < 1e-12);
    }

    #[test]
    fn invalid_ndrange_is_rejected() {
        let device = Device::new(DeviceSpec::mi100());
        let out = device.alloc::<u32>(8).unwrap();
        let err = device
            .launch(&Iota { out }, NdRange::linear(10, 4))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidNdRange { .. }));
    }

    #[test]
    fn oversized_local_memory_is_rejected() {
        struct Greedy;
        impl KernelProgram for Greedy {
            type Private = ();
            fn name(&self) -> &str {
                "greedy"
            }
            fn local_layout(&self) -> LocalLayout {
                let mut l = LocalLayout::new();
                l.array::<u8>(128 * 1024);
                l
            }
            fn run_phase(&self, _p: usize, _i: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {}
        }
        let device = Device::new(DeviceSpec::mi100());
        let err = device.launch(&Greedy, NdRange::linear(64, 64)).unwrap_err();
        assert!(matches!(err, SimError::LocalMemExceeded { .. }));
    }

    #[test]
    fn two_dimensional_ids_cover_the_range() {
        struct Mark2D {
            out: DeviceBuffer<u8>,
            width: usize,
        }
        impl KernelProgram for Mark2D {
            type Private = ();
            fn name(&self) -> &str {
                "mark2d"
            }
            fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
                let x = item.global_id(0);
                let y = item.global_id(1);
                self.out.store(item, y * self.width + x, 1);
            }
        }
        let device = Device::new(DeviceSpec::mi60());
        let out = device.alloc::<u8>(16 * 8).unwrap();
        device
            .launch(
                &Mark2D {
                    out: out.clone(),
                    width: 16,
                },
                NdRange::two_d([16, 8], [4, 2]),
            )
            .unwrap();
        assert!(out.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn private_state_persists_across_phases() {
        struct Carry {
            out: DeviceBuffer<u64>,
        }
        impl KernelProgram for Carry {
            type Private = u64;
            fn name(&self) -> &str {
                "carry"
            }
            fn phases(&self) -> usize {
                3
            }
            fn run_phase(&self, phase: usize, item: &mut ItemCtx, p: &mut u64, _l: &mut LocalMem) {
                *p = *p * 10 + phase as u64 + 1;
                if phase == 2 {
                    self.out.store(item, item.global_id(0), *p);
                }
            }
        }
        let device = Device::new(DeviceSpec::mi100());
        let out = device.alloc::<u64>(4).unwrap();
        device
            .launch(&Carry { out: out.clone() }, NdRange::linear(4, 2))
            .unwrap();
        assert_eq!(out.to_vec(), vec![123, 123, 123, 123]);
    }
}
