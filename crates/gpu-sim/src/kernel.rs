//! The kernel programming interface.

pub use crate::local::{LocalHandle, LocalLayout, LocalMem};

use crate::isa::{generic_model, CodeModel};
use crate::item::ItemCtx;

/// A device kernel, executed once per work-item of an ND-range.
///
/// # Structured barrier phases
///
/// OpenCL and SYCL require that a barrier is encountered by *every*
/// work-item of a work-group or by none (§III.C of the paper). The simulator
/// exploits that rule: instead of an imperative `barrier()` call, a kernel is
/// split into [`phases`](Self::phases) barrier-separated phases, and the
/// executor runs phase `p` for all work-items of a group before any work-item
/// enters phase `p + 1`. The barrier guarantee — local-memory writes made
/// before the barrier are visible after it — holds by construction.
///
/// State that on a GPU would live in private memory (registers) across a
/// barrier is carried in the [`Private`](Self::Private) associated type; the
/// executor keeps one value per work-item for the duration of the launch.
///
/// # Examples
///
/// A kernel that stages a table into local memory in phase 0 and uses it in
/// phase 1:
///
/// ```
/// use gpu_sim::kernel::{KernelProgram, LocalHandle, LocalLayout, LocalMem};
/// use gpu_sim::{Device, DeviceBuffer, DeviceSpec, ItemCtx, NdRange};
///
/// struct Scale {
///     table: DeviceBuffer<u32>,
///     data: DeviceBuffer<u32>,
///     l_table: LocalHandle<u32>,
/// }
///
/// impl KernelProgram for Scale {
///     type Private = ();
///
///     fn name(&self) -> &str {
///         "scale"
///     }
///
///     fn phases(&self) -> usize {
///         2
///     }
///
///     fn local_layout(&self) -> LocalLayout {
///         let mut l = LocalLayout::new();
///         assert_eq!(l.array::<u32>(self.l_table.len()).len(), self.l_table.len());
///         l
///     }
///
///     fn run_phase(&self, phase: usize, item: &mut ItemCtx, _p: &mut (), local: &mut LocalMem) {
///         match phase {
///             0 => {
///                 // Cooperative staging: one element per work-item.
///                 let li = item.local_id(0);
///                 if li < self.l_table.len() {
///                     let v = self.table.load(item, li);
///                     local.store(item, self.l_table, li, v);
///                 }
///             }
///             _ => {
///                 let i = item.global_id(0);
///                 let v = self.data.load(item, i);
///                 let s = local.load(item, self.l_table, i % self.l_table.len());
///                 self.data.store(item, i, v * s);
///             }
///         }
///     }
/// }
///
/// let device = Device::new(DeviceSpec::radeon_vii());
/// let table = device.alloc_from_slice(&[2u32, 3])?;
/// let data = device.alloc_from_slice(&[1u32, 1, 1, 1])?;
/// let mut layout = LocalLayout::new();
/// let l_table = layout.array::<u32>(2);
/// let k = Scale { table, data: data.clone(), l_table };
/// device.launch(&k, NdRange::linear(4, 4))?;
/// assert_eq!(data.to_vec(), vec![2, 3, 2, 3]);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
pub trait KernelProgram: Send + Sync {
    /// Per-work-item private state carried across barrier phases.
    type Private: Default + Send;

    /// Kernel name used in launch reports and diagnostics.
    fn name(&self) -> &str;

    /// Number of barrier-separated phases (default 1: no barrier).
    fn phases(&self) -> usize {
        1
    }

    /// Shared-local-memory arrays required per work-group.
    ///
    /// The returned layout must declare the same arrays, in the same order
    /// and with the same types, as the [`LocalHandle`]s the kernel holds —
    /// handles are positional, exactly like OpenCL `__local` arguments set by
    /// argument index.
    fn local_layout(&self) -> LocalLayout {
        LocalLayout::new()
    }

    /// Structural description for the pseudo-ISA compiler; used for code
    /// size, register counts and occupancy. Defaults to a small generic
    /// kernel.
    fn code_model(&self) -> CodeModel {
        generic_model(self.name())
    }

    /// Execute one phase for one work-item.
    fn run_phase(
        &self,
        phase: usize,
        item: &mut ItemCtx,
        private: &mut Self::Private,
        local: &mut LocalMem,
    );
}
