//! Error types for the device simulator.

use std::error::Error;
use std::fmt;

/// Errors reported by the device simulator.
///
/// Out-of-bounds kernel accesses are deliberately **not** represented here:
/// on real hardware they are undefined behaviour, so the simulator turns them
/// into a panic with a precise diagnostic instead of silently corrupting
/// state (see [`crate::memory::DeviceBuffer::load`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A buffer allocation exceeded the device's global memory capacity.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: u64,
        /// Bytes still available on the device.
        available: u64,
    },
    /// An ND-range was rejected (zero sizes, or the local size does not
    /// divide the global size in some dimension, as required by the SYCL
    /// specification).
    InvalidNdRange {
        /// Human-readable reason the range was rejected.
        reason: String,
    },
    /// A host copy referenced a region outside the device buffer.
    InvalidRegion {
        /// First element of the region.
        offset: usize,
        /// Number of elements in the region.
        len: usize,
        /// Length of the buffer the region was applied to.
        buffer_len: usize,
    },
    /// A work-group requested more shared local memory than the device has
    /// per compute unit.
    LocalMemExceeded {
        /// Bytes of local memory requested by the kernel.
        requested: u64,
        /// Bytes of local memory available per compute unit.
        available: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device global memory exhausted: requested {requested} bytes, {available} available"
            ),
            SimError::InvalidNdRange { reason } => write!(f, "invalid nd-range: {reason}"),
            SimError::InvalidRegion {
                offset,
                len,
                buffer_len,
            } => write!(
                f,
                "region [{offset}, {}) out of bounds for buffer of length {buffer_len}",
                offset + len
            ),
            SimError::LocalMemExceeded {
                requested,
                available,
            } => write!(
                f,
                "work-group requested {requested} bytes of local memory, device provides {available}"
            ),
        }
    }
}

impl Error for SimError {}

/// Convenience alias for simulator results.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = SimError::OutOfMemory {
            requested: 64,
            available: 32,
        };
        let msg = e.to_string();
        assert!(msg.contains("64"));
        assert!(msg.contains("32"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn invalid_region_reports_bounds() {
        let e = SimError::InvalidRegion {
            offset: 10,
            len: 5,
            buffer_len: 12,
        };
        assert_eq!(
            e.to_string(),
            "region [10, 15) out of bounds for buffer of length 12"
        );
    }
}
