//! ND-range geometry.

use crate::error::{SimError, SimResult};

/// An execution range: the total number of work-items per dimension and the
/// work-group size per dimension (OpenCL `gws`/`lws`, SYCL `nd_range`).
///
/// As required by the SYCL specification (§III.C of the paper), the local
/// size must divide the global size in every dimension; this is checked by
/// [`validate`](Self::validate) before a kernel launches.
///
/// # Examples
///
/// ```
/// use gpu_sim::NdRange;
///
/// let nd = NdRange::linear(1024, 256);
/// assert_eq!(nd.work_items(), 1024);
/// assert_eq!(nd.work_groups(), 4);
/// assert_eq!(nd.group_size(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NdRange {
    global: [usize; 3],
    local: [usize; 3],
    dims: usize,
}

impl NdRange {
    /// A one-dimensional range of `global` work-items in groups of `local`.
    pub fn linear(global: usize, local: usize) -> Self {
        NdRange {
            global: [global, 1, 1],
            local: [local, 1, 1],
            dims: 1,
        }
    }

    /// A two-dimensional range.
    pub fn two_d(global: [usize; 2], local: [usize; 2]) -> Self {
        NdRange {
            global: [global[0], global[1], 1],
            local: [local[0], local[1], 1],
            dims: 2,
        }
    }

    /// A three-dimensional range.
    pub fn three_d(global: [usize; 3], local: [usize; 3]) -> Self {
        NdRange {
            global,
            local,
            dims: 3,
        }
    }

    /// A 1-D range for `items` work-items rounded up to a multiple of
    /// `local`, the usual idiom for covering an arbitrary problem size.
    pub fn linear_cover(items: usize, local: usize) -> Self {
        let groups = items.div_ceil(local.max(1));
        Self::linear(groups * local, local)
    }

    /// Number of dimensions (1–3).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Global size in dimension `dim`.
    pub fn global(&self, dim: usize) -> usize {
        self.global[dim]
    }

    /// Local (work-group) size in dimension `dim`.
    pub fn local(&self, dim: usize) -> usize {
        self.local[dim]
    }

    /// Total number of work-items over all dimensions.
    pub fn work_items(&self) -> usize {
        self.global.iter().product()
    }

    /// Work-items per work-group.
    pub fn group_size(&self) -> usize {
        self.local.iter().product()
    }

    /// Total number of work-groups.
    pub fn work_groups(&self) -> usize {
        self.work_items() / self.group_size().max(1)
    }

    /// Number of work-groups in each dimension.
    pub fn groups_per_dim(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0].max(1),
            self.global[1] / self.local[1].max(1),
            self.global[2] / self.local[2].max(1),
        ]
    }

    /// Check the range is well-formed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNdRange`] when any size is zero or the
    /// local size does not divide the global size in some dimension.
    pub fn validate(&self) -> SimResult<()> {
        for d in 0..self.dims {
            if self.global[d] == 0 || self.local[d] == 0 {
                return Err(SimError::InvalidNdRange {
                    reason: format!("dimension {d} has zero size"),
                });
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(SimError::InvalidNdRange {
                    reason: format!(
                        "local size {} does not divide global size {} in dimension {d}",
                        self.local[d], self.global[d]
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_geometry() {
        let nd = NdRange::linear(1024, 128);
        assert_eq!(nd.dims(), 1);
        assert_eq!(nd.work_items(), 1024);
        assert_eq!(nd.work_groups(), 8);
        assert!(nd.validate().is_ok());
    }

    #[test]
    fn linear_cover_rounds_up() {
        let nd = NdRange::linear_cover(1000, 256);
        assert_eq!(nd.global(0), 1024);
        assert_eq!(nd.work_groups(), 4);
        // Exact multiples are untouched.
        assert_eq!(NdRange::linear_cover(512, 256).global(0), 512);
        // Zero items still produce a valid empty cover.
        assert_eq!(NdRange::linear_cover(0, 256).global(0), 0);
    }

    #[test]
    fn two_d_geometry() {
        let nd = NdRange::two_d([64, 32], [8, 4]);
        assert_eq!(nd.dims(), 2);
        assert_eq!(nd.work_items(), 2048);
        assert_eq!(nd.group_size(), 32);
        assert_eq!(nd.work_groups(), 64);
        assert_eq!(nd.groups_per_dim(), [8, 8, 1]);
        assert!(nd.validate().is_ok());
    }

    #[test]
    fn three_d_geometry() {
        let nd = NdRange::three_d([16, 8, 4], [4, 2, 2]);
        assert_eq!(nd.work_items(), 512);
        assert_eq!(nd.group_size(), 16);
        assert_eq!(nd.work_groups(), 32);
        assert!(nd.validate().is_ok());
    }

    #[test]
    fn validation_rejects_nondividing_local() {
        let nd = NdRange::linear(100, 64);
        let err = nd.validate().unwrap_err();
        assert!(err.to_string().contains("does not divide"));
    }

    #[test]
    fn validation_rejects_zero() {
        assert!(NdRange::linear(0, 64).validate().is_err());
        assert!(NdRange::linear(64, 0).validate().is_err());
    }
}
