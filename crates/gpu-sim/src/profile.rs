//! Session profiling: aggregate launch reports into a per-kernel profile,
//! the way the paper used `rocprof` to find that "the 'compare' kernel is a
//! hotspot that accounts for approximately 98% of the total kernel
//! execution time" (§IV.B).

use std::collections::BTreeMap;
use std::fmt;

use crate::counters::AccessCounters;
use crate::executor::LaunchReport;

/// Aggregated statistics for one kernel across a session.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Number of launches.
    pub calls: usize,
    /// Total simulated device execution seconds (excluding launch
    /// overhead).
    pub total_s: f64,
    /// Fastest single launch.
    pub min_s: f64,
    /// Slowest single launch.
    pub max_s: f64,
    /// Total work-items executed.
    pub items: u64,
    /// Summed dynamic counters.
    pub counters: AccessCounters,
    /// Occupancy (waves/SIMD) of the most recent launch.
    pub occupancy: u32,
}

impl KernelStats {
    /// Mean simulated seconds per launch.
    pub fn avg_s(&self) -> f64 {
        self.total_s / self.calls.max(1) as f64
    }
}

/// A profiling session: feed it [`LaunchReport`]s, read back per-kernel
/// statistics and shares.
///
/// # Examples
///
/// ```
/// use gpu_sim::kernel::{KernelProgram, LocalMem};
/// use gpu_sim::profile::Profile;
/// use gpu_sim::{Device, DeviceSpec, ItemCtx, NdRange};
///
/// struct Nop;
/// impl KernelProgram for Nop {
///     type Private = ();
///     fn name(&self) -> &str {
///         "nop"
///     }
///     fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
///         item.ops(1);
///     }
/// }
///
/// let device = Device::new(DeviceSpec::mi100());
/// let mut profile = Profile::new();
/// profile.record(device.launch(&Nop, NdRange::linear(256, 64))?);
/// profile.record(device.launch(&Nop, NdRange::linear(512, 64))?);
/// assert_eq!(profile.kernel("nop").unwrap().calls, 2);
/// assert!((profile.share("nop") - 1.0).abs() < 1e-12);
/// # Ok::<(), gpu_sim::SimError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct Profile {
    kernels: BTreeMap<String, KernelStats>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a profile from an iterator of reports.
    pub fn from_reports<'a, I: IntoIterator<Item = &'a LaunchReport>>(reports: I) -> Self {
        let mut p = Profile::new();
        for r in reports {
            p.record_ref(r);
        }
        p
    }

    /// Record a launch.
    pub fn record(&mut self, report: LaunchReport) {
        self.record_ref(&report);
    }

    /// Record a launch by reference.
    pub fn record_ref(&mut self, report: &LaunchReport) {
        let stats = self
            .kernels
            .entry(report.kernel.clone())
            .or_insert(KernelStats {
                calls: 0,
                total_s: 0.0,
                min_s: f64::INFINITY,
                max_s: 0.0,
                items: 0,
                counters: AccessCounters::ZERO,
                occupancy: 0,
            });
        stats.calls += 1;
        stats.total_s += report.exec_time_s;
        stats.min_s = stats.min_s.min(report.exec_time_s);
        stats.max_s = stats.max_s.max(report.exec_time_s);
        stats.items += report.nd.work_items() as u64;
        stats.counters += report.counters;
        stats.occupancy = report.occupancy.waves_per_simd;
    }

    /// Statistics for `kernel`, if it was launched.
    pub fn kernel(&self, kernel: &str) -> Option<&KernelStats> {
        self.kernels.get(kernel)
    }

    /// All kernels, sorted by total time descending.
    pub fn hotspots(&self) -> Vec<(&str, &KernelStats)> {
        let mut v: Vec<(&str, &KernelStats)> = self
            .kernels
            .iter()
            .map(|(k, s)| (k.as_str(), s))
            .collect();
        v.sort_by(|a, b| b.1.total_s.total_cmp(&a.1.total_s));
        v
    }

    /// Total simulated kernel seconds across the session.
    pub fn total_s(&self) -> f64 {
        self.kernels.values().map(|s| s.total_s).sum()
    }

    /// `kernel`'s fraction of the total kernel time (0 when unknown).
    pub fn share(&self, kernel: &str) -> f64 {
        let total = self.total_s();
        if total == 0.0 {
            return 0.0;
        }
        self.kernel(kernel).map_or(0.0, |s| s.total_s / total)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>6} {:>12} {:>8} {:>12} {:>14} {:>10} {:>4}",
            "kernel", "calls", "total(s)", "share", "avg(s)", "items", "gmem", "occ"
        )?;
        for (name, s) in self.hotspots() {
            writeln!(
                f,
                "{:<16} {:>6} {:>12.6} {:>7.1}% {:>12.9} {:>14} {:>10} {:>4}",
                name,
                s.calls,
                s.total_s,
                self.share(name) * 100.0,
                s.avg_s(),
                s.items,
                s.counters.global_accesses(),
                s.occupancy
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelProgram, LocalMem};
    use crate::{Device, DeviceSpec, ItemCtx, NdRange};

    struct Busy(&'static str, u64);
    impl KernelProgram for Busy {
        type Private = ();
        fn name(&self) -> &str {
            self.0
        }
        fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
            item.ops(self.1);
        }
    }

    fn profile() -> Profile {
        let device = Device::new(DeviceSpec::mi100());
        let mut p = Profile::new();
        p.record(device.launch(&Busy("hot", 5000), NdRange::linear(4096, 256)).unwrap());
        p.record(device.launch(&Busy("hot", 5000), NdRange::linear(4096, 256)).unwrap());
        p.record(device.launch(&Busy("cold", 10), NdRange::linear(256, 64)).unwrap());
        p
    }

    #[test]
    fn aggregates_per_kernel() {
        let p = profile();
        let hot = p.kernel("hot").unwrap();
        assert_eq!(hot.calls, 2);
        assert_eq!(hot.items, 8192);
        assert!(hot.total_s > 0.0);
        assert!((hot.avg_s() - hot.total_s / 2.0).abs() < 1e-15);
        assert!(hot.min_s <= hot.max_s);
        assert_eq!(hot.occupancy, 10);
        assert!(p.kernel("missing").is_none());
    }

    #[test]
    fn hotspots_are_sorted_and_shares_sum_to_one() {
        let p = profile();
        let hs = p.hotspots();
        assert_eq!(hs[0].0, "hot");
        assert_eq!(hs[1].0, "cold");
        let sum: f64 = ["hot", "cold"].iter().map(|k| p.share(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p.share("hot") > 0.9);
    }

    #[test]
    fn display_renders_a_table() {
        let p = profile();
        let text = p.to_string();
        assert!(text.contains("kernel"));
        assert!(text.contains("hot"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let p = Profile::new();
        assert!(p.is_empty());
        assert_eq!(p.total_s(), 0.0);
        assert_eq!(p.share("anything"), 0.0);
        assert!(p.hotspots().is_empty());
    }
}
