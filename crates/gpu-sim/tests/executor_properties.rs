//! Property-based tests of the device simulator's executor and memory
//! model: functional invariants that must hold for arbitrary geometry.

use gpu_sim::kernel::{KernelProgram, LocalHandle, LocalLayout, LocalMem};
use gpu_sim::{Device, DeviceBuffer, DeviceSpec, ExecMode, ItemCtx, NdRange};
use proptest::prelude::*;

/// Writes each item's global id; the canonical coverage probe.
struct Iota {
    out: DeviceBuffer<u32>,
}

impl KernelProgram for Iota {
    type Private = ();
    fn name(&self) -> &str {
        "iota"
    }
    fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
        let i = item.global_id(0);
        if i < self.out.len() {
            self.out.store(item, i, i as u32);
        }
    }
}

/// Group-sum via local memory and a barrier phase.
struct GroupSum {
    data: DeviceBuffer<u32>,
    sums: DeviceBuffer<u64>,
    slot: LocalHandle<u64>,
}

impl KernelProgram for GroupSum {
    type Private = ();
    fn name(&self) -> &str {
        "group-sum"
    }
    fn phases(&self) -> usize {
        2
    }
    fn local_layout(&self) -> LocalLayout {
        let mut l = LocalLayout::new();
        l.array::<u64>(1);
        l
    }
    fn run_phase(&self, phase: usize, item: &mut ItemCtx, _s: &mut (), local: &mut LocalMem) {
        match phase {
            0 => {
                // Items run sequentially within a group, so a plain
                // accumulate into local memory is race-free.
                let i = item.global_id(0);
                let v = if i < self.data.len() {
                    self.data.load(item, i) as u64
                } else {
                    0
                };
                let cur = local.load(item, self.slot, 0);
                local.store(item, self.slot, 0, cur + v);
            }
            _ => {
                if item.local_id(0) == 0 {
                    let total = local.load(item, self.slot, 0);
                    self.sums.store(item, item.group(0), total);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_item_executes_exactly_once(
        groups in 1usize..20,
        local_pow in 0u32..4,
        threads in 1usize..9,
    ) {
        let local = 64usize << local_pow;
        let n = groups * local;
        let device = Device::with_mode(
            DeviceSpec::mi100(),
            ExecMode::Parallel { threads },
        );
        let out = device.alloc::<u32>(n).unwrap();
        out.fill(u32::MAX);
        device.launch(&Iota { out: out.clone() }, NdRange::linear(n, local)).unwrap();
        let v = out.to_vec();
        prop_assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn group_sums_match_a_host_reduction(
        data in proptest::collection::vec(0u32..1000, 1..700),
        local_pow in 0u32..3,
    ) {
        let local = 32usize << local_pow;
        let n = data.len().div_ceil(local) * local;
        let groups = n / local;
        let device = Device::new(DeviceSpec::mi60());
        let buf = device.alloc::<u32>(data.len()).unwrap();
        buf.write_from_host(0, &data).unwrap();
        let sums = device.alloc::<u64>(groups).unwrap();
        let mut layout = LocalLayout::new();
        let slot = layout.array::<u64>(1);
        device
            .launch(
                &GroupSum {
                    data: buf,
                    sums: sums.clone(),
                    slot,
                },
                NdRange::linear(n, local),
            )
            .unwrap();

        let total_device: u64 = sums.to_vec().iter().sum();
        let total_host: u64 = data.iter().map(|&v| v as u64).sum();
        prop_assert_eq!(total_device, total_host);
    }

    #[test]
    fn host_roundtrip_is_lossless(
        data in proptest::collection::vec(any::<i64>(), 0..300),
        offset in 0usize..50,
    ) {
        let device = Device::new(DeviceSpec::radeon_vii());
        let buf = device.alloc::<i64>(offset + data.len()).unwrap();
        buf.write_from_host(offset, &data).unwrap();
        let mut back = vec![0i64; data.len()];
        buf.read_to_host(offset, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn counters_are_deterministic_across_scheduling(
        groups in 1usize..12,
        threads in 2usize..8,
    ) {
        let n = groups * 64;
        let seq = Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential);
        let par = Device::with_mode(DeviceSpec::mi100(), ExecMode::Parallel { threads });
        let a = seq
            .launch(&Iota { out: seq.alloc::<u32>(n).unwrap() }, NdRange::linear(n, 64))
            .unwrap();
        let b = par
            .launch(&Iota { out: par.alloc::<u32>(n).unwrap() }, NdRange::linear(n, 64))
            .unwrap();
        prop_assert_eq!(a.counters, b.counters);
        prop_assert!((a.wave_cycles - b.wave_cycles).abs() < 1e-9);
        prop_assert!((a.sim_time_s - b.sim_time_s).abs() < 1e-15);
    }

    #[test]
    fn ndrange_validation_agrees_with_arithmetic(
        global in 1usize..4096,
        local in 1usize..512,
    ) {
        let nd = NdRange::linear(global, local);
        prop_assert_eq!(nd.validate().is_ok(), global % local == 0);
        let covered = NdRange::linear_cover(global, local);
        prop_assert!(covered.validate().is_ok());
        prop_assert!(covered.global(0) >= global);
        prop_assert!(covered.global(0) - global < local);
    }

    #[test]
    fn allocation_accounting_balances(lens in proptest::collection::vec(1usize..4000, 1..20)) {
        let device = Device::new(DeviceSpec::mi100());
        let bufs: Vec<_> = lens
            .iter()
            .map(|&l| device.alloc::<u32>(l).unwrap())
            .collect();
        let expected: u64 = lens.iter().map(|&l| l as u64 * 4).sum();
        prop_assert_eq!(device.mem_used(), expected);
        drop(bufs);
        prop_assert_eq!(device.mem_used(), 0);
    }
}
