//! Seeded-random property tests of the device simulator's executor and
//! memory model: functional invariants that must hold for arbitrary
//! geometry. Cases are drawn from `genome::rng`, so runs are deterministic
//! and need no external property-testing crate.

use genome::rng::Xoshiro256;
use gpu_sim::kernel::{KernelProgram, LocalHandle, LocalLayout, LocalMem};
use gpu_sim::{Device, DeviceBuffer, DeviceSpec, ExecMode, ItemCtx, NdRange};

/// Writes each item's global id; the canonical coverage probe.
struct Iota {
    out: DeviceBuffer<u32>,
}

impl KernelProgram for Iota {
    type Private = ();
    fn name(&self) -> &str {
        "iota"
    }
    fn run_phase(&self, _p: usize, item: &mut ItemCtx, _s: &mut (), _l: &mut LocalMem) {
        let i = item.global_id(0);
        if i < self.out.len() {
            self.out.store(item, i, i as u32);
        }
    }
}

/// Group-sum via local memory and a barrier phase.
struct GroupSum {
    data: DeviceBuffer<u32>,
    sums: DeviceBuffer<u64>,
    slot: LocalHandle<u64>,
}

impl KernelProgram for GroupSum {
    type Private = ();
    fn name(&self) -> &str {
        "group-sum"
    }
    fn phases(&self) -> usize {
        2
    }
    fn local_layout(&self) -> LocalLayout {
        let mut l = LocalLayout::new();
        l.array::<u64>(1);
        l
    }
    fn run_phase(&self, phase: usize, item: &mut ItemCtx, _s: &mut (), local: &mut LocalMem) {
        match phase {
            0 => {
                // Items run sequentially within a group, so a plain
                // accumulate into local memory is race-free.
                let i = item.global_id(0);
                let v = if i < self.data.len() {
                    self.data.load(item, i) as u64
                } else {
                    0
                };
                let cur = local.load(item, self.slot, 0);
                local.store(item, self.slot, 0, cur + v);
            }
            _ => {
                if item.local_id(0) == 0 {
                    let total = local.load(item, self.slot, 0);
                    self.sums.store(item, item.group(0), total);
                }
            }
        }
    }
}

#[test]
fn every_item_executes_exactly_once() {
    let mut rng = Xoshiro256::seed_from_u64(0xE0E0);
    for _ in 0..16 {
        let groups = rng.gen_range(1, 20);
        let local = 64usize << rng.gen_below(4);
        let threads = rng.gen_range(1, 9);
        let n = groups * local;
        let device = Device::with_mode(DeviceSpec::mi100(), ExecMode::Parallel { threads });
        let out = device.alloc::<u32>(n).unwrap();
        out.fill(u32::MAX);
        device
            .launch(&Iota { out: out.clone() }, NdRange::linear(n, local))
            .unwrap();
        let v = out.to_vec();
        assert!(
            v.iter().enumerate().all(|(i, &x)| x == i as u32),
            "groups {groups} local {local} threads {threads}"
        );
    }
}

#[test]
fn group_sums_match_a_host_reduction() {
    let mut rng = Xoshiro256::seed_from_u64(0x6500);
    for _ in 0..16 {
        let data: Vec<u32> = (0..rng.gen_range(1, 700))
            .map(|_| rng.gen_below(1000) as u32)
            .collect();
        let local = 32usize << rng.gen_below(3);
        let n = data.len().div_ceil(local) * local;
        let groups = n / local;
        let device = Device::new(DeviceSpec::mi60());
        let buf = device.alloc::<u32>(data.len()).unwrap();
        buf.write_from_host(0, &data).unwrap();
        let sums = device.alloc::<u64>(groups).unwrap();
        let mut layout = LocalLayout::new();
        let slot = layout.array::<u64>(1);
        device
            .launch(
                &GroupSum {
                    data: buf,
                    sums: sums.clone(),
                    slot,
                },
                NdRange::linear(n, local),
            )
            .unwrap();

        let total_device: u64 = sums.to_vec().iter().sum();
        let total_host: u64 = data.iter().map(|&v| v as u64).sum();
        assert_eq!(total_device, total_host, "local {local}");
    }
}

#[test]
fn host_roundtrip_is_lossless() {
    let mut rng = Xoshiro256::seed_from_u64(0x4057);
    for _ in 0..32 {
        let data: Vec<i64> = (0..rng.gen_below(300))
            .map(|_| rng.next_u64() as i64)
            .collect();
        let offset = rng.gen_below(50);
        let device = Device::new(DeviceSpec::radeon_vii());
        let buf = device.alloc::<i64>(offset + data.len()).unwrap();
        buf.write_from_host(offset, &data).unwrap();
        let mut back = vec![0i64; data.len()];
        buf.read_to_host(offset, &mut back).unwrap();
        assert_eq!(back, data, "offset {offset}");
    }
}

#[test]
fn counters_are_deterministic_across_scheduling() {
    let mut rng = Xoshiro256::seed_from_u64(0xDE7);
    for _ in 0..16 {
        let groups = rng.gen_range(1, 12);
        let threads = rng.gen_range(2, 8);
        let n = groups * 64;
        let seq = Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential);
        let par = Device::with_mode(DeviceSpec::mi100(), ExecMode::Parallel { threads });
        let a = seq
            .launch(
                &Iota {
                    out: seq.alloc::<u32>(n).unwrap(),
                },
                NdRange::linear(n, 64),
            )
            .unwrap();
        let b = par
            .launch(
                &Iota {
                    out: par.alloc::<u32>(n).unwrap(),
                },
                NdRange::linear(n, 64),
            )
            .unwrap();
        assert_eq!(a.counters, b.counters);
        assert!((a.wave_cycles - b.wave_cycles).abs() < 1e-9);
        assert!((a.sim_time_s - b.sim_time_s).abs() < 1e-15);
    }
}

#[test]
fn ndrange_validation_agrees_with_arithmetic() {
    let mut rng = Xoshiro256::seed_from_u64(0x0D4);
    for _ in 0..200 {
        let global = rng.gen_range(1, 4096);
        let local = rng.gen_range(1, 512);
        let nd = NdRange::linear(global, local);
        assert_eq!(nd.validate().is_ok(), global.is_multiple_of(local));
        let covered = NdRange::linear_cover(global, local);
        assert!(covered.validate().is_ok());
        assert!(covered.global(0) >= global);
        assert!(covered.global(0) - global < local);
    }
}

#[test]
fn allocation_accounting_balances() {
    let mut rng = Xoshiro256::seed_from_u64(0xA110C);
    for _ in 0..16 {
        let lens: Vec<usize> = (0..rng.gen_range(1, 20))
            .map(|_| rng.gen_range(1, 4000))
            .collect();
        let device = Device::new(DeviceSpec::mi100());
        let bufs: Vec<_> = lens
            .iter()
            .map(|&l| device.alloc::<u32>(l).unwrap())
            .collect();
        let expected: u64 = lens.iter().map(|&l| l as u64 * 4).sum();
        assert_eq!(device.mem_used(), expected);
        drop(bufs);
        assert_eq!(device.mem_used(), 0);
    }
}
