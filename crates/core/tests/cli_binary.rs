//! End-to-end tests of the compiled `cas-offinder` binary.

use std::path::PathBuf;
use std::process::Command;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cas-offinder"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("casoff-bin-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = binary().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: cas-offinder"));
}

#[test]
fn missing_input_exits_nonzero_with_usage() {
    let out = binary().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage error"));
    assert!(err.contains("usage: cas-offinder"));
}

#[test]
fn full_run_writes_the_output_file() {
    let dir = scratch_dir("run");
    let input = dir.join("input.txt");
    std::fs::write(
        &input,
        "hg38-mini:0.005\nNNNNNNNNNNNNNNNNNNNNNRG\nGGCCGACCTGTCGCTGACGCNNN 5\n",
    )
    .unwrap();
    let output = dir.join("out.txt");

    let out = binary()
        .arg(&input)
        .arg(&output)
        .args(["--chunk", "16384", "--device", "MI60", "--opt", "opt3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let written = std::fs::read_to_string(&output).unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout), written);
    assert!(written.contains("GGCCGACCTGTCGCTGACGC"), "hits expected");
    assert!(written.contains("# "), "summary comments expected");
    assert!(written.contains("MI60"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fasta_genome_on_disk_is_searchable() {
    let dir = scratch_dir("fasta");
    let fasta = dir.join("toy.fa");
    std::fs::write(
        &fasta,
        ">chrT\nTTTTACGTACGTACGTACGTACGTAGGTTTT\n",
    )
    .unwrap();
    let input = dir.join("input.txt");
    std::fs::write(
        &input,
        format!(
            "{}\nNNNNNNNNNNNNNNNNNNNNNGG\nACGTACGTACGTACGTACGTNNN 2\n",
            fasta.display()
        ),
    )
    .unwrap();

    let out = binary().arg(&input).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chrT"), "the planted site must be found:\n{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_flags_fail_cleanly() {
    let out = binary().args(["in.txt", "--api", "vulkan"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown api"));
}

#[test]
fn opencl_api_flag_runs_the_opencl_pipeline() {
    let dir = scratch_dir("ocl");
    let input = dir.join("input.txt");
    std::fs::write(
        &input,
        "hg19-mini:0.004\nNNNNNNNNNNNNNNNNNNNNNRG\nCGCCAGCGTCAGCGACAGGTNNN 4\n",
    )
    .unwrap();
    let out = binary()
        .arg(&input)
        .args(["--api", "opencl", "--chunk", "8192"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("OpenCL"));
    std::fs::remove_dir_all(&dir).unwrap();
}
