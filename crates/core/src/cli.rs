//! The command-line front end: a drop-in analogue of the original
//! `cas-offinder <input> <device> [output]` tool.
//!
//! The input file follows the upstream format (see [`crate::SearchInput`]),
//! except that the genome line may also name a built-in synthetic assembly:
//!
//! * `hg19-mini` / `hg38-mini` — the paper's datasets at 10% scale;
//! * `hg19-mini:0.02` — an explicit scale;
//! * any other value — a path to a FASTA file or a directory of FASTA
//!   files, like the original tool.

use std::fmt;
use std::path::Path;

use genome::fasta::{self, ParseOptions};
use genome::Assembly;
use gpu_sim::DeviceSpec;

use crate::pipeline::{self, PipelineConfig};
use crate::report::{Api, SearchReport};
use crate::{InputError, OptLevel, SearchInput};

/// Errors surfaced by the command-line front end.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Wrong usage (bad flags, missing arguments).
    Usage(String),
    /// The input file did not parse.
    Input(InputError),
    /// The genome could not be loaded.
    Genome(String),
    /// A pipeline failed.
    Pipeline(String),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Input(e) => write!(f, "input file: {e}"),
            CliError::Genome(m) => write!(f, "genome: {m}"),
            CliError::Pipeline(m) => write!(f, "pipeline: {m}"),
            CliError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<InputError> for CliError {
    fn from(e: InputError) -> Self {
        CliError::Input(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Path to the input file.
    pub input_path: String,
    /// Optional output path (stdout when `None`).
    pub output_path: Option<String>,
    /// Which host application to run.
    pub api: Api,
    /// Device name (`Radeon VII`, `MI60`, `MI100`).
    pub device: String,
    /// Comparer optimization stage.
    pub opt: OptLevel,
    /// Chunk size in scan positions.
    pub chunk_size: usize,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            input_path: String::new(),
            output_path: None,
            api: Api::Sycl,
            device: "MI100".to_owned(),
            opt: OptLevel::Opt3,
            chunk_size: 1 << 20,
        }
    }
}

/// Usage text for the binary.
pub const USAGE: &str = "usage: cas-offinder <input-file> [output-file] \
[--api sycl|opencl] [--device <name>] [--opt base|opt1|opt2|opt3|opt4] [--chunk N]";

/// Parse command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError::Usage`] on malformed arguments.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliOptions, CliError> {
    let mut opts = CliOptions::default();
    let mut positional = Vec::new();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--api" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--api needs a value".into()))?;
                opts.api = match v.as_str() {
                    "sycl" => Api::Sycl,
                    "opencl" | "ocl" => Api::OpenCl,
                    other => {
                        return Err(CliError::Usage(format!("unknown api {other:?}")));
                    }
                };
            }
            "--device" => {
                opts.device = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--device needs a value".into()))?;
            }
            "--opt" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--opt needs a value".into()))?;
                opts.opt = OptLevel::ALL
                    .into_iter()
                    .find(|o| o.label() == v)
                    .ok_or_else(|| CliError::Usage(format!("unknown opt level {v:?}")))?;
            }
            "--chunk" => {
                let v = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--chunk needs a value".into()))?;
                opts.chunk_size = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad chunk size {v:?}")))?;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag {flag:?}")));
            }
            _ => positional.push(a),
        }
    }
    match positional.len() {
        0 => return Err(CliError::Usage("an input file is required".into())),
        1 => opts.input_path = positional.remove(0),
        2 => {
            opts.input_path = positional.remove(0);
            opts.output_path = Some(positional.remove(0));
        }
        n => return Err(CliError::Usage(format!("{n} positional arguments, expected 1-2"))),
    }
    Ok(opts)
}

/// Resolve the input's genome field to an assembly: a built-in miniature
/// (optionally with `:scale`) or a FASTA file/directory on disk.
///
/// # Errors
///
/// Returns [`CliError::Genome`] when nothing can be loaded.
pub fn resolve_genome(spec: &str) -> Result<Assembly, CliError> {
    let (name, scale) = match spec.split_once(':') {
        Some((n, s)) => {
            let scale: f64 = s
                .parse()
                .map_err(|_| CliError::Genome(format!("bad scale {s:?} in {spec:?}")))?;
            (n, scale)
        }
        None => (spec, 0.1),
    };
    match name {
        "hg19-mini" => return Ok(genome::synth::hg19_mini(scale)),
        "hg38-mini" => return Ok(genome::synth::hg38_mini(scale)),
        _ => {}
    }

    let path = Path::new(spec);
    if path.is_file() {
        return load_fasta_file(path);
    }
    if path.is_dir() {
        let mut assembly = Assembly::new(spec.to_owned());
        let mut entries: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| CliError::Genome(format!("cannot read directory {spec:?}: {e}")))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("fa" | "fasta" | "fna")
                )
            })
            .collect();
        entries.sort();
        if entries.is_empty() {
            return Err(CliError::Genome(format!("no FASTA files in {spec:?}")));
        }
        for file in entries {
            let sub = load_fasta_file(&file)?;
            assembly.extend(sub.chromosomes().iter().cloned());
        }
        return Ok(assembly);
    }
    Err(CliError::Genome(format!(
        "{spec:?} is neither a built-in assembly (hg19-mini, hg38-mini) nor a FASTA path"
    )))
}

fn load_fasta_file(path: &Path) -> Result<Assembly, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Genome(format!("cannot read {}: {e}", path.display())))?;
    let records = fasta::parse_str(&text, ParseOptions { strict: false })
        .map_err(|e| CliError::Genome(format!("{}: {e}", path.display())))?;
    Ok(Assembly::from_records(path.display().to_string(), records))
}

/// Run a search per the options over already-parsed input and assembly.
///
/// # Errors
///
/// Returns [`CliError`] on unknown devices or pipeline failures.
pub fn run_search(
    options: &CliOptions,
    assembly: &Assembly,
    input: &SearchInput,
) -> Result<SearchReport, CliError> {
    let spec = DeviceSpec::paper_devices()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(&options.device))
        .ok_or_else(|| {
            CliError::Genome(format!(
                "unknown device {:?}; available: Radeon VII, MI60, MI100",
                options.device
            ))
        })?;
    let config = PipelineConfig::new(spec)
        .chunk_size(options.chunk_size)
        .opt(options.opt);
    match options.api {
        Api::OpenCl => pipeline::ocl::run(assembly, input, &config)
            .map_err(|e| CliError::Pipeline(e.to_string())),
        Api::Sycl => pipeline::sycl::run(assembly, input, &config)
            .map_err(|e| CliError::Pipeline(e.to_string())),
    }
}

/// Render the report in the original tool's tab-separated output format,
/// with trailing summary comments (statistics and timing).
pub fn render_output(report: &SearchReport) -> String {
    let mut out = String::new();
    for hit in &report.offtargets {
        out.push_str(&hit.to_line());
        out.push('\n');
    }
    let stats = crate::stats::SearchStats::from_hits(&report.offtargets);
    for line in stats.to_string().lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!(
        "# {} on {}; {}\n",
        report.api, report.device, report.timing
    ));
    out
}

/// The whole front end: parse args, load everything, search, and return
/// the rendered output (also written to `output_path` when set).
///
/// # Errors
///
/// Returns [`CliError`] for any failure along the way.
pub fn run<I: IntoIterator<Item = String>>(args: I) -> Result<String, CliError> {
    let options = parse_args(args)?;
    let text = std::fs::read_to_string(&options.input_path)?;
    let input = SearchInput::parse(&text)?;
    let assembly = resolve_genome(&input.genome)?;
    let report = run_search(&options, &assembly, &input)?;
    let rendered = render_output(&report);
    if let Some(path) = &options.output_path {
        std::fs::write(path, &rendered)?;
    }
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_full() {
        let opts = parse_args(
            ["in.txt", "out.txt", "--api", "opencl", "--device", "MI60", "--opt", "opt2", "--chunk", "4096"]
                .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.input_path, "in.txt");
        assert_eq!(opts.output_path.as_deref(), Some("out.txt"));
        assert_eq!(opts.api, Api::OpenCl);
        assert_eq!(opts.device, "MI60");
        assert_eq!(opts.opt, OptLevel::Opt2);
        assert_eq!(opts.chunk_size, 4096);
    }

    #[test]
    fn parse_args_rejects_nonsense() {
        assert!(matches!(
            parse_args(Vec::<String>::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["a", "b", "c"].map(String::from)),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["in", "--api", "cuda"].map(String::from)),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["in", "--frobnicate"].map(String::from)),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["in", "--opt", "opt9"].map(String::from)),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn resolve_builtin_genomes_with_scale() {
        let a = resolve_genome("hg19-mini:0.004").unwrap();
        assert_eq!(a.name(), "hg19-mini");
        assert!(a.total_len() < 50_000);
        let b = resolve_genome("hg38-mini:0.004").unwrap();
        assert!(b.total_len() > a.total_len());
        assert!(matches!(
            resolve_genome("hg19-mini:fast"),
            Err(CliError::Genome(_))
        ));
        assert!(matches!(resolve_genome("mm39"), Err(CliError::Genome(_))));
    }

    #[test]
    fn resolve_fasta_file_and_directory() {
        let dir = std::env::temp_dir().join(format!("casoff-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.fa"), ">chrA\nACGTACGTAGG\n").unwrap();
        std::fs::write(dir.join("b.fasta"), ">chrB\nTTTTACGT\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not fasta").unwrap();

        let single = resolve_genome(dir.join("a.fa").to_str().unwrap()).unwrap();
        assert_eq!(single.chromosomes().len(), 1);
        assert_eq!(single.chromosomes()[0].name, "chrA");

        let multi = resolve_genome(dir.to_str().unwrap()).unwrap();
        assert_eq!(multi.chromosomes().len(), 2);
        assert_eq!(multi.total_len(), 11 + 8);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn end_to_end_run_produces_real_hits() {
        let dir = std::env::temp_dir().join(format!("casoff-cli-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input_path = dir.join("input.txt");
        std::fs::write(
            &input_path,
            "hg38-mini:0.005\nNNNNNNNNNNNNNNNNNNNNNRG\nGGCCGACCTGTCGCTGACGCNNN 5\n",
        )
        .unwrap();
        let out_path = dir.join("out.txt");

        let rendered = run([
            input_path.to_str().unwrap().to_owned(),
            out_path.to_str().unwrap().to_owned(),
            "--chunk".to_owned(),
            "16384".to_owned(),
        ])
        .unwrap();
        assert!(rendered.lines().count() > 1, "hits + summary expected");
        assert!(rendered.contains("GGCCGACCTGTCGCTGACGC"));
        assert_eq!(std::fs::read_to_string(&out_path).unwrap(), rendered);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opencl_and_sycl_cli_paths_agree() {
        let dir = std::env::temp_dir().join(format!("casoff-cli-agree-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input_path = dir.join("input.txt");
        std::fs::write(
            &input_path,
            "hg19-mini:0.004\nNNNNNNNNNNNNNNNNNNNNNRG\nCGCCAGCGTCAGCGACAGGTNNN 4\n",
        )
        .unwrap();
        let base = [input_path.to_str().unwrap().to_owned(), "--chunk".into(), "8192".into()];
        let sycl = run(base.clone()).unwrap();
        let ocl = run([&base[..], &["--api".to_owned(), "opencl".to_owned()]].concat()).unwrap();
        // Hits identical; only the summary line (api name, timing) differs.
        let hits = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(hits(&sycl), hits(&ocl));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_device_is_reported() {
        let options = CliOptions {
            device: "H100".into(),
            ..CliOptions::default()
        };
        let assembly = genome::synth::hg19_mini(0.002);
        let input = SearchInput::canonical_example("hg19-mini");
        assert!(matches!(
            run_search(&options, &assembly, &input),
            Err(CliError::Genome(_))
        ));
    }
}
