//! The `cas-offinder` command-line tool: search a genome for potential
//! off-target sites (simulated-GPU edition).
//!
//! ```text
//! cas-offinder input.txt [output.txt] [--api sycl|opencl] [--device MI100]
//!              [--opt base|opt1|opt2|opt3|opt4] [--chunk N]
//! ```

use cas_offinder::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        println!("{}", cli::USAGE);
        return;
    }
    match cli::run(args) {
        Ok(rendered) => print!("{rendered}"),
        Err(e) => {
            eprintln!("cas-offinder: {e}");
            eprintln!("{}", cli::USAGE);
            std::process::exit(2);
        }
    }
}
