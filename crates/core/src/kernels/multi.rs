//! The fused multi-guide comparer family (`comparer_multi`).
//!
//! A CRISPR library screen compares thousands of guides that share one PAM
//! against the *same* candidate list the finder produced for a chunk. The
//! serial path launches the comparer once per guide — `k` launches of a
//! kernel whose per-launch work is small enough that launch overhead and
//! redundant genome loads dominate (the same fusion argument the GROMACS
//! SYCL port made on AMD GPUs). The fused kernels here compare a *guide
//! block* of up to [`GUIDE_BLOCK`] guides in one launch:
//!
//! * phase 0 stages the concatenated `[fwd|rc]` pattern arrays of the whole
//!   block (guide `g`, half `h`, position `k` at `(g*2 + h)*plen + k`) into
//!   local memory, plus the per-guide thresholds when they differ;
//! * phase 1 loads each candidate's genome window **once** into private
//!   registers and then sweeps all guides × strands against it — the window
//!   loads amortize over `2·G` strand comparisons instead of being re-issued
//!   per guide.
//!
//! Output compaction shares one atomic counter across the block and tags
//! every entry with its guide index. Under
//! [`ExecMode::Sequential`](gpu_sim::ExecMode) each work-item emits its
//! entries for guides in ascending order, so the per-guide subsequence of
//! the shared output is exactly the serial kernel's output — byte-identical
//! results, which [`MultiComparerOutput::per_guide`] demultiplexes.
//!
//! When every guide in the block shares one threshold, the block can run as
//! a JIT-specialized variant ([`VariantKind::MultiComparer`]) that folds the
//! threshold into an immediate and drops the threshold-table argument and
//! its staging — [`GuideThresholds::Folded`].

use std::sync::Arc;

use gpu_sim::isa::{CodeModel, Staging};
use gpu_sim::kernel::{KernelProgram, LocalHandle, LocalLayout, LocalMem};
use gpu_sim::{Device, DeviceBuffer, ItemCtx, SimResult};

use genome::base::{base_mask, is_mismatch};
use genome::twobit::code_to_char;

use super::finder::{FLAG_BOTH, FLAG_FORWARD, FLAG_REVERSE};
use super::ladder::ladder_rank;
use super::specialize::CompiledVariant;

/// Maximum guides fused into one comparer launch. `k` guides over the same
/// candidate list run in `ceil(k / GUIDE_BLOCK)` launches instead of `k`.
pub const GUIDE_BLOCK: usize = 16;

/// Per-guide mismatch thresholds of a fused block.
#[derive(Debug, Clone)]
pub enum GuideThresholds {
    /// One threshold per guide, staged to local memory from this buffer.
    PerGuide(DeviceBuffer<u16>),
    /// Every guide shares `threshold`, folded into the JIT-specialized
    /// variant as an immediate (the `variant` carries the measured
    /// resources and profiler name).
    Folded {
        /// The shared threshold immediate.
        threshold: u16,
        /// The compiled [`VariantKind::MultiComparer`] variant.
        variant: Arc<CompiledVariant>,
    },
}

/// Device-side output of a fused comparer launch: the serial
/// [`ComparerOutput`](super::ComparerOutput) arrays plus a guide tag per
/// entry, compacted through one shared atomic counter.
#[derive(Debug, Clone)]
pub struct MultiComparerOutput {
    /// Mismatch count per passing site.
    pub mm_count: DeviceBuffer<u16>,
    /// Direction per passing site: `b'+'` or `b'-'`.
    pub direction: DeviceBuffer<u8>,
    /// Locus per passing site (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Guide index within the block per passing site.
    pub guide: DeviceBuffer<u16>,
    /// Single-element entry counter.
    pub count: DeviceBuffer<u32>,
}

impl MultiComparerOutput {
    /// Allocate output buffers for up to `capacity` entries. Each locus can
    /// pass on both strands of every guide, so callers should size
    /// `capacity` at `2 * nguides * locicnt`.
    ///
    /// # Errors
    ///
    /// Returns an error when the device is out of memory.
    pub fn allocate(device: &Device, capacity: usize) -> SimResult<MultiComparerOutput> {
        Ok(MultiComparerOutput {
            mm_count: device.alloc(capacity)?,
            direction: device.alloc(capacity)?,
            loci: device.alloc(capacity)?,
            guide: device.alloc(capacity)?,
            count: device.alloc(1)?,
        })
    }

    /// Read back the entry count.
    pub fn count_entries(&self) -> usize {
        self.count.to_vec()[0] as usize
    }

    /// Read back and demultiplex the shared output into per-guide entry
    /// lists, preserving compaction order within each guide — the order the
    /// serial per-guide kernel would have produced.
    pub fn per_guide(&self, nguides: usize) -> Vec<Vec<(u32, u8, u16)>> {
        let n = self.count_entries();
        let loci = self.loci.to_vec();
        let dir = self.direction.to_vec();
        let mm = self.mm_count.to_vec();
        let guide = self.guide.to_vec();
        let mut out = vec![Vec::new(); nguides];
        for i in 0..n {
            out[guide[i] as usize].push((loci[i], dir[i], mm[i]));
        }
        out
    }
}

/// Structural code model of a fused comparer. `pointer_args` counts the
/// encoding's chunk buffers plus loci/flags/pattern tables/4 output arrays
/// (+ the threshold table when not folded); the window registers cost shows
/// up as `extra_valu` over the serial kernel, and the folded form drops one
/// pointer, one staged array and the threshold loads.
fn multi_model(name: &str, chunk_ptrs: u32, folded: bool, decode_valu: u32) -> CodeModel {
    let (ptrs, staged, valu) = if folded {
        (chunk_ptrs + 9, 2, decode_valu)
    } else {
        (chunk_ptrs + 10, 3, decode_valu + 4)
    };
    CodeModel::new(name)
        .pointer_args(ptrs)
        .scalar_args(3)
        .noalias(true)
        .cached_global_scalars(2)
        .staging(Staging::Parallel)
        .staged_arrays(staged)
        .guarded_blocks(2)
        .ladder_arms(13)
        .atomic_output(true)
        .extra_valu(valu)
}

/// Code model of the char fused comparer.
pub fn char_multi_model(folded: bool) -> CodeModel {
    let name = if folded {
        "comparer_multi-spec"
    } else {
        "comparer_multi"
    };
    multi_model(name, 1, folded, 12)
}

/// Code model of the 2-bit fused comparer.
pub fn twobit_multi_model(folded: bool) -> CodeModel {
    let name = if folded {
        "comparer_multi-2bit-spec"
    } else {
        "comparer_multi-2bit"
    };
    multi_model(name, 2, folded, 44)
}

/// Code model of the 4-bit fused comparer.
pub fn fourbit_multi_model(folded: bool) -> CodeModel {
    let name = if folded {
        "comparer_multi-4bit-spec"
    } else {
        "comparer_multi-4bit"
    };
    multi_model(name, 1, folded, 28)
}

/// Shared layout builder: pattern tables for the whole block, plus the
/// threshold table when per-guide.
fn multi_layout(
    nguides: usize,
    plen: usize,
    thresholds: &GuideThresholds,
) -> (LocalLayout, LocalHandle<u8>, LocalHandle<i32>, Option<LocalHandle<u16>>) {
    let mut layout = LocalLayout::new();
    let l_comp = layout.array::<u8>(nguides * 2 * plen);
    let l_comp_index = layout.array::<i32>(nguides * 2 * plen);
    let l_thr = match thresholds {
        GuideThresholds::PerGuide(_) => Some(layout.array::<u16>(nguides)),
        GuideThresholds::Folded { .. } => None,
    };
    (layout, l_comp, l_comp_index, l_thr)
}

/// The fused char comparer: guide-block mismatch counting over raw chunk
/// bytes.
#[derive(Debug, Clone)]
pub struct MultiComparerKernel {
    /// Chunk bases.
    pub chr: DeviceBuffer<u8>,
    /// Candidate loci from the finder (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Strand flags from the finder.
    pub flags: DeviceBuffer<u8>,
    /// Concatenated `[fwd | rc]` pattern bytes of the block, `nguides * 2 *
    /// plen` long.
    pub comp: DeviceBuffer<u8>,
    /// Concatenated non-`N` index tables, `-1` terminated per half.
    pub comp_index: DeviceBuffer<i32>,
    /// Per-guide or folded thresholds.
    pub thresholds: GuideThresholds,
    /// Number of candidate loci.
    pub locicnt: u32,
    /// Pattern length (uniform across the block — one PAM).
    pub plen: u32,
    /// Guides in the block (`<= GUIDE_BLOCK`).
    pub nguides: u32,
    /// Output arrays.
    pub out: MultiComparerOutput,
    /// Local staging handle for the block's pattern characters.
    pub l_comp: LocalHandle<u8>,
    /// Local staging handle for the block's index tables.
    pub l_comp_index: LocalHandle<i32>,
    /// Local staging handle for per-guide thresholds (`None` when folded).
    pub l_thr: Option<LocalHandle<u16>>,
}

impl MultiComparerKernel {
    /// Build the kernel and its local layout for a block of `nguides`
    /// patterns of uniform length `plen`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        chr: DeviceBuffer<u8>,
        loci: DeviceBuffer<u32>,
        flags: DeviceBuffer<u8>,
        comp: DeviceBuffer<u8>,
        comp_index: DeviceBuffer<i32>,
        thresholds: GuideThresholds,
        locicnt: usize,
        plen: usize,
        nguides: usize,
        out: MultiComparerOutput,
    ) -> (MultiComparerKernel, LocalLayout) {
        let (layout, l_comp, l_comp_index, l_thr) = multi_layout(nguides, plen, &thresholds);
        (
            MultiComparerKernel {
                chr,
                loci,
                flags,
                comp,
                comp_index,
                thresholds,
                locicnt: locicnt as u32,
                plen: plen as u32,
                nguides: nguides as u32,
                out,
                l_comp,
                l_comp_index,
                l_thr,
            },
            layout,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn compare_strand(
        &self,
        item: &mut ItemCtx,
        local: &LocalMem,
        window: &[u8],
        locus: u32,
        g: usize,
        thr: u16,
        half: usize,
    ) {
        let plen = self.plen as usize;
        let base = (g * 2 + half) * plen;
        let mut lmm: u16 = 0;
        item.ops(1);

        for j in 0..plen {
            let k = local.load(item, self.l_comp_index, base + j);
            item.ops(1);
            if k < 0 {
                break;
            }
            let k = k as usize;
            let pat_c = local.load(item, self.l_comp, base + k);
            item.ops(ladder_rank(pat_c));
            let chr_c = window[k];
            item.ops(2);
            if is_mismatch(pat_c, chr_c) {
                lmm += 1;
                item.ops(1);
                if lmm > thr {
                    break;
                }
            }
        }

        item.ops(1);
        if lmm <= thr {
            let slot = self.out.count.atomic_inc(item, 0) as usize;
            self.out.mm_count.store(item, slot, lmm);
            self.out
                .direction
                .store(item, slot, if half == 0 { b'+' } else { b'-' });
            self.out.loci.store(item, slot, locus);
            self.out.guide.store(item, slot, g as u16);
        }
    }
}

/// Shared phase-0 staging: the whole group cooperates in copying the
/// block's pattern tables (and threshold table, when per-guide) to local.
#[allow(clippy::too_many_arguments)]
fn stage_block(
    item: &mut ItemCtx,
    local: &mut LocalMem,
    comp: &DeviceBuffer<u8>,
    comp_index: &DeviceBuffer<i32>,
    l_comp: LocalHandle<u8>,
    l_comp_index: LocalHandle<i32>,
    thresholds: &GuideThresholds,
    l_thr: Option<LocalHandle<u16>>,
    nguides: usize,
    plen: usize,
) {
    let li = item.local_id(0);
    let group = item.local_range(0);
    let span = nguides * 2 * plen;
    let mut k = li;
    while k < span {
        let c = comp.load(item, k);
        local.store(item, l_comp, k, c);
        let idx = comp_index.load(item, k);
        local.store(item, l_comp_index, k, idx);
        item.ops(2);
        k += group;
    }
    if let (GuideThresholds::PerGuide(buf), Some(l_thr)) = (thresholds, l_thr) {
        let mut g = li;
        while g < nguides {
            let t = buf.load(item, g);
            local.store(item, l_thr, g, t);
            item.ops(1);
            g += group;
        }
    }
}

/// Threshold of guide `g`: a local read when per-guide, the folded
/// immediate otherwise.
fn threshold_for(
    item: &mut ItemCtx,
    local: &LocalMem,
    thresholds: &GuideThresholds,
    l_thr: Option<LocalHandle<u16>>,
    g: usize,
) -> u16 {
    match (thresholds, l_thr) {
        (GuideThresholds::PerGuide(_), Some(l_thr)) => local.load(item, l_thr, g),
        (GuideThresholds::Folded { threshold, .. }, _) => *threshold,
        (GuideThresholds::PerGuide(_), None) => unreachable!("per-guide block without l_thr"),
    }
}

impl KernelProgram for MultiComparerKernel {
    type Private = ();

    fn name(&self) -> &str {
        match self.thresholds {
            GuideThresholds::PerGuide(_) => "comparer_multi",
            GuideThresholds::Folded { .. } => "comparer_multi-spec",
        }
    }

    fn phases(&self) -> usize {
        2
    }

    fn local_layout(&self) -> LocalLayout {
        multi_layout(self.nguides as usize, self.plen as usize, &self.thresholds).0
    }

    fn code_model(&self) -> CodeModel {
        char_multi_model(matches!(self.thresholds, GuideThresholds::Folded { .. }))
    }

    fn run_phase(&self, phase: usize, item: &mut ItemCtx, _p: &mut (), local: &mut LocalMem) {
        let plen = self.plen as usize;
        match phase {
            0 => stage_block(
                item,
                local,
                &self.comp,
                &self.comp_index,
                self.l_comp,
                self.l_comp_index,
                &self.thresholds,
                self.l_thr,
                self.nguides as usize,
                plen,
            ),
            _ => {
                let i = item.global_id(0);
                item.ops(1);
                if i >= self.locicnt as usize {
                    return;
                }
                let flag = self.flags.load(item, i);
                let locus = self.loci.load(item, i);

                // The candidate window, loaded once and shared by every
                // guide and strand of the block. The finder only emits loci
                // with a full `plen` window, so the reads are in bounds.
                let mut window = vec![0u8; plen];
                for (k, w) in window.iter_mut().enumerate() {
                    *w = self.chr.load(item, locus as usize + k);
                }
                item.ops(plen as u64);

                for g in 0..self.nguides as usize {
                    let thr = threshold_for(item, local, &self.thresholds, self.l_thr, g);
                    item.ops(2);
                    if flag == FLAG_BOTH || flag == FLAG_FORWARD {
                        self.compare_strand(item, local, &window, locus, g, thr, 0);
                    }
                    item.ops(2);
                    if flag == FLAG_BOTH || flag == FLAG_REVERSE {
                        self.compare_strand(item, local, &window, locus, g, thr, 1);
                    }
                }
            }
        }
    }
}

/// The fused 2-bit comparer: guide-block mismatch counting over packed +
/// ambiguity-mask words. The window decode (the serial kernel's
/// [`base_at`](super::TwoBitComparerKernel) walk) runs once per candidate.
#[derive(Debug, Clone)]
pub struct TwoBitMultiComparerKernel {
    /// Packed chunk bases, 4 per byte.
    pub packed: DeviceBuffer<u8>,
    /// Ambiguity mask, 8 bases per byte.
    pub mask: DeviceBuffer<u8>,
    /// Candidate loci (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Strand flags from the finder.
    pub flags: DeviceBuffer<u8>,
    /// Concatenated `[fwd | rc]` pattern bytes of the block.
    pub comp: DeviceBuffer<u8>,
    /// Concatenated index tables, `-1` terminated per half.
    pub comp_index: DeviceBuffer<i32>,
    /// Per-guide or folded thresholds.
    pub thresholds: GuideThresholds,
    /// Number of candidates.
    pub locicnt: u32,
    /// Pattern length.
    pub plen: u32,
    /// Guides in the block.
    pub nguides: u32,
    /// Output arrays.
    pub out: MultiComparerOutput,
    /// Local staging handle for the block's pattern characters.
    pub l_comp: LocalHandle<u8>,
    /// Local staging handle for the block's index tables.
    pub l_comp_index: LocalHandle<i32>,
    /// Local staging handle for per-guide thresholds (`None` when folded).
    pub l_thr: Option<LocalHandle<u16>>,
}

impl TwoBitMultiComparerKernel {
    /// Build the kernel and its local layout.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        packed: DeviceBuffer<u8>,
        mask: DeviceBuffer<u8>,
        loci: DeviceBuffer<u32>,
        flags: DeviceBuffer<u8>,
        comp: DeviceBuffer<u8>,
        comp_index: DeviceBuffer<i32>,
        thresholds: GuideThresholds,
        locicnt: usize,
        plen: usize,
        nguides: usize,
        out: MultiComparerOutput,
    ) -> (TwoBitMultiComparerKernel, LocalLayout) {
        let (layout, l_comp, l_comp_index, l_thr) = multi_layout(nguides, plen, &thresholds);
        (
            TwoBitMultiComparerKernel {
                packed,
                mask,
                loci,
                flags,
                comp,
                comp_index,
                thresholds,
                locicnt: locicnt as u32,
                plen: plen as u32,
                nguides: nguides as u32,
                out,
                l_comp,
                l_comp_index,
                l_thr,
            },
            layout,
        )
    }

    /// Decode the base at absolute position `pos` (the serial kernel's
    /// cached packed-byte + mask-byte walk).
    fn base_at(&self, item: &mut ItemCtx, cache: &mut (usize, u8, usize, u8), pos: usize) -> u8 {
        let (pb_idx, mb_idx) = (pos / 4, pos / 8);
        if cache.0 != pb_idx {
            cache.0 = pb_idx;
            cache.1 = self.packed.load(item, pb_idx);
        }
        if cache.2 != mb_idx {
            cache.2 = mb_idx;
            cache.3 = self.mask.load(item, mb_idx);
        }
        item.ops(4); // shifts and masks
        if (cache.3 >> (pos % 8)) & 1 == 1 {
            b'N'
        } else {
            code_to_char((cache.1 >> ((pos % 4) * 2)) & 0b11)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compare_strand(
        &self,
        item: &mut ItemCtx,
        local: &LocalMem,
        window: &[u8],
        locus: u32,
        g: usize,
        thr: u16,
        half: usize,
    ) {
        let plen = self.plen as usize;
        let base = (g * 2 + half) * plen;
        let mut lmm: u16 = 0;
        item.ops(1);

        for j in 0..plen {
            let k = local.load(item, self.l_comp_index, base + j);
            item.ops(1);
            if k < 0 {
                break;
            }
            let k = k as usize;
            let pat_c = local.load(item, self.l_comp, base + k);
            let chr_c = window[k];
            item.ops(2);
            if is_mismatch(pat_c, chr_c) {
                lmm += 1;
                item.ops(1);
                if lmm > thr {
                    break;
                }
            }
        }

        item.ops(1);
        if lmm <= thr {
            let slot = self.out.count.atomic_inc(item, 0) as usize;
            self.out.mm_count.store(item, slot, lmm);
            self.out
                .direction
                .store(item, slot, if half == 0 { b'+' } else { b'-' });
            self.out.loci.store(item, slot, locus);
            self.out.guide.store(item, slot, g as u16);
        }
    }
}

impl KernelProgram for TwoBitMultiComparerKernel {
    type Private = ();

    fn name(&self) -> &str {
        match self.thresholds {
            GuideThresholds::PerGuide(_) => "comparer_multi-2bit",
            GuideThresholds::Folded { .. } => "comparer_multi-2bit-spec",
        }
    }

    fn phases(&self) -> usize {
        2
    }

    fn local_layout(&self) -> LocalLayout {
        multi_layout(self.nguides as usize, self.plen as usize, &self.thresholds).0
    }

    fn code_model(&self) -> CodeModel {
        twobit_multi_model(matches!(self.thresholds, GuideThresholds::Folded { .. }))
    }

    fn run_phase(&self, phase: usize, item: &mut ItemCtx, _p: &mut (), local: &mut LocalMem) {
        let plen = self.plen as usize;
        match phase {
            0 => stage_block(
                item,
                local,
                &self.comp,
                &self.comp_index,
                self.l_comp,
                self.l_comp_index,
                &self.thresholds,
                self.l_thr,
                self.nguides as usize,
                plen,
            ),
            _ => {
                let i = item.global_id(0);
                item.ops(1);
                if i >= self.locicnt as usize {
                    return;
                }
                let flag = self.flags.load(item, i);
                let locus = self.loci.load(item, i);

                // Decode the window once; the byte cache makes this
                // `plen/4 + plen/8` loads, shared by the whole block.
                let mut cache = (usize::MAX, 0u8, usize::MAX, 0u8);
                let mut window = vec![0u8; plen];
                for (k, w) in window.iter_mut().enumerate() {
                    *w = self.base_at(item, &mut cache, locus as usize + k);
                }

                for g in 0..self.nguides as usize {
                    let thr = threshold_for(item, local, &self.thresholds, self.l_thr, g);
                    item.ops(2);
                    if flag == FLAG_BOTH || flag == FLAG_FORWARD {
                        self.compare_strand(item, local, &window, locus, g, thr, 0);
                    }
                    item.ops(2);
                    if flag == FLAG_BOTH || flag == FLAG_REVERSE {
                        self.compare_strand(item, local, &window, locus, g, thr, 1);
                    }
                }
            }
        }
    }
}

/// The fused 4-bit comparer: guide-block subset tests over nibble words.
/// The window holds possibility *masks* (not decoded characters), so the
/// per-guide compare is the serial kernel's exact subset rule.
#[derive(Debug, Clone)]
pub struct FourBitMultiComparerKernel {
    /// Nibble-packed chunk bases, 2 per byte, low nibble first.
    pub nibbles: DeviceBuffer<u8>,
    /// Candidate loci (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Strand flags from the finder.
    pub flags: DeviceBuffer<u8>,
    /// Concatenated `[fwd | rc]` pattern bytes of the block.
    pub comp: DeviceBuffer<u8>,
    /// Concatenated index tables, `-1` terminated per half.
    pub comp_index: DeviceBuffer<i32>,
    /// Per-guide or folded thresholds.
    pub thresholds: GuideThresholds,
    /// Number of candidates.
    pub locicnt: u32,
    /// Pattern length.
    pub plen: u32,
    /// Guides in the block.
    pub nguides: u32,
    /// Output arrays.
    pub out: MultiComparerOutput,
    /// Local staging handle for the block's pattern characters.
    pub l_comp: LocalHandle<u8>,
    /// Local staging handle for the block's index tables.
    pub l_comp_index: LocalHandle<i32>,
    /// Local staging handle for per-guide thresholds (`None` when folded).
    pub l_thr: Option<LocalHandle<u16>>,
}

impl FourBitMultiComparerKernel {
    /// Build the kernel and its local layout.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        nibbles: DeviceBuffer<u8>,
        loci: DeviceBuffer<u32>,
        flags: DeviceBuffer<u8>,
        comp: DeviceBuffer<u8>,
        comp_index: DeviceBuffer<i32>,
        thresholds: GuideThresholds,
        locicnt: usize,
        plen: usize,
        nguides: usize,
        out: MultiComparerOutput,
    ) -> (FourBitMultiComparerKernel, LocalLayout) {
        let (layout, l_comp, l_comp_index, l_thr) = multi_layout(nguides, plen, &thresholds);
        (
            FourBitMultiComparerKernel {
                nibbles,
                loci,
                flags,
                comp,
                comp_index,
                thresholds,
                locicnt: locicnt as u32,
                plen: plen as u32,
                nguides: nguides as u32,
                out,
                l_comp,
                l_comp_index,
                l_thr,
            },
            layout,
        )
    }

    /// The possibility mask at absolute position `pos` (the serial kernel's
    /// cached nibble walk).
    fn mask_at(&self, item: &mut ItemCtx, cache: &mut (usize, u8), pos: usize) -> u8 {
        let idx = pos / 2;
        if cache.0 != idx {
            cache.0 = idx;
            cache.1 = self.nibbles.load(item, idx);
        }
        item.ops(2); // shift + mask
        (cache.1 >> ((pos % 2) * 4)) & 0b1111
    }

    #[allow(clippy::too_many_arguments)]
    fn compare_strand(
        &self,
        item: &mut ItemCtx,
        local: &LocalMem,
        window: &[u8],
        locus: u32,
        g: usize,
        thr: u16,
        half: usize,
    ) {
        let plen = self.plen as usize;
        let base = (g * 2 + half) * plen;
        let mut lmm: u16 = 0;
        item.ops(1);

        for j in 0..plen {
            let k = local.load(item, self.l_comp_index, base + j);
            item.ops(1);
            if k < 0 {
                break;
            }
            let k = k as usize;
            let pat_c = local.load(item, self.l_comp, base + k);
            let gm = window[k];
            let p = base_mask(pat_c);
            item.ops(3); // mask lookup + and + compares
            if !(gm != 0 && (gm & p) == gm) {
                lmm += 1;
                item.ops(1);
                if lmm > thr {
                    break;
                }
            }
        }

        item.ops(1);
        if lmm <= thr {
            let slot = self.out.count.atomic_inc(item, 0) as usize;
            self.out.mm_count.store(item, slot, lmm);
            self.out
                .direction
                .store(item, slot, if half == 0 { b'+' } else { b'-' });
            self.out.loci.store(item, slot, locus);
            self.out.guide.store(item, slot, g as u16);
        }
    }
}

impl KernelProgram for FourBitMultiComparerKernel {
    type Private = ();

    fn name(&self) -> &str {
        match self.thresholds {
            GuideThresholds::PerGuide(_) => "comparer_multi-4bit",
            GuideThresholds::Folded { .. } => "comparer_multi-4bit-spec",
        }
    }

    fn phases(&self) -> usize {
        2
    }

    fn local_layout(&self) -> LocalLayout {
        multi_layout(self.nguides as usize, self.plen as usize, &self.thresholds).0
    }

    fn code_model(&self) -> CodeModel {
        fourbit_multi_model(matches!(self.thresholds, GuideThresholds::Folded { .. }))
    }

    fn run_phase(&self, phase: usize, item: &mut ItemCtx, _p: &mut (), local: &mut LocalMem) {
        let plen = self.plen as usize;
        match phase {
            0 => stage_block(
                item,
                local,
                &self.comp,
                &self.comp_index,
                self.l_comp,
                self.l_comp_index,
                &self.thresholds,
                self.l_thr,
                self.nguides as usize,
                plen,
            ),
            _ => {
                let i = item.global_id(0);
                item.ops(1);
                if i >= self.locicnt as usize {
                    return;
                }
                let flag = self.flags.load(item, i);
                let locus = self.loci.load(item, i);

                // One nibble walk per candidate: `plen/2` loads shared by
                // the whole block.
                let mut cache = (usize::MAX, 0u8);
                let mut window = vec![0u8; plen];
                for (k, w) in window.iter_mut().enumerate() {
                    *w = self.mask_at(item, &mut cache, locus as usize + k);
                }

                for g in 0..self.nguides as usize {
                    let thr = threshold_for(item, local, &self.thresholds, self.l_thr, g);
                    item.ops(2);
                    if flag == FLAG_BOTH || flag == FLAG_FORWARD {
                        self.compare_strand(item, local, &window, locus, g, thr, 0);
                    }
                    item.ops(2);
                    if flag == FLAG_BOTH || flag == FLAG_REVERSE {
                        self.compare_strand(item, local, &window, locus, g, thr, 1);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::specialize::{CompiledVariant, VariantKind};
    use crate::kernels::{ComparerKernel, ComparerOutput, OptLevel};
    use crate::pattern::CompiledSeq;
    use genome::fourbit::NibbleSeq;
    use genome::twobit::TwoBitSeq;
    use gpu_sim::{DeviceSpec, ExecMode, NdRange};

    fn device() -> Device {
        Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential)
    }

    fn fixture_seq(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| b"ACGTACGGTTCA"[(i * 7 + i / 3) % 12])
            .collect()
    }

    fn fixture_guides() -> Vec<(Vec<u8>, u16)> {
        vec![
            (b"ACGTACNN".to_vec(), 2),
            (b"TTCAACNN".to_vec(), 3),
            (b"ACGGTTNN".to_vec(), 1),
            (b"CGTACGNN".to_vec(), 2),
            (b"GGTTCANN".to_vec(), 4),
        ]
    }

    fn fixture_candidates(seq_len: usize, plen: usize) -> (Vec<u32>, Vec<u8>) {
        let loci: Vec<u32> = (0..(seq_len - plen) as u32).collect();
        let flags: Vec<u8> = loci
            .iter()
            .map(|&p| match p % 4 {
                0 => FLAG_BOTH,
                1 => FLAG_FORWARD,
                2 => FLAG_REVERSE,
                _ => FLAG_BOTH,
            })
            .collect();
        (loci, flags)
    }

    /// Concatenate the guides' pattern tables in block layout.
    fn block_tables(compiled: &[CompiledSeq]) -> (Vec<u8>, Vec<i32>) {
        let mut comp = Vec::new();
        let mut comp_index = Vec::new();
        for c in compiled {
            comp.extend_from_slice(c.comp());
            comp_index.extend_from_slice(c.comp_index());
        }
        (comp, comp_index)
    }

    /// Serial reference: one comparer launch per guide on the chosen
    /// encoding, entries in compaction order (NOT sorted — byte identity
    /// includes ordering).
    fn serial_reference(
        encoding: u8,
        seq: &[u8],
        guides: &[(Vec<u8>, u16)],
        loci: &[u32],
        flags: &[u8],
    ) -> Vec<Vec<(u32, u8, u16)>> {
        let device = device();
        let mut out = Vec::new();
        for (pat, thr) in guides {
            let compiled = CompiledSeq::compile(pat);
            let loci_b = device.alloc_from_slice(loci).unwrap();
            let flags_b = device.alloc_from_slice(flags).unwrap();
            let comp = device.alloc_from_slice(compiled.comp()).unwrap();
            let comp_index = device.alloc_from_slice(compiled.comp_index()).unwrap();
            let o = ComparerOutput::allocate(&device, loci.len() * 2 + 1).unwrap();
            let nd = NdRange::linear_cover(loci.len(), 64);
            match encoding {
                0 => {
                    let chr = device.alloc_from_slice(seq).unwrap();
                    let (k, _) = ComparerKernel::new(
                        OptLevel::Opt3,
                        chr,
                        loci_b,
                        flags_b,
                        comp,
                        comp_index,
                        loci.len(),
                        *thr,
                        o,
                        &compiled,
                    );
                    device.launch(&k, nd).unwrap();
                    out.push(k.out.entries());
                }
                1 => {
                    let enc = TwoBitSeq::encode(seq);
                    let packed = device.alloc_from_slice(enc.packed_bytes()).unwrap();
                    let mask = device.alloc_from_slice(enc.mask_bytes()).unwrap();
                    let (k, _) = crate::kernels::TwoBitComparerKernel::new(
                        packed,
                        mask,
                        loci_b,
                        flags_b,
                        comp,
                        comp_index,
                        loci.len(),
                        *thr,
                        o,
                        &compiled,
                    );
                    device.launch(&k, nd).unwrap();
                    out.push(k.out.entries());
                }
                _ => {
                    let enc = NibbleSeq::encode(seq);
                    let nibbles = device.alloc_from_slice(enc.nibble_bytes()).unwrap();
                    let (k, _) = crate::kernels::FourBitComparerKernel::new(
                        nibbles,
                        loci_b,
                        flags_b,
                        comp,
                        comp_index,
                        loci.len(),
                        *thr,
                        o,
                        &compiled,
                    );
                    device.launch(&k, nd).unwrap();
                    out.push(k.out.entries());
                }
            }
        }
        out
    }

    /// Fused run on the chosen encoding, demuxed per guide.
    fn fused_run(
        encoding: u8,
        seq: &[u8],
        guides: &[(Vec<u8>, u16)],
        loci: &[u32],
        flags: &[u8],
        folded: Option<u16>,
    ) -> Vec<Vec<(u32, u8, u16)>> {
        let device = device();
        let compiled: Vec<CompiledSeq> =
            guides.iter().map(|(p, _)| CompiledSeq::compile(p)).collect();
        let plen = compiled[0].plen();
        let (comp_h, comp_index_h) = block_tables(&compiled);
        let loci_b = device.alloc_from_slice(loci).unwrap();
        let flags_b = device.alloc_from_slice(flags).unwrap();
        let comp = device.alloc_from_slice(&comp_h).unwrap();
        let comp_index = device.alloc_from_slice(&comp_index_h).unwrap();
        let thresholds = match folded {
            Some(t) => GuideThresholds::Folded {
                threshold: t,
                variant: Arc::new(CompiledVariant::compile(
                    VariantKind::MultiComparer,
                    &compiled[0],
                    t,
                )),
            },
            None => {
                let thr_h: Vec<u16> = guides.iter().map(|&(_, t)| t).collect();
                GuideThresholds::PerGuide(device.alloc_from_slice(&thr_h).unwrap())
            }
        };
        let out =
            MultiComparerOutput::allocate(&device, loci.len() * 2 * guides.len() + 1).unwrap();
        let nd = NdRange::linear_cover(loci.len(), 64);
        match encoding {
            0 => {
                let chr = device.alloc_from_slice(seq).unwrap();
                let (k, _) = MultiComparerKernel::new(
                    chr,
                    loci_b,
                    flags_b,
                    comp,
                    comp_index,
                    thresholds,
                    loci.len(),
                    plen,
                    guides.len(),
                    out,
                );
                device.launch(&k, nd).unwrap();
                k.out.per_guide(guides.len())
            }
            1 => {
                let enc = TwoBitSeq::encode(seq);
                let packed = device.alloc_from_slice(enc.packed_bytes()).unwrap();
                let mask = device.alloc_from_slice(enc.mask_bytes()).unwrap();
                let (k, _) = TwoBitMultiComparerKernel::new(
                    packed,
                    mask,
                    loci_b,
                    flags_b,
                    comp,
                    comp_index,
                    thresholds,
                    loci.len(),
                    plen,
                    guides.len(),
                    out,
                );
                device.launch(&k, nd).unwrap();
                k.out.per_guide(guides.len())
            }
            _ => {
                let enc = NibbleSeq::encode(seq);
                let nibbles = device.alloc_from_slice(enc.nibble_bytes()).unwrap();
                let (k, _) = FourBitMultiComparerKernel::new(
                    nibbles,
                    loci_b,
                    flags_b,
                    comp,
                    comp_index,
                    thresholds,
                    loci.len(),
                    plen,
                    guides.len(),
                    out,
                );
                device.launch(&k, nd).unwrap();
                k.out.per_guide(guides.len())
            }
        }
    }

    #[test]
    fn fused_matches_serial_per_guide_char() {
        let seq = fixture_seq(160);
        let guides = fixture_guides();
        let (loci, flags) = fixture_candidates(seq.len(), 8);
        let serial = serial_reference(0, &seq, &guides, &loci, &flags);
        let fused = fused_run(0, &seq, &guides, &loci, &flags, None);
        assert!(serial.iter().any(|g| !g.is_empty()), "fixture must hit");
        assert_eq!(fused, serial, "char fused output must be byte-identical");
    }

    #[test]
    fn fused_matches_serial_per_guide_2bit() {
        let seq = fixture_seq(160);
        let guides = fixture_guides();
        let (loci, flags) = fixture_candidates(seq.len(), 8);
        let serial = serial_reference(1, &seq, &guides, &loci, &flags);
        let fused = fused_run(1, &seq, &guides, &loci, &flags, None);
        assert_eq!(fused, serial, "2-bit fused output must be byte-identical");
    }

    #[test]
    fn fused_matches_serial_per_guide_4bit() {
        let seq = fixture_seq(160);
        let guides = fixture_guides();
        let (loci, flags) = fixture_candidates(seq.len(), 8);
        let serial = serial_reference(2, &seq, &guides, &loci, &flags);
        let fused = fused_run(2, &seq, &guides, &loci, &flags, None);
        assert_eq!(fused, serial, "4-bit fused output must be byte-identical");
    }

    #[test]
    fn folded_block_matches_per_guide_thresholds() {
        // All guides at one threshold: the folded (JIT-specialized) block
        // must equal both the per-guide-threshold fused run and serial.
        let seq = fixture_seq(160);
        let guides: Vec<(Vec<u8>, u16)> = fixture_guides()
            .into_iter()
            .map(|(p, _)| (p, 3u16))
            .collect();
        let (loci, flags) = fixture_candidates(seq.len(), 8);
        for enc in 0..3u8 {
            let serial = serial_reference(enc, &seq, &guides, &loci, &flags);
            let folded = fused_run(enc, &seq, &guides, &loci, &flags, Some(3));
            assert_eq!(folded, serial, "folded enc {enc} must be byte-identical");
        }
    }

    #[test]
    fn fused_saves_genome_loads_and_launches() {
        let seq = fixture_seq(2048);
        let guides: Vec<(Vec<u8>, u16)> = (0..8)
            .map(|i| {
                let mut p = fixture_seq(20);
                p[19 - (i % 3)] = b'N';
                (p, 20u16) // no early exit: full windows compared
            })
            .collect();
        let loci: Vec<u32> = (0..1500u32).collect();
        let flags = vec![FLAG_BOTH; loci.len()];

        let dev_serial = device();
        let before = dev_serial.traffic();
        {
            let device = &dev_serial;
            for (pat, thr) in &guides {
                let compiled = CompiledSeq::compile(pat);
                let chr = device.alloc_from_slice(&seq).unwrap();
                let loci_b = device.alloc_from_slice(&loci).unwrap();
                let flags_b = device.alloc_from_slice(&flags).unwrap();
                let comp = device.alloc_from_slice(compiled.comp()).unwrap();
                let comp_index = device.alloc_from_slice(compiled.comp_index()).unwrap();
                let o = ComparerOutput::allocate(device, loci.len() * 2 + 1).unwrap();
                let (k, _) = ComparerKernel::new(
                    OptLevel::Opt3,
                    chr,
                    loci_b,
                    flags_b,
                    comp,
                    comp_index,
                    loci.len(),
                    *thr,
                    o,
                    &compiled,
                );
                device.launch(&k, NdRange::linear_cover(loci.len(), 64)).unwrap();
            }
        }
        let serial_traffic = dev_serial.traffic().since(&before);

        let dev_fused = device();
        let before = dev_fused.traffic();
        let _ = {
            let device = &dev_fused;
            let compiled: Vec<CompiledSeq> =
                guides.iter().map(|(p, _)| CompiledSeq::compile(p)).collect();
            let (comp_h, comp_index_h) = block_tables(&compiled);
            let chr = device.alloc_from_slice(&seq).unwrap();
            let loci_b = device.alloc_from_slice(&loci).unwrap();
            let flags_b = device.alloc_from_slice(&flags).unwrap();
            let comp = device.alloc_from_slice(&comp_h).unwrap();
            let comp_index = device.alloc_from_slice(&comp_index_h).unwrap();
            let thr_h: Vec<u16> = guides.iter().map(|&(_, t)| t).collect();
            let thresholds = GuideThresholds::PerGuide(device.alloc_from_slice(&thr_h).unwrap());
            let out =
                MultiComparerOutput::allocate(device, loci.len() * 2 * guides.len() + 1).unwrap();
            let (k, _) = MultiComparerKernel::new(
                chr,
                loci_b,
                flags_b,
                comp,
                comp_index,
                thresholds,
                loci.len(),
                compiled[0].plen(),
                guides.len(),
                out,
            );
            device.launch(&k, NdRange::linear_cover(loci.len(), 64)).unwrap()
        };
        let fused_traffic = dev_fused.traffic().since(&before);

        assert_eq!(serial_traffic.kernel_launches, guides.len() as u64);
        assert_eq!(fused_traffic.kernel_launches, 1);
    }

    #[test]
    fn folded_models_price_below_generic() {
        use gpu_sim::isa;
        for (gen, spec) in [
            (char_multi_model(false), char_multi_model(true)),
            (twobit_multi_model(false), twobit_multi_model(true)),
            (fourbit_multi_model(false), fourbit_multi_model(true)),
        ] {
            let g = isa::compile(&gen);
            let s = isa::compile(&spec);
            assert!(
                s.code_bytes < g.code_bytes,
                "{}: spec {} !< generic {}",
                gen.name(),
                s.code_bytes,
                g.code_bytes
            );
        }
    }
}
