//! The `comparer` kernel: count mismatched bases at candidate sites
//! (Listing 1 of the paper), in five cumulative optimization stages.
//!
//! One work-item per candidate locus. Phase 0 stages the query's `comp` and
//! `comp_index` arrays into shared local memory — serially by work-item 0
//! below opt3, cooperatively from opt3 on. Phase 1 walks the two strand
//! blocks guarded by the finder's flag, counts mismatches with early exit at
//! the threshold, and compacts passing sites into the output arrays through
//! an atomic counter.
//!
//! The functional result is identical at every [`OptLevel`]; what changes is
//! the *compiled shape* the simulator prices:
//!
//! * below opt1, the reference byte is re-issued once per iteration because
//!   the compiler cannot prove the output stores don't alias `chr`;
//! * below opt2, `loci[i]` is re-loaded (L1 hit) every iteration and
//!   `flag[i]` at every guard;
//! * below opt3, work-item 0 stages `2 x 2 x plen` elements serially while
//!   the rest of its wavefront waits;
//! * below opt4, the ladder re-reads the pattern character from local
//!   memory once per evaluated arm ([`ladder_rank`]); at opt4 it is read
//!   once per iteration into a register — at the price of ~25 VGPRs, which
//!   drops occupancy to 9.

use gpu_sim::isa::{CodeModel, Staging};
use gpu_sim::kernel::{KernelProgram, LocalHandle, LocalLayout, LocalMem};
use gpu_sim::{Device, DeviceBuffer, ItemCtx, NdRange, SimResult};

use genome::base::is_mismatch;

use super::finder::{FLAG_BOTH, FLAG_FORWARD, FLAG_REVERSE};
use super::ladder::ladder_rank;
use super::OptLevel;
use crate::pattern::CompiledSeq;

/// Dead cycles per element of the baseline's serial staging loop: a single
/// lane issuing back-to-back dependent L1 load-use chains (~114-cycle vector
/// L1 latency, partially overlapped) while the rest of the group waits at
/// the barrier — the cost opt3's cooperative staging removes.
const SERIAL_CHAIN_STALL: u64 = 80;

/// Device-side output of a comparer launch.
#[derive(Debug, Clone)]
pub struct ComparerOutput {
    /// Mismatch count per passing site (`mm_count`).
    pub mm_count: DeviceBuffer<u16>,
    /// Direction per passing site: `b'+'` or `b'-'` (`direction`).
    pub direction: DeviceBuffer<u8>,
    /// Locus per passing site (`mm_loci`).
    pub loci: DeviceBuffer<u32>,
    /// Single-element entry counter (`entrycount`).
    pub count: DeviceBuffer<u32>,
}

impl ComparerOutput {
    /// Allocate output buffers for up to `capacity` entries. Since each
    /// locus can pass on both strands, callers should size `capacity` at
    /// twice the locus count.
    ///
    /// # Errors
    ///
    /// Returns an error when the device is out of memory.
    pub fn allocate(device: &Device, capacity: usize) -> SimResult<ComparerOutput> {
        Ok(ComparerOutput {
            mm_count: device.alloc(capacity)?,
            direction: device.alloc(capacity)?,
            loci: device.alloc(capacity)?,
            count: device.alloc(1)?,
        })
    }

    /// Read back the entry count.
    pub fn count_entries(&self) -> usize {
        self.count.to_vec()[0] as usize
    }

    /// Read back the entries as `(locus, direction, mismatches)` triples.
    pub fn entries(&self) -> Vec<(u32, u8, u16)> {
        let n = self.count_entries();
        let loci = self.loci.to_vec();
        let dir = self.direction.to_vec();
        let mm = self.mm_count.to_vec();
        (0..n).map(|i| (loci[i], dir[i], mm[i])).collect()
    }
}

/// The comparer kernel (Listing 1), parameterized by [`OptLevel`].
#[derive(Debug, Clone)]
pub struct ComparerKernel {
    /// Optimization stage.
    pub opt: OptLevel,
    /// Chunk bases.
    pub chr: DeviceBuffer<u8>,
    /// Candidate loci from the finder (chunk-relative).
    pub loci: DeviceBuffer<u32>,
    /// Strand flags from the finder.
    pub flags: DeviceBuffer<u8>,
    /// `[forward query | reverse-complement query]` in global memory
    /// (Listing 1: `const char* comp`).
    pub comp: DeviceBuffer<u8>,
    /// Non-`N` indices per half, `-1` terminated, global memory.
    pub comp_index: DeviceBuffer<i32>,
    /// Number of candidate loci (`locicnts`).
    pub locicnt: u32,
    /// Pattern length.
    pub plen: u32,
    /// Mismatch threshold.
    pub threshold: u16,
    /// Output arrays.
    pub out: ComparerOutput,
    /// Local staging handle for the query characters (`l_comp`).
    pub l_comp: LocalHandle<u8>,
    /// Local staging handle for the index array (`l_comp_index`).
    pub l_comp_index: LocalHandle<i32>,
}

impl ComparerKernel {
    /// Build the kernel and its local layout for `query` over the candidate
    /// set of a finder run.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        opt: OptLevel,
        chr: DeviceBuffer<u8>,
        loci: DeviceBuffer<u32>,
        flags: DeviceBuffer<u8>,
        comp: DeviceBuffer<u8>,
        comp_index: DeviceBuffer<i32>,
        locicnt: usize,
        threshold: u16,
        out: ComparerOutput,
        query: &CompiledSeq,
    ) -> (ComparerKernel, LocalLayout) {
        let mut layout = LocalLayout::new();
        let l_comp = layout.array::<u8>(2 * query.plen());
        let l_comp_index = layout.array::<i32>(2 * query.plen());
        (
            ComparerKernel {
                opt,
                chr,
                loci,
                flags,
                comp,
                comp_index,
                locicnt: locicnt as u32,
                plen: query.plen() as u32,
                threshold,
                out,
                l_comp,
                l_comp_index,
            },
            layout,
        )
    }

    /// The structural description handed to the pseudo-ISA compiler; this is
    /// the source of Table X.
    pub fn code_model_for(opt: OptLevel) -> CodeModel {
        let mut m = CodeModel::new(format!("comparer-{}", opt.label()))
            .pointer_args(10)
            .scalar_args(3)
            .staged_arrays(2)
            .guarded_blocks(2)
            .ladder_arms(13)
            .global_scalar_use_sites(30)
            .atomic_output(true)
            .staging(Staging::Serial);
        if opt.has_restrict() {
            m = m.noalias(true);
        }
        if opt.caches_global_scalars() {
            m = m.cached_global_scalars(2);
        }
        if opt.parallel_staging() {
            m = m.staging(Staging::Parallel);
        }
        if opt.caches_local_reads() {
            m = m.cached_local_regs(25);
        }
        m
    }

    /// Compare one strand block. `half` 0 = forward (`+`), 1 = reverse
    /// (`-`). Emits an output entry when the mismatch count stays within
    /// the threshold.
    fn compare_strand(
        &self,
        item: &mut ItemCtx,
        local: &LocalMem,
        i: usize,
        locus_reg: u32,
        half: usize,
    ) {
        let plen = self.plen as usize;
        let mut lmm: u16 = 0;
        item.ops(1); // lmm_count = 0

        for j in 0..plen {
            let k = local.load(item, self.l_comp_index, half * plen + j);
            item.ops(1);
            if k < 0 {
                break;
            }
            let k = k as usize;

            // The locus: registered at opt2+, re-loaded (L1 hit) below.
            let locus = if self.opt.caches_global_scalars() {
                locus_reg
            } else {
                self.loci.load_cached(item, i)
            } as usize;

            // Pattern character: one local read at opt4, one per evaluated
            // ladder arm below.
            let pat_c = local.load(item, self.l_comp, half * plen + k);
            let arms = ladder_rank(pat_c);
            if !self.opt.caches_local_reads() {
                for _ in 1..arms {
                    // The compiled ladder re-reads l_comp[k] in every arm.
                    let _ = local.load(item, self.l_comp, half * plen + k);
                }
            }
            item.ops(arms); // one compare per evaluated arm

            // Reference byte: scattered access, full price. Without
            // `restrict` the compiler re-issues it (L1 hit).
            let chr_c = self.chr.load(item, locus + k);
            if !self.opt.has_restrict() {
                let _ = self.chr.load_cached(item, locus + k);
            }

            item.ops(2); // mismatch test + counter update
            if is_mismatch(pat_c, chr_c) {
                lmm += 1;
                item.ops(1); // threshold compare
                if lmm > self.threshold {
                    break;
                }
            }
        }

        item.ops(1); // lmm_count <= threshold
        if lmm <= self.threshold {
            let slot = self.out.count.atomic_inc(item, 0) as usize;
            self.out.mm_count.store(item, slot, lmm);
            self.out
                .direction
                .store(item, slot, if half == 0 { b'+' } else { b'-' });
            self.out.loci.store(item, slot, locus_reg);
        }
    }
}

impl KernelProgram for ComparerKernel {
    type Private = ();

    fn name(&self) -> &str {
        "comparer"
    }

    fn phases(&self) -> usize {
        2
    }

    fn local_layout(&self) -> LocalLayout {
        let mut layout = LocalLayout::new();
        let _ = layout.array::<u8>(2 * self.plen as usize);
        let _ = layout.array::<i32>(2 * self.plen as usize);
        layout
    }

    fn code_model(&self) -> CodeModel {
        Self::code_model_for(self.opt)
    }

    fn run_phase(&self, phase: usize, item: &mut ItemCtx, _p: &mut (), local: &mut LocalMem) {
        let plen = self.plen as usize;
        match phase {
            0 => {
                if self.opt.parallel_staging() {
                    // opt3: the whole group cooperates, one stride apart.
                    let li = item.local_id(0);
                    let group = item.local_range(0);
                    let mut k = li;
                    while k < 2 * plen {
                        let c = self.comp.load(item, k);
                        local.store(item, self.l_comp, k, c);
                        let idx = self.comp_index.load(item, k);
                        local.store(item, self.l_comp_index, k, idx);
                        item.ops(2);
                        k += group;
                    }
                } else if item.local_id(0) == 0 {
                    // Baseline: Listing 1 L2-L7, work-item 0 copies serially.
                    // The tables are hot in L1 (every group re-reads them),
                    // but one lane doing all 4*plen accesses back-to-back is
                    // dead time the whole group waits out at the barrier —
                    // the cost opt3's cooperative staging removes.
                    for k in 0..2 * plen {
                        let c = self.comp.load_cached(item, k);
                        item.ops(SERIAL_CHAIN_STALL);
                        local.store(item, self.l_comp, k, c);
                        let idx = self.comp_index.load_cached(item, k);
                        item.ops(SERIAL_CHAIN_STALL);
                        local.store(item, self.l_comp_index, k, idx);
                        item.ops(3); // loop control + addressing
                    }
                }
            }
            _ => {
                let i = item.global_id(0);
                item.ops(1);
                if i >= self.locicnt as usize {
                    return;
                }

                // flag[i]: one load; the second guard's re-read is an L1
                // hit unless registered (opt2).
                let flag = self.flags.load(item, i);
                let locus_reg = self.loci.load(item, i);

                item.ops(2); // first guard: flag == 0 || flag == 1
                if flag == FLAG_BOTH || flag == FLAG_FORWARD {
                    self.compare_strand(item, local, i, locus_reg, 0);
                }

                if !self.opt.caches_global_scalars() {
                    let _ = self.flags.load_cached(item, i);
                }
                item.ops(2); // second guard: flag == 0 || flag == 2
                if flag == FLAG_BOTH || flag == FLAG_REVERSE {
                    self.compare_strand(item, local, i, locus_reg, 1);
                }
            }
        }
    }
}

/// Convenience: run the comparer over the candidate set on `device`.
///
/// Returns the number of passing entries.
///
/// # Errors
///
/// Propagates launch failures.
pub fn run_comparer(
    device: &Device,
    kernel: &ComparerKernel,
    work_group_size: usize,
) -> SimResult<usize> {
    let nd = NdRange::linear_cover(kernel.locicnt as usize, work_group_size);
    device.launch(kernel, nd)?;
    Ok(kernel.out.count_entries())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, ExecMode};

    fn device() -> Device {
        Device::with_mode(DeviceSpec::mi100(), ExecMode::Sequential)
    }

    /// Stand up a comparer over an explicit candidate list.
    fn run(
        opt: OptLevel,
        seq: &[u8],
        query: &[u8],
        candidates: &[(u32, u8)],
        threshold: u16,
    ) -> Vec<(u32, u8, u16)> {
        let device = device();
        let compiled = CompiledSeq::compile(query);
        let chr = device.alloc_from_slice(seq).unwrap();
        let loci_host: Vec<u32> = candidates.iter().map(|&(p, _)| p).collect();
        let flags_host: Vec<u8> = candidates.iter().map(|&(_, f)| f).collect();
        let loci = device.alloc_from_slice(&loci_host).unwrap();
        let flags = device.alloc_from_slice(&flags_host).unwrap();
        let comp = device.alloc_from_slice(compiled.comp()).unwrap();
        let comp_index = device.alloc_from_slice(compiled.comp_index()).unwrap();
        let out = ComparerOutput::allocate(&device, candidates.len() * 2 + 1).unwrap();
        let (kernel, _) = ComparerKernel::new(
            opt,
            chr,
            loci,
            flags,
            comp,
            comp_index,
            candidates.len(),
            threshold,
            out,
            &compiled,
        );
        run_comparer(&device, &kernel, 256).unwrap();
        let mut entries = kernel.out.entries();
        entries.sort_unstable();
        entries
    }

    #[test]
    fn counts_forward_mismatches() {
        //       site: ACGTT  query: ACGTA -> 1 mismatch at the last base.
        let entries = run(
            OptLevel::Base,
            b"ACGTT",
            b"ACGTA",
            &[(0, FLAG_FORWARD)],
            4,
        );
        assert_eq!(entries, vec![(0, b'+', 1)]);
    }

    #[test]
    fn threshold_filters_entries() {
        // 5 mismatches vs threshold 1: no output.
        let entries = run(OptLevel::Base, b"TTTTT", b"AAAAA", &[(0, FLAG_FORWARD)], 1);
        assert!(entries.is_empty());
        // Threshold 5 passes.
        let entries = run(OptLevel::Base, b"TTTTT", b"AAAAA", &[(0, FLAG_FORWARD)], 5);
        assert_eq!(entries, vec![(0, b'+', 5)]);
    }

    #[test]
    fn reverse_strand_compares_the_revcomp_half() {
        // Genome window AAAAA; query TTTTT: revcomp(TTTTT) = AAAAA, so the
        // reverse strand matches perfectly while forward has 5 mismatches.
        let entries = run(
            OptLevel::Base,
            b"AAAAA",
            b"TTTTT",
            &[(0, FLAG_BOTH)],
            2,
        );
        assert_eq!(entries, vec![(0, b'-', 0)]);
    }

    #[test]
    fn flag_gates_strands() {
        // Same data, but the finder said forward-only: no reverse entry.
        let entries = run(OptLevel::Base, b"AAAAA", b"TTTTT", &[(0, FLAG_FORWARD)], 5);
        assert_eq!(entries, vec![(0, b'+', 5)]);
        let entries = run(OptLevel::Base, b"AAAAA", b"TTTTT", &[(0, FLAG_REVERSE)], 5);
        assert_eq!(entries, vec![(0, b'-', 0)]);
    }

    #[test]
    fn n_positions_in_query_are_skipped() {
        // Query NNGTA: only positions 2..5 compared.
        let entries = run(
            OptLevel::Base,
            b"TTGTA",
            b"NNGTA",
            &[(0, FLAG_FORWARD)],
            0,
        );
        assert_eq!(entries, vec![(0, b'+', 0)]);
    }

    #[test]
    fn all_opt_levels_agree_functionally() {
        let seq = b"ACGTACGTACGTACGTAAGGCCTTACGT";
        let query = b"ACGTACGTNN";
        let candidates: Vec<(u32, u8)> = (0..18).map(|p| (p, FLAG_BOTH)).collect();
        let base = run(OptLevel::Base, seq, query, &candidates, 3);
        assert!(!base.is_empty(), "fixture should produce entries");
        for opt in OptLevel::ALL {
            assert_eq!(
                run(opt, seq, query, &candidates, 3),
                base,
                "functional results must be identical at {opt}"
            );
        }
    }

    #[test]
    fn genomic_n_counts_as_mismatch() {
        let entries = run(OptLevel::Base, b"ACGNN", b"ACGTA", &[(0, FLAG_FORWARD)], 4);
        assert_eq!(entries, vec![(0, b'+', 2)]);
    }

    /// Launch once and return the report for cost-shape assertions.
    fn report_for(opt: OptLevel) -> gpu_sim::LaunchReport {
        let device = device();
        let compiled = CompiledSeq::compile(b"GGCCGACCTGTCGCTGACGCNNN");
        let seq: Vec<u8> = (0..8192u32)
            .map(|i| b"ACGT"[(i as usize * 7 + i as usize / 5) % 4])
            .collect();
        let candidates: Vec<u32> = (0..4096).map(|i| (i * 2 % 8100) as u32).collect();
        let flags = vec![FLAG_BOTH; candidates.len()];
        let chr = device.alloc_from_slice(&seq).unwrap();
        let loci = device.alloc_from_slice(&candidates).unwrap();
        let flags = device.alloc_from_slice(&flags).unwrap();
        let comp = device.alloc_from_slice(compiled.comp()).unwrap();
        let comp_index = device.alloc_from_slice(compiled.comp_index()).unwrap();
        let out = ComparerOutput::allocate(&device, candidates.len() * 2 + 1).unwrap();
        let (kernel, _) = ComparerKernel::new(
            opt,
            chr,
            loci,
            flags,
            comp,
            comp_index,
            candidates.len(),
            4,
            out,
            &compiled,
        );
        let nd = NdRange::linear_cover(candidates.len(), 256);
        device.launch(&kernel, nd).unwrap()
    }

    #[test]
    fn optimization_stages_reduce_issue_work_until_opt4_occupancy_cliff() {
        let spec = DeviceSpec::mi100();
        let reports: Vec<_> = OptLevel::ALL.iter().map(|&o| report_for(o)).collect();
        // Dynamic issue work (wave cycles) falls monotonically base..opt4.
        for w in reports.windows(2) {
            assert!(
                w[1].wave_cycles < w[0].wave_cycles,
                "each optimization must cut issue work: {:?}",
                reports
                    .iter()
                    .map(|r| r.wave_cycles as u64)
                    .collect::<Vec<_>>()
            );
        }
        // Occupancy-scaled compute work (the launch-overhead-free part of
        // the simulated time) falls through opt3 then jumps at opt4.
        let times: Vec<f64> = reports
            .iter()
            .map(|r| r.wave_cycles / gpu_sim::timing::utilization(&r.occupancy, &spec))
            .collect();
        for w in times.windows(2).take(3) {
            assert!(w[1] < w[0], "times: {times:?}");
        }
        assert!(
            times[4] > times[3] * 1.4,
            "opt4 must regress past opt3 (occupancy 10 -> 9): {times:?}"
        );
        // Occupancy row of Table X.
        let occ: Vec<u32> = reports
            .iter()
            .map(|r| r.occupancy.waves_per_simd)
            .collect();
        assert_eq!(occ, vec![10, 10, 10, 10, 9]);
    }

    #[test]
    fn serial_staging_is_priced_at_wave_zero() {
        // With zero candidates the body does nothing; the baseline still
        // pays thread-0 staging per group, opt3 pays the parallel version.
        let base = report_for(OptLevel::Base);
        let opt3 = report_for(OptLevel::Opt3);
        assert!(base.counters.local_stores > 0);
        assert!(opt3.counters.local_stores == base.counters.local_stores);
    }
}
